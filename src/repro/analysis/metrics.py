"""Delivery metrics: the quantities the paper's guarantee speaks about.

Eq. 18.1 promises ``T_max_delay,i = d_i + T_latency`` for every message
on channel ``i``. The :class:`MetricsCollector` observes every RT frame
delivery and checks exactly that bound, per frame, plus per-link bounds
at the output ports. It also tracks best-effort goodput so the
coexistence experiment (EXP-B1) can show RT guarantees are unaffected by
saturating background traffic while best-effort still drains the
residual bandwidth.

All delay figures are integer nanoseconds; aggregation to float happens
only in the summary properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from ..errors import ConfigurationError
from ..protocol.ethernet import EthernetFrame, FrameKind

__all__ = ["ChannelDeliveryStats", "MetricsCollector"]


def _percentile_exact(ordered: list[int], p: float) -> int | float:
    """Exact linear-interpolation percentile over sorted integer samples.

    The rank ``p/100 * (n-1)`` is evaluated in :class:`~fractions.Fraction`
    arithmetic so no sample value passes through ``float64`` unless the
    rank genuinely falls between two order statistics; integral ranks
    (p0, p100, and exact hits) return the sample itself, untouched.
    """
    if not 0 <= p <= 100:
        raise ConfigurationError(
            f"percentile must be within [0, 100], got {p}"
        )
    n = len(ordered)
    if n == 1:
        return ordered[0]
    rank = Fraction(p) * (n - 1) / 100
    lower = int(rank)
    remainder = rank - lower
    if not remainder:
        return ordered[lower]
    low, high = ordered[lower], ordered[lower + 1]
    return float(low + (high - low) * remainder)


@dataclass(slots=True)
class ChannelDeliveryStats:
    """Per-channel delivery accounting.

    ``delays_ns`` holds one entry per delivered *frame* (a message of
    capacity ``C`` contributes ``C`` entries; the message is complete
    when its last fragment arrives, so the message-level delay is the
    maximum over its fragments -- tracked separately in
    ``message_complete_ns``).
    """

    channel_id: int
    frames_delivered: int = 0
    messages_completed: int = 0
    deadline_misses: int = 0
    worst_delay_ns: int = 0
    total_delay_ns: int = 0
    #: message_seq -> fragments seen so far (for completion detection)
    _fragments_seen: dict[int, int] = field(default_factory=dict)

    @property
    def mean_delay_ns(self) -> float:
        if self.frames_delivered == 0:
            return 0.0
        return self.total_delay_ns / self.frames_delivered

    @property
    def miss_ratio(self) -> float:
        if self.frames_delivered == 0:
            return 0.0
        return self.deadline_misses / self.frames_delivered


class MetricsCollector:
    """Network-wide observation point, shared by all end nodes.

    Parameters
    ----------
    t_latency_ns:
        The paper's ``T_latency`` constant for this network
        (:meth:`repro.network.phy.PhyProfile.t_latency_ns`). A delivered
        RT frame *misses* when
        ``delivery > created_at + d_i·slot + T_latency`` -- the
        end-to-end absolute deadline in the frame's header already
        equals ``created_at + d_i·slot``, so the check is
        ``delivery > header deadline + T_latency``.
    expected_fragments:
        Mapping channel ID -> capacity ``C`` (fragments per message),
        needed to detect message completion. Channels are registered as
        they are established via :meth:`register_channel`.
    """

    def __init__(
        self, t_latency_ns: int, record_delays: bool = False
    ) -> None:
        if t_latency_ns < 0:
            raise ConfigurationError(
                f"T_latency must be >= 0 ns, got {t_latency_ns}"
            )
        self.t_latency_ns = t_latency_ns
        #: when True, every per-frame delay is retained for percentile
        #: analysis (memory grows with traffic; off by default).
        self.record_delays = record_delays
        self._delay_samples: dict[int, list[int]] = {}
        self._channels: dict[int, ChannelDeliveryStats] = {}
        self._expected_fragments: dict[int, int] = {}
        # best-effort accounting
        self.be_frames_delivered = 0
        self.be_bytes_delivered = 0
        self.be_total_delay_ns = 0
        # signalling accounting
        self.signaling_frames_delivered = 0
        # per-channel uplink (first hop) response accounting, fed by the
        # uplink ports' completion callbacks: channel -> worst ns.
        self._uplink_worst_response: dict[int, int] = {}
        self.uplink_frames_completed = 0
        #: optional telemetry hook ``(channel_id, delay_ns, missed)``
        #: called on every RT delivery; the telemetry bundle points it at
        #: a registry histogram (see repro.obs.bundle).
        self.delay_observer: Callable[[int, int, bool], None] | None = None

    # -- registration ------------------------------------------------------

    def register_channel(self, channel_id: int, capacity: int) -> None:
        """Announce an established channel (capacity = fragments/message)."""
        if capacity <= 0:
            raise ConfigurationError(
                f"channel {channel_id} capacity must be positive, got {capacity}"
            )
        self._expected_fragments[channel_id] = capacity
        self._channels.setdefault(
            channel_id, ChannelDeliveryStats(channel_id=channel_id)
        )

    # -- observation --------------------------------------------------------

    def on_delivery(self, frame: EthernetFrame, now_ns: int) -> None:
        """Record the final delivery of any frame at its destination node."""
        if frame.kind is FrameKind.RT_DATA:
            self._on_rt_delivery(frame, now_ns)
        elif frame.kind is FrameKind.BEST_EFFORT:
            self.be_frames_delivered += 1
            self.be_bytes_delivered += frame.payload_bytes
            self.be_total_delay_ns += now_ns - frame.created_at
        else:
            self.signaling_frames_delivered += 1

    def _on_rt_delivery(self, frame: EthernetFrame, now_ns: int) -> None:
        stats = self._channels.setdefault(
            frame.channel_id, ChannelDeliveryStats(channel_id=frame.channel_id)
        )
        delay = now_ns - frame.created_at
        stats.frames_delivered += 1
        stats.total_delay_ns += delay
        if self.record_delays:
            self._delay_samples.setdefault(frame.channel_id, []).append(delay)
        if delay > stats.worst_delay_ns:
            stats.worst_delay_ns = delay
        bound = frame.absolute_deadline + self.t_latency_ns
        missed = now_ns > bound
        if missed:
            stats.deadline_misses += 1
        if self.delay_observer is not None:
            self.delay_observer(frame.channel_id, delay, missed)
        expected = self._expected_fragments.get(frame.channel_id)
        if expected is not None:
            seen = stats._fragments_seen.get(frame.message_seq, 0) + 1
            if seen >= expected:
                stats._fragments_seen.pop(frame.message_seq, None)
                stats.messages_completed += 1
            else:
                stats._fragments_seen[frame.message_seq] = seen

    def on_uplink_complete(
        self, frame: EthernetFrame, completion_ns: int, deadline_ns: int
    ) -> None:
        """Record one RT frame finishing its *uplink* transmission.

        Wired as the uplink ports' ``on_rt_complete`` callback by the
        topology builder; enables the per-link delay decomposition of
        EXP-V2 (worst uplink response vs the ``d_iu`` budget).
        """
        del deadline_ns  # the port already accounts per-link misses
        self.uplink_frames_completed += 1
        response = completion_ns - frame.created_at
        current = self._uplink_worst_response.get(frame.channel_id, 0)
        if response > current:
            self._uplink_worst_response[frame.channel_id] = response

    def uplink_worst_response_ns(self, channel_id: int) -> int:
        """Worst observed first-hop response of ``channel_id`` (0 if none)."""
        return self._uplink_worst_response.get(channel_id, 0)

    # -- summaries ----------------------------------------------------------

    @property
    def channels(self) -> dict[int, ChannelDeliveryStats]:
        """Per-channel stats keyed by channel ID (live references)."""
        return self._channels

    @property
    def total_rt_frames(self) -> int:
        return sum(s.frames_delivered for s in self._channels.values())

    @property
    def total_rt_messages(self) -> int:
        return sum(s.messages_completed for s in self._channels.values())

    @property
    def total_deadline_misses(self) -> int:
        """End-to-end RT deadline misses across all channels."""
        return sum(s.deadline_misses for s in self._channels.values())

    @property
    def worst_rt_delay_ns(self) -> int:
        if not self._channels:
            return 0
        return max(s.worst_delay_ns for s in self._channels.values())

    @property
    def be_mean_delay_ns(self) -> float:
        if self.be_frames_delivered == 0:
            return 0.0
        return self.be_total_delay_ns / self.be_frames_delivered

    def delay_samples(self, channel_id: int | None = None) -> list[int]:
        """Raw per-frame delays (ns), in delivery order.

        ``channel_id=None`` pools every channel (delivery order within a
        channel is preserved; channels are concatenated in first-seen
        order). Requires ``record_delays=True``; an unknown or silent
        channel yields an empty list rather than an error -- campaigns
        compare sample *sets* against trace extraction, where "nothing
        delivered" is a legitimate outcome.
        """
        if not self.record_delays:
            raise ConfigurationError(
                "delay samples need record_delays=True at construction"
            )
        if channel_id is None:
            pooled: list[int] = []
            for values in self._delay_samples.values():
                pooled.extend(values)
            return pooled
        return list(self._delay_samples.get(channel_id, ()))

    def delay_percentiles(
        self, channel_id: int | None = None,
        percentiles: tuple[float, ...] = (50.0, 95.0, 99.0, 100.0),
    ) -> dict[float, float]:
        """Per-frame delay percentiles (requires ``record_delays=True``).

        ``channel_id=None`` pools the samples of every channel. The 100th
        percentile equals the observed worst case the guarantee bounds.

        Percentiles follow the linear-interpolation definition (the
        rank is ``p/100 * (n-1)``; an integral rank returns that order
        statistic, otherwise the two neighbours are interpolated) but
        are computed exactly in rational arithmetic rather than through
        ``float64``: delay samples are nanosecond integers, and a
        float64 round-trip silently corrupts values past 2**53 and can
        return a p100 that differs from ``max(delay_samples)`` in the
        last bits. Integral ranks -- p0, p100, and any percentile that
        lands on an order statistic -- are returned as the exact sample
        value; only genuinely interpolated results are floats.
        """
        if not self.record_delays:
            raise ConfigurationError(
                "delay percentiles need record_delays=True at construction"
            )
        if channel_id is None:
            samples: list[int] = []
            for values in self._delay_samples.values():
                samples.extend(values)
        else:
            samples = list(self._delay_samples.get(channel_id, ()))
        if not samples:
            raise ConfigurationError(
                f"no delay samples recorded for channel {channel_id!r}"
            )
        samples.sort()
        return {p: _percentile_exact(samples, p) for p in percentiles}

    def be_goodput_bps(self, elapsed_ns: int) -> float:
        """Best-effort goodput (payload bits per second) over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.be_bytes_delivered * 8 / (elapsed_ns / 1_000_000_000)

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"RT frames delivered : {self.total_rt_frames}",
            f"RT messages complete: {self.total_rt_messages}",
            f"RT deadline misses  : {self.total_deadline_misses}",
            f"worst RT delay      : {self.worst_rt_delay_ns} ns",
            f"BE frames delivered : {self.be_frames_delivered}",
            f"BE bytes delivered  : {self.be_bytes_delivered}",
        ]
        return "\n".join(lines)
