"""ASCII timelines of link schedules, reconstructed from traces.

Debugging an EDF schedule from raw trace lines is miserable; this module
renders what actually happened on a link as a slot-granularity strip::

    m0->switch   |111222111...333|
                  ^t=0                ^t=15 slots

where each column is one timeslot and the glyph identifies the channel
whose frame occupied (started in) that slot (``.`` = idle, ``#`` = a
best-effort frame, ``+`` = more than one frame started in the slot --
possible for sub-slot signalling frames).

Built entirely from the :class:`~repro.sim.trace.TraceRecorder` records
the links already emit (``link.start``), so it costs nothing unless
tracing is enabled.

The module is also the measured-delay source of the network-calculus
oracle: :func:`extract_frame_delays` reads the per-frame ``node.deliver``
records (every end node stamps channel and delay on final delivery) and
returns them per channel, so a campaign can compare *every* measured
frame delay against its analytical bound without touching the metrics
collector -- an independent extraction path from the same simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.trace import TraceRecorder

__all__ = [
    "LinkTimeline",
    "build_timelines",
    "render_timeline",
    "FrameDelivery",
    "extract_frame_delays",
]

_CHANNEL_RE = re.compile(r" ch=(\d+) ")
_KIND_RE = re.compile(r"frame#\d+ (\w+) ")


@dataclass(slots=True)
class LinkTimeline:
    """Per-slot occupancy of one link direction.

    ``slots[i]`` lists the channel IDs of RT frames whose transmission
    *started* in slot ``i`` (-1 marks a best-effort or signalling
    frame).
    """

    link: str
    slots: list[list[int]]

    @property
    def busy_slots(self) -> int:
        return sum(1 for entries in self.slots if entries)

    @property
    def idle_slots(self) -> int:
        return len(self.slots) - self.busy_slots

    def channel_slot_count(self, channel_id: int) -> int:
        """Slots in which a frame of ``channel_id`` started."""
        return sum(
            1 for entries in self.slots if channel_id in entries
        )


def _glyph(entries: list[int]) -> str:
    if not entries:
        return "."
    if len(entries) > 1:
        return "+"
    channel = entries[0]
    if channel < 0:
        return "#"
    if channel < 10:
        return str(channel)
    # letters for channels 10..35, '*' beyond
    if channel < 36:
        return chr(ord("a") + channel - 10)
    return "*"


def build_timelines(
    trace: TraceRecorder, slot_ns: int, horizon_slots: int
) -> dict[str, LinkTimeline]:
    """Reconstruct per-link timelines from ``link.start`` trace records.

    Parameters
    ----------
    trace:
        A recorder that was enabled during the simulation.
    slot_ns:
        Timeslot duration used to bucket start times.
    horizon_slots:
        Length of the strip; later records are ignored.
    """
    if slot_ns <= 0:
        raise ConfigurationError(f"slot_ns must be positive, got {slot_ns}")
    if horizon_slots <= 0:
        raise ConfigurationError(
            f"horizon_slots must be positive, got {horizon_slots}"
        )
    timelines: dict[str, LinkTimeline] = {}
    for record in trace.by_category("link.start"):
        slot = record.time // slot_ns
        if slot >= horizon_slots:
            continue
        timeline = timelines.get(record.subject)
        if timeline is None:
            timeline = LinkTimeline(
                link=record.subject,
                slots=[[] for _ in range(horizon_slots)],
            )
            timelines[record.subject] = timeline
        match = _CHANNEL_RE.search(record.detail)
        kind = _KIND_RE.search(record.detail)
        is_rt = bool(kind and kind.group(1) == "rt")
        channel = int(match.group(1)) if (match and is_rt) else -1
        timeline.slots[slot].append(channel)
    return timelines


@dataclass(frozen=True, slots=True)
class FrameDelivery:
    """One RT frame's final delivery, as witnessed by the trace."""

    #: destination node that received the frame.
    node: str
    channel_id: int
    #: simulation time of the delivery (ns).
    time_ns: int
    #: release-to-delivery delay (ns), stamped by the receiving node.
    delay_ns: int


def extract_frame_delays(
    trace: TraceRecorder,
) -> dict[int, list[FrameDelivery]]:
    """Per-frame RT delivery delays, per channel, from ``node.deliver``.

    Best-effort deliveries (``channel == -1`` in the record fields) are
    skipped; a channel torn down mid-run simply stops contributing
    records, so its list holds exactly the frames delivered while it was
    active. Lists are in record order, which is delivery-time order.
    """
    deliveries: dict[int, list[FrameDelivery]] = {}
    for record in trace.by_category("node.deliver"):
        fields = record.fields or {}
        channel = fields.get("channel")
        delay = fields.get("delay_ns")
        if channel is None or delay is None or channel < 0:
            continue
        deliveries.setdefault(int(channel), []).append(
            FrameDelivery(
                node=record.subject,
                channel_id=int(channel),
                time_ns=record.time,
                delay_ns=int(delay),
            )
        )
    return deliveries


def render_timeline(timeline: LinkTimeline, width: int = 80) -> str:
    """Render one link's strip, wrapping at ``width`` slots per line."""
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    glyphs = "".join(_glyph(entries) for entries in timeline.slots)
    lines = [f"{timeline.link}  ({timeline.busy_slots} busy / "
             f"{len(timeline.slots)} slots)"]
    for start in range(0, len(glyphs), width):
        chunk = glyphs[start : start + width]
        lines.append(f"  [{start:5d}] |{chunk}|")
    return "\n".join(lines)
