"""Summary statistics over repeated experiment trials.

Every randomized experiment in this reproduction is run over multiple
seeds; the harness reports means with normal-approximation confidence
intervals. Kept deliberately simple (no scipy dependence on the hot
path): with >= 20 trials per point the normal approximation is adequate
for the shape comparisons the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SeriesSummary", "mean_confidence", "summarize"]

#: Two-sided z values for the confidence levels the harness offers.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True, slots=True)
class SeriesSummary:
    """Mean / spread summary of one sample of trial outcomes."""

    n: int
    mean: float
    std: float
    ci_half_width: float
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width


def mean_confidence(
    samples: Sequence[float], level: float = 0.95
) -> tuple[float, float]:
    """``(mean, half-width)`` of a normal-approximation CI.

    A single sample yields a zero-width interval (there is no spread
    information); an empty sample is a caller error.
    """
    summary = summarize(samples, level)
    return summary.mean, summary.ci_half_width


def summarize(samples: Sequence[float], level: float = 0.95) -> SeriesSummary:
    """Full summary of one sample of trial outcomes."""
    if level not in _Z_VALUES:
        raise ConfigurationError(
            f"confidence level must be one of {sorted(_Z_VALUES)}, got {level}"
        )
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return SeriesSummary(
            n=1, mean=mean, std=0.0, ci_half_width=0.0,
            minimum=mean, maximum=mean,
        )
    std = float(data.std(ddof=1))
    half = _Z_VALUES[level] * std / float(np.sqrt(data.size))
    return SeriesSummary(
        n=int(data.size),
        mean=mean,
        std=std,
        ci_half_width=half,
        minimum=float(data.min()),
        maximum=float(data.max()),
    )
