"""Measurement and reporting utilities.

* :mod:`~repro.analysis.metrics` -- per-channel delay statistics,
  deadline-miss accounting, best-effort throughput.
* :mod:`~repro.analysis.stats` -- summary statistics (means, confidence
  intervals) over repeated trials.
* :mod:`~repro.analysis.report` -- plain-text tables and series
  printers used by the benchmark harness to emit the paper's
  figure/table rows.
"""

from .metrics import ChannelDeliveryStats, MetricsCollector
from .stats import SeriesSummary, mean_confidence, summarize
from .report import format_series_table, format_table
from .export import series_to_csv, series_to_json, write_csv, write_json
from .timeline import LinkTimeline, build_timelines, render_timeline
from .audit import admission_report, link_report, system_summary

__all__ = [
    "ChannelDeliveryStats",
    "MetricsCollector",
    "SeriesSummary",
    "mean_confidence",
    "summarize",
    "format_series_table",
    "format_table",
    "series_to_csv",
    "series_to_json",
    "write_csv",
    "write_json",
    "LinkTimeline",
    "build_timelines",
    "render_timeline",
    "admission_report",
    "link_report",
    "system_summary",
]
