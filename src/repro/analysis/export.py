"""Export experiment results to CSV / JSON for external plotting.

The benchmark harness prints figures as tables; labs that want to plot
the reproduction against the paper's scan need machine-readable series.
These helpers are deliberately dependency-free (no pandas): a figure is
a dict of named y-series over one x-axis, exactly like
:func:`repro.analysis.report.format_series_table`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ConfigurationError

__all__ = ["series_to_csv", "series_to_json", "write_csv", "write_json"]


def _validate(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> None:
    if not x_label:
        raise ConfigurationError("x_label must be non-empty")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{len(x_values)}"
            )


def series_to_csv(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """Render a figure's series as CSV text (header + one row per x)."""
    _validate(x_label, x_values, series)
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([x_label, *series.keys()])
    for i, x in enumerate(x_values):
        writer.writerow([x, *(series[name][i] for name in series)])
    return buffer.getvalue()


def series_to_json(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    metadata: Mapping[str, object] | None = None,
) -> str:
    """Render a figure's series as a JSON document.

    ``metadata`` (seed, trials, parameters...) is embedded verbatim so
    the export is self-describing.
    """
    _validate(x_label, x_values, series)
    document = {
        "x_label": x_label,
        "x": list(x_values),
        "series": {name: list(values) for name, values in series.items()},
        "metadata": dict(metadata or {}),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_csv(
    path: str | Path,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> Path:
    """Write CSV to ``path``; returns the resolved path."""
    target = Path(path)
    target.write_text(series_to_csv(x_label, x_values, series))
    return target


def write_json(
    path: str | Path,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write JSON to ``path``; returns the resolved path."""
    target = Path(path)
    target.write_text(series_to_json(x_label, x_values, series, metadata))
    return target
