"""Operational reports over the system state and admission history.

A network operator running the paper's switch wants to answer, at a
glance: *how full is my network, which links are the bottlenecks, why
are requests being rejected, and how much headroom remains?* These
helpers render exactly that from the live objects:

* :func:`link_report` -- one row per occupied link direction: LinkLoad,
  reserved utilization, feasibility horizon, remaining headroom for a
  reference channel (via :func:`repro.core.feasibility.max_additional_tasks`).
* :func:`admission_report` -- acceptance/rejection totals with the
  per-reason breakdown the controller tracks.
* :func:`system_summary` -- both, as one printable block.
"""

from __future__ import annotations

from ..core.admission import AdmissionController, SystemState
from ..core.channel import ChannelSpec
from ..core.feasibility import is_feasible, max_additional_tasks
from ..core.task import LinkTask
from .report import format_table

__all__ = ["link_report", "admission_report", "system_summary"]


def link_report(
    state: SystemState, reference: ChannelSpec | None = None
) -> str:
    """Per-link occupancy table.

    ``reference`` adds a headroom column: how many more channels with
    that spec (split evenly) would still fit on the link. Links with no
    channels are omitted (every idle link trivially has full headroom).
    """
    rows = []
    for link in state.occupied_links():
        tasks = list(state.tasks_on(link))
        report = is_feasible(tasks)
        row = [
            str(link),
            state.link_load(link),
            f"{float(state.link_utilization(link)):.3f}",
            report.horizon,
        ]
        if reference is not None:
            probe = LinkTask(
                link=link,
                period=reference.period,
                capacity=reference.capacity,
                deadline=max(reference.capacity, reference.deadline // 2),
            )
            row.append(max_additional_tasks(tasks, probe))
        rows.append(row)
    headers = ["link", "LL", "reserved U", "horizon"]
    if reference is not None:
        headers.append(
            f"headroom (C={reference.capacity}, "
            f"d_link={max(reference.capacity, reference.deadline // 2)})"
        )
    return format_table(headers, rows, title="link occupancy")


def admission_report(controller: AdmissionController) -> str:
    """Acceptance/rejection totals with the per-reason breakdown."""
    rows = [
        ["accepted", controller.accept_count],
        ["rejected", controller.reject_count],
    ]
    for reason, count in sorted(
        controller.rejections_by_reason.items(), key=lambda kv: kv[0].value
    ):
        rows.append([f"  - {reason.value}", count])
    rows.append(["active channels", len(controller.state)])
    rows.append(["DPS", controller.dps.name])
    return format_table(
        ["quantity", "value"], rows, title="admission history"
    )


def system_summary(
    controller: AdmissionController,
    reference: ChannelSpec | None = None,
) -> str:
    """Admission history plus per-link occupancy, one printable block."""
    return (
        admission_report(controller)
        + "\n\n"
        + link_report(controller.state, reference=reference)
    )
