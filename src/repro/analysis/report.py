"""Plain-text tables for the benchmark harness.

The benchmarks regenerate the paper's figure as *rows of numbers* (we
have no plotting dependency and a figure's scientific content is its
series). These helpers render aligned ASCII tables so ``pytest -s`` and
the example scripts produce readable output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConfigurationError

__all__ = ["format_table", "format_series_table"]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Every row must have exactly ``len(headers)`` cells; floats are
    rendered with two decimals, everything else with ``str``.
    """
    if not headers:
        raise ConfigurationError("table needs at least one column")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append([_render(cell) for cell in row])
    widths = [
        max(len(header), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render several named y-series against one shared x-axis.

    This is the "figure as a table" format the benches print: one row
    per x value, one column per series (e.g. ``sdps`` and ``adps``
    acceptance counts against requested channels, reproducing
    Figure 18.5).
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, x-axis has "
                f"{len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
