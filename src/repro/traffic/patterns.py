"""Channel-request sequences: who asks for a channel to whom.

The paper's evaluation uses the **master-slave** pattern of Figure 18.1:
a small set of master nodes communicating with a large set of slaves.
Masters' uplinks then carry many more channels than any slave's
downlink -- the bottleneck ADPS is designed to relieve. The exact
request-arrival process is not published; we draw (master, slave) pairs
uniformly at random, which preserves the load *ratio* the result depends
on (documented in EXPERIMENTS.md).

Other patterns exercise regimes the ablations need:

* :func:`uniform_requests` -- symmetric all-to-all traffic, where ADPS's
  load ratio is ~1 and it should coincide with SDPS;
* :func:`hotspot_requests` -- a fraction of requests target one node,
  creating a *downlink* bottleneck (the mirror image of master-slave);
* :func:`funnel_requests` -- everyone sends to one sink, the extreme
  downlink bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.channel import ChannelSpec
from ..errors import ConfigurationError
from .spec import SpecSampler

__all__ = [
    "ChannelRequest",
    "master_slave_names",
    "master_slave_requests",
    "uniform_requests",
    "hotspot_requests",
    "funnel_requests",
]


@dataclass(frozen=True, slots=True)
class ChannelRequest:
    """One entry of a request sequence."""

    source: str
    destination: str
    spec: ChannelSpec


def master_slave_names(
    n_masters: int, n_slaves: int
) -> tuple[list[str], list[str]]:
    """Node names for a master-slave configuration (``m0.., s0..``)."""
    if n_masters <= 0 or n_slaves <= 0:
        raise ConfigurationError(
            f"need at least one master and one slave, got "
            f"{n_masters}/{n_slaves}"
        )
    return (
        [f"m{i}" for i in range(n_masters)],
        [f"s{i}" for i in range(n_slaves)],
    )


def master_slave_requests(
    masters: Sequence[str],
    slaves: Sequence[str],
    count: int,
    sampler: SpecSampler,
    rng: np.random.Generator,
    master_to_slave_fraction: float = 1.0,
) -> list[ChannelRequest]:
    """Draw ``count`` requests between random (master, slave) pairs.

    ``master_to_slave_fraction`` is the probability that a request flows
    master -> slave (the paper's Figure 18.1 arrows); the remainder flow
    slave -> master (e.g. sensor readings toward a controller). The
    default 1.0 concentrates all load on master uplinks, the regime
    Figure 18.5 demonstrates.
    """
    if count < 0:
        raise ConfigurationError(f"request count must be >= 0, got {count}")
    if not (0.0 <= master_to_slave_fraction <= 1.0):
        raise ConfigurationError(
            "master_to_slave_fraction must be in [0, 1], got "
            f"{master_to_slave_fraction}"
        )
    if not masters or not slaves:
        raise ConfigurationError("masters and slaves must be non-empty")
    requests = []
    for _ in range(count):
        master = masters[int(rng.integers(0, len(masters)))]
        slave = slaves[int(rng.integers(0, len(slaves)))]
        spec = sampler.sample(rng)
        if rng.random() < master_to_slave_fraction:
            requests.append(ChannelRequest(master, slave, spec))
        else:
            requests.append(ChannelRequest(slave, master, spec))
    return requests


def uniform_requests(
    nodes: Sequence[str],
    count: int,
    sampler: SpecSampler,
    rng: np.random.Generator,
) -> list[ChannelRequest]:
    """Draw ``count`` requests between distinct uniformly random nodes."""
    if len(nodes) < 2:
        raise ConfigurationError(
            f"uniform traffic needs >= 2 nodes, got {len(nodes)}"
        )
    if count < 0:
        raise ConfigurationError(f"request count must be >= 0, got {count}")
    requests = []
    for _ in range(count):
        i = int(rng.integers(0, len(nodes)))
        j = int(rng.integers(0, len(nodes) - 1))
        if j >= i:
            j += 1
        requests.append(ChannelRequest(nodes[i], nodes[j], sampler.sample(rng)))
    return requests


def hotspot_requests(
    nodes: Sequence[str],
    hotspot: str,
    count: int,
    sampler: SpecSampler,
    rng: np.random.Generator,
    hotspot_fraction: float = 0.5,
) -> list[ChannelRequest]:
    """Uniform traffic, except a fraction targets one hot destination.

    Creates a *downlink* bottleneck at ``hotspot`` -- the mirror image
    of the master-slave uplink bottleneck; ADPS should shift deadline
    budget toward the hot downlink.
    """
    if hotspot not in nodes:
        raise ConfigurationError(f"hotspot {hotspot!r} is not in the node list")
    if not (0.0 <= hotspot_fraction <= 1.0):
        raise ConfigurationError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    others = [n for n in nodes if n != hotspot]
    if not others:
        raise ConfigurationError("need at least one non-hotspot node")
    requests = []
    for _ in range(count):
        if rng.random() < hotspot_fraction:
            source = others[int(rng.integers(0, len(others)))]
            requests.append(
                ChannelRequest(source, hotspot, sampler.sample(rng))
            )
        else:
            i = int(rng.integers(0, len(others)))
            j = int(rng.integers(0, len(others) - 1)) if len(others) > 1 else 0
            if len(others) > 1 and j >= i:
                j += 1
            if len(others) == 1:
                requests.append(
                    ChannelRequest(others[0], hotspot, sampler.sample(rng))
                )
            else:
                requests.append(
                    ChannelRequest(others[i], others[j], sampler.sample(rng))
                )
    return requests


def funnel_requests(
    sources: Sequence[str],
    sink: str,
    count: int,
    sampler: SpecSampler,
    rng: np.random.Generator,
) -> list[ChannelRequest]:
    """Every request flows from a random source into one sink node."""
    if sink in sources:
        raise ConfigurationError("the sink must not be among the sources")
    if not sources:
        raise ConfigurationError("need at least one source")
    return [
        ChannelRequest(
            sources[int(rng.integers(0, len(sources)))],
            sink,
            sampler.sample(rng),
        )
        for _ in range(count)
    ]
