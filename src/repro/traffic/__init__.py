"""Workload generation: channel-request patterns and background traffic.

* :mod:`~repro.traffic.spec` -- samplers for channel parameter triples
  (fixed, uniform-random, harmonic-period).
* :mod:`~repro.traffic.patterns` -- request-sequence generators: the
  master-slave pattern of Figure 18.1 plus uniform/hotspot/funnel
  controls used by the ablation experiments.
* :mod:`~repro.traffic.besteffort` -- best-effort background load
  (saturating and Poisson injectors) for the coexistence experiment.
"""

from .spec import FixedSpecSampler, HarmonicSpecSampler, UniformSpecSampler
from .patterns import (
    ChannelRequest,
    funnel_requests,
    hotspot_requests,
    master_slave_names,
    master_slave_requests,
    uniform_requests,
)
from .besteffort import BestEffortInjector

__all__ = [
    "FixedSpecSampler",
    "HarmonicSpecSampler",
    "UniformSpecSampler",
    "ChannelRequest",
    "master_slave_names",
    "master_slave_requests",
    "uniform_requests",
    "hotspot_requests",
    "funnel_requests",
    "BestEffortInjector",
]
