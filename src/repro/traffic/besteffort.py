"""Best-effort background traffic injectors.

Section 18.2.1: "Regular non-real-time traffic is supported at the same
time" -- best-effort frames ride the FCFS queues and are served only
when the deadline-sorted queue is empty. The coexistence experiment
(EXP-B1) needs controllable background load to show that (a) RT
guarantees are untouched by any amount of best-effort pressure and (b)
best-effort still receives the bandwidth RT leaves over.

Two injector styles:

* **saturating** -- keeps the uplink's best-effort queue topped up so
  the link is busy whenever RT is idle (worst case for RT blocking,
  upper bound for BE throughput);
* **poisson** -- memoryless arrivals at a configurable offered load,
  the classic background-traffic model.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..network.node import EndNode
from ..sim.kernel import Simulator
from ..units import ETH_MAX_PAYLOAD

__all__ = ["BestEffortInjector"]


class BestEffortInjector:
    """Generates best-effort frames from one node to fixed destinations.

    Parameters
    ----------
    sim:
        The event kernel.
    node:
        Sending node (frames enter its uplink FCFS queue).
    destinations:
        Cycled round-robin as frame destinations.
    payload_bytes:
        Payload per frame (default: maximum, the worst blocking case).
    mode:
        ``"saturate"`` keeps ``backlog_target`` frames queued;
        ``"poisson"`` draws exponential inter-arrival times for a target
        offered load.
    offered_load:
        For poisson mode: fraction of the link rate to offer (0..2;
        values above 1 overload deliberately).
    backlog_target:
        For saturate mode: frames to keep in the uplink BE queue.
    rng:
        RNG for poisson draws (ignored in saturate mode).
    """

    def __init__(
        self,
        sim: Simulator,
        node: EndNode,
        destinations: list[str],
        payload_bytes: int = ETH_MAX_PAYLOAD,
        mode: str = "saturate",
        offered_load: float = 0.5,
        backlog_target: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not destinations:
            raise ConfigurationError("injector needs at least one destination")
        if mode not in ("saturate", "poisson"):
            raise ConfigurationError(
                f"mode must be 'saturate' or 'poisson', got {mode!r}"
            )
        if mode == "poisson":
            if rng is None:
                raise ConfigurationError("poisson mode needs an rng")
            if offered_load <= 0 or offered_load > 2:
                raise ConfigurationError(
                    f"offered_load must be in (0, 2], got {offered_load}"
                )
        if backlog_target <= 0:
            raise ConfigurationError(
                f"backlog_target must be positive, got {backlog_target}"
            )
        self._sim = sim
        self._node = node
        self._destinations = destinations
        self._payload = payload_bytes
        self._mode = mode
        self._offered_load = offered_load
        self._backlog_target = backlog_target
        self._rng = rng
        self._next_dest = 0
        self._running = False
        self.frames_offered = 0

    def start(self) -> None:
        """Begin injecting (idempotent)."""
        if self._running:
            return
        self._running = True
        if self._mode == "saturate":
            self._sim.schedule(0, self._top_up, label="be:saturate")
        else:
            self._schedule_poisson()

    def stop(self) -> None:
        self._running = False

    def _dest(self) -> str:
        dest = self._destinations[self._next_dest % len(self._destinations)]
        self._next_dest += 1
        return dest

    def _send_one(self) -> None:
        self._node.send_best_effort(self._dest(), self._payload)
        self.frames_offered += 1

    # -- saturate mode -----------------------------------------------------

    def _top_up(self) -> None:
        if not self._running:
            return
        port = self._node.uplink
        assert port is not None
        while port.be_backlog < self._backlog_target:
            self._send_one()
        # Re-check one frame-time later: by then at least one frame can
        # have drained. Polling at frame granularity keeps the queue full
        # without flooding the event heap.
        self._sim.schedule(
            self._frame_time_ns(), self._top_up, label="be:saturate"
        )

    def _frame_time_ns(self) -> int:
        # One max-frame slot is a safe polling period: at least one
        # queued frame can have drained by then.
        return max(1, self._node.rt_layer.slot_ns)

    # -- poisson mode ---------------------------------------------------------

    def _schedule_poisson(self) -> None:
        if not self._running:
            return
        assert self._rng is not None
        slot_ns = self._node.rt_layer.slot_ns
        # offered_load of 1.0 == one max frame per slot on average.
        mean_gap_ns = slot_ns / self._offered_load
        gap = max(1, int(self._rng.exponential(mean_gap_ns)))
        self._sim.schedule(gap, self._poisson_fire, label="be:poisson")

    def _poisson_fire(self) -> None:
        if not self._running:
            return
        self._send_one()
        self._schedule_poisson()
