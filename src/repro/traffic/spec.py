"""Samplers for RT-channel parameter triples ``{P, C, d}``.

The paper's Figure 18.5 experiment uses one fixed triple
(``C=3, P=100, d=40``) for every requested channel; the ablation
experiments vary parameters. A *spec sampler* is a small object with a
``sample(rng)`` method returning a :class:`~repro.core.channel.ChannelSpec`;
experiments draw one spec per request from the trial's named RNG stream
so workloads stay reproducible and decoupled (see
:class:`repro.sim.rng.RngRegistry`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.channel import ChannelSpec
from ..errors import ConfigurationError

__all__ = [
    "SpecSampler",
    "FixedSpecSampler",
    "UniformSpecSampler",
    "HarmonicSpecSampler",
]


@runtime_checkable
class SpecSampler(Protocol):
    """Anything that can draw channel parameter triples."""

    def sample(self, rng: np.random.Generator) -> ChannelSpec:
        """Draw one spec."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class FixedSpecSampler:
    """Always returns the same spec (the paper's Figure 18.5 workload)."""

    spec: ChannelSpec

    @classmethod
    def paper_default(cls) -> "FixedSpecSampler":
        """``C=3, P=100, d=40`` -- the exact parameters of Figure 18.5."""
        return cls(ChannelSpec(period=100, capacity=3, deadline=40))

    def sample(self, rng: np.random.Generator) -> ChannelSpec:
        del rng
        return self.spec


@dataclass(frozen=True, slots=True)
class UniformSpecSampler:
    """Independent uniform draws for each parameter, in timeslots.

    ``deadline`` is drawn from ``deadline_range`` but floored at
    ``2 * capacity`` so every sampled channel is at least partitionable
    (rejecting structurally impossible channels would only add noise to
    acceptance counts -- the paper's admission test, not Eq. 18.9, is
    what the ablations study).
    """

    period_range: tuple[int, int]
    capacity_range: tuple[int, int]
    deadline_range: tuple[int, int]

    def __post_init__(self) -> None:
        for name, (lo, hi) in (
            ("period_range", self.period_range),
            ("capacity_range", self.capacity_range),
            ("deadline_range", self.deadline_range),
        ):
            if lo <= 0 or hi < lo:
                raise ConfigurationError(
                    f"{name} must satisfy 0 < lo <= hi, got ({lo}, {hi})"
                )

    def sample(self, rng: np.random.Generator) -> ChannelSpec:
        period = int(rng.integers(self.period_range[0], self.period_range[1] + 1))
        cap_hi = min(self.capacity_range[1], period)
        cap_lo = min(self.capacity_range[0], cap_hi)
        capacity = int(rng.integers(cap_lo, cap_hi + 1))
        deadline = int(
            rng.integers(self.deadline_range[0], self.deadline_range[1] + 1)
        )
        deadline = max(deadline, 2 * capacity)
        return ChannelSpec(period=period, capacity=capacity, deadline=deadline)


@dataclass(frozen=True, slots=True)
class HarmonicSpecSampler:
    """Periods drawn from a harmonic set (typical of industrial cyclic IO).

    Harmonic periods (each dividing the next) keep hyperperiods small,
    which is both realistic for PLC-style traffic and a distinct regime
    for the feasibility test's horizon (EXP-P1 uses this to contrast
    against the uniform sampler's long hyperperiods).
    """

    periods: Sequence[int] = (50, 100, 200, 400)
    capacity_range: tuple[int, int] = (1, 5)
    deadline_fraction: float = 0.4

    def __post_init__(self) -> None:
        if not self.periods:
            raise ConfigurationError("harmonic sampler needs >= 1 period")
        ordered = sorted(self.periods)
        for small, large in zip(ordered, ordered[1:]):
            if large % small != 0:
                raise ConfigurationError(
                    f"periods {self.periods!r} are not harmonic: "
                    f"{large} is not a multiple of {small}"
                )
        if not (0 < self.deadline_fraction <= 1):
            raise ConfigurationError(
                "deadline_fraction must be in (0, 1], got "
                f"{self.deadline_fraction}"
            )
        lo, hi = self.capacity_range
        if lo <= 0 or hi < lo:
            raise ConfigurationError(
                f"capacity_range must satisfy 0 < lo <= hi, got ({lo}, {hi})"
            )

    def sample(self, rng: np.random.Generator) -> ChannelSpec:
        period = int(self.periods[int(rng.integers(0, len(self.periods)))])
        cap_hi = min(self.capacity_range[1], period)
        capacity = int(rng.integers(self.capacity_range[0], cap_hi + 1))
        deadline = max(int(period * self.deadline_fraction), 2 * capacity)
        return ChannelSpec(period=period, capacity=capacity, deadline=deadline)
