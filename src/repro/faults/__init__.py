"""Deterministic fault injection for robustness experiments.

The paper's model is error-free; everything in this package is an
**extension** used to demonstrate that the implementation degrades
cleanly (EXP-R1/EXP-R2), never silently. See :mod:`repro.faults.plan`.
"""

from .plan import (
    COORDINATION_CLASSES,
    FRAME_CLASSES,
    SIGNALLING_CLASSES,
    FaultPlan,
    LinkDownWindow,
)

__all__ = [
    "COORDINATION_CLASSES",
    "FRAME_CLASSES",
    "SIGNALLING_CLASSES",
    "FaultPlan",
    "LinkDownWindow",
]
