"""Targeted, deterministic control-plane fault injection.

:class:`~repro.network.link.HalfLink`'s ``loss_rate`` corrupts frames
indiscriminately; robustness experiments for the *signalling* plane need
sharper tools:

* drop a **specific handshake step** (the paper's Figure 18.3/18.4
  messages each have a distinct on-wire shape, so arrivals classify
  without any out-of-band tagging);
* drop the **n-th occurrence** of a frame class exactly once (the
  "every handshake frame lost exactly once" test matrix);
* apply per-class **Bernoulli loss** with independent, named RNG
  streams (losing requests at 20% must not reshuffle the draws for
  teardowns);
* take a link down for a **scheduled time window** (cable pull /
  switchover), matching links by ``fnmatch`` pattern.

A :class:`FaultPlan` is consulted by every :class:`HalfLink` it is
installed on (``build_star(fault_plan=...)`` installs one plan on every
wire) at frame-arrival time, before the legacy Bernoulli draw. All
randomness comes from a :class:`~repro.sim.rng.RngRegistry` seeded at
construction, so a plan is a pure function of (seed, arrival sequence):
two runs over the same traffic see identical drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.frames import (
    FrameType,
    GossipFrame,
    IntentFrame,
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
)
from ..sim.rng import RngRegistry

__all__ = [
    "FRAME_CLASSES",
    "SIGNALLING_CLASSES",
    "COORDINATION_CLASSES",
    "FaultPlan",
    "LinkDownWindow",
]

#: The switch's name in frame source/destination fields (mirrors
#: :data:`repro.network.node.SWITCH_NAME`; duplicated to keep this
#: module import-light).
_SWITCH_SOURCE = "switch"

#: Every frame class :meth:`FaultPlan.classify` can produce. The five
#: signalling classes are the handshake steps of Figures 18.3/18.4 plus
#: the teardown extension:
#:
#: * ``request``        -- source -> switch RequestFrame
#: * ``offer``          -- switch -> destination stamped RequestFrame
#: * ``dest-response``  -- destination -> switch ResponseFrame
#: * ``final-response`` -- switch -> source ResponseFrame (verdict)
#: * ``teardown``       -- source -> switch TeardownFrame
#:
#: The two coordination classes carry the multi-switch intent-lock and
#: gossip extension frames (:class:`~repro.protocol.frames.IntentFrame`
#: and :class:`~repro.protocol.frames.GossipFrame`).
FRAME_CLASSES = (
    "request",
    "offer",
    "dest-response",
    "final-response",
    "teardown",
    "intent",
    "gossip",
    "rt-data",
    "best-effort",
)

#: The single-switch handshake subset of :data:`FRAME_CLASSES`. Kept to
#: exactly the five Figure 18.3/18.4 steps (tests and the EXP-R2 matrix
#: parametrize over it); the coordination classes live separately in
#: :data:`COORDINATION_CLASSES`.
SIGNALLING_CLASSES = (
    "request",
    "offer",
    "dest-response",
    "final-response",
    "teardown",
)

#: The multi-switch coordination subset of :data:`FRAME_CLASSES`.
COORDINATION_CLASSES = (
    "intent",
    "gossip",
)


@dataclass(frozen=True, slots=True)
class LinkDownWindow:
    """One scheduled outage: frames arriving in the window are dropped.

    ``link`` is an ``fnmatch`` pattern over :class:`HalfLink` names
    (``"m0->switch"``, ``"switch->*"``, ``"*"``). The window is
    half-open: ``start_ns <= now < end_ns``.
    """

    link: str
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigurationError(
                f"down window needs 0 <= start < end, got "
                f"[{self.start_ns}, {self.end_ns})"
            )

    def covers(self, link_name: str, now: int) -> bool:
        return self.start_ns <= now < self.end_ns and fnmatchcase(
            link_name, self.link
        )


class FaultPlan:
    """A deterministic drop schedule over classified frame arrivals.

    Parameters
    ----------
    seed:
        Root seed for the per-class RNG streams.
    bernoulli:
        ``{frame class: drop probability}``; classes absent drop never.
    drop_occurrences:
        ``{frame class: occurrence indices}`` -- drop the n-th arrival
        (0-based, counted network-wide per class) of that class. The
        deterministic tool behind "drop each handshake frame exactly
        once" tests.
    down_windows:
        Scheduled :class:`LinkDownWindow` outages.
    """

    def __init__(
        self,
        seed: int = 0,
        bernoulli: Mapping[str, float] | None = None,
        drop_occurrences: Mapping[str, Sequence[int]] | None = None,
        down_windows: Sequence[LinkDownWindow] = (),
    ) -> None:
        bernoulli = dict(bernoulli or {})
        drop_occurrences = {
            cls: frozenset(indices)
            for cls, indices in (drop_occurrences or {}).items()
        }
        for mapping in (bernoulli, drop_occurrences):
            for cls in mapping:
                if cls not in FRAME_CLASSES:
                    raise ConfigurationError(
                        f"unknown frame class {cls!r}; expected one of "
                        f"{FRAME_CLASSES}"
                    )
        for cls, rate in bernoulli.items():
            if not (0.0 <= rate < 1.0):
                raise ConfigurationError(
                    f"drop probability for {cls!r} must be in [0, 1), "
                    f"got {rate}"
                )
        for cls, indices in drop_occurrences.items():
            if any(i < 0 for i in indices):
                raise ConfigurationError(
                    f"occurrence indices for {cls!r} must be >= 0"
                )
        self._bernoulli = bernoulli
        self._drop_occurrences = drop_occurrences
        self._down_windows = tuple(down_windows)
        registry = RngRegistry(seed)
        self._rngs = {
            cls: registry.stream(f"fault-{cls}") for cls in bernoulli
        }
        #: arrivals seen so far, per class (network-wide).
        self.seen: dict[str, int] = {cls: 0 for cls in FRAME_CLASSES}
        #: drops performed, per class.
        self.drops_by_class: dict[str, int] = {cls: 0 for cls in FRAME_CLASSES}
        #: drops attributable to down windows (also in drops_by_class).
        self.window_drops = 0

    @classmethod
    def signalling_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Uniform Bernoulli loss over every signalling class (EXP-R2)."""
        return cls(
            seed=seed,
            bernoulli={name: rate for name in SIGNALLING_CLASSES},
        )

    @classmethod
    def control_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Uniform Bernoulli loss over signalling *and* coordination
        classes -- the EXP-X4 regime where intent-lock legs are as lossy
        as the handshake they protect."""
        return cls(
            seed=seed,
            bernoulli={
                name: rate
                for name in SIGNALLING_CLASSES + COORDINATION_CLASSES
            },
        )

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_class.values())

    def signalling_drops(self) -> int:
        """Drops across the five control-plane classes."""
        return sum(self.drops_by_class[c] for c in SIGNALLING_CLASSES)

    @staticmethod
    def classify(frame: EthernetFrame) -> str:
        """Name the handshake step (or traffic class) ``frame`` carries.

        Signalling payloads normally travel as their bit-exact wire
        encoding whose first byte is the FrameType tag; the switch's
        grant-carrying final response is the one structured exception
        (a ``(ResponseFrame, ChannelGrant)`` tuple). Direction
        (node->switch vs switch->node) disambiguates the shared
        CONNECT/RESPONSE formats into distinct handshake steps.
        """
        if frame.kind is FrameKind.RT_DATA:
            return "rt-data"
        if frame.kind is FrameKind.BEST_EFFORT:
            return "best-effort"
        payload = frame.payload_object
        from_switch = frame.source == _SWITCH_SOURCE
        if isinstance(payload, tuple):
            return "final-response"
        if isinstance(payload, (bytes, bytearray)):
            tag = payload[0]
        elif isinstance(payload, RequestFrame):
            tag = int(FrameType.CONNECT)
        elif isinstance(payload, ResponseFrame):
            tag = int(FrameType.RESPONSE)
        elif isinstance(payload, TeardownFrame):
            tag = int(FrameType.TEARDOWN)
        elif isinstance(payload, IntentFrame):
            tag = int(FrameType.INTENT)
        elif isinstance(payload, GossipFrame):
            tag = int(FrameType.GOSSIP)
        else:
            raise ConfigurationError(
                f"cannot classify signalling payload "
                f"{type(payload).__name__}"
            )
        if tag == FrameType.CONNECT:
            return "offer" if from_switch else "request"
        if tag == FrameType.RESPONSE:
            return "final-response" if from_switch else "dest-response"
        if tag == FrameType.TEARDOWN:
            return "teardown"
        if tag == FrameType.INTENT:
            return "intent"
        if tag == FrameType.GOSSIP:
            return "gossip"
        raise ConfigurationError(
            f"unknown signalling type tag {tag}"
        )

    def export_state(self) -> dict:
        """Serialize the plan's mutable state for a service checkpoint.

        The configuration (rates, occurrence schedules, windows, seed)
        is code-supplied and NOT exported; only the arrival counters and
        the per-class RNG positions travel, so a plan rebuilt with the
        same configuration and fed :meth:`import_state` produces drop
        draws byte-identical to the never-checkpointed plan.
        """
        return {
            "seen": dict(self.seen),
            "drops_by_class": dict(self.drops_by_class),
            "window_drops": self.window_drops,
            "rng_states": {
                cls: rng.bit_generator.state
                for cls, rng in sorted(self._rngs.items())
            },
        }

    def import_state(self, data: dict) -> None:
        """Adopt counters and RNG positions from :meth:`export_state`."""
        for cls, count in data.get("seen", {}).items():
            if cls not in self.seen:
                raise ConfigurationError(
                    f"snapshot names unknown frame class {cls!r}"
                )
            self.seen[cls] = int(count)
        for cls, count in data.get("drops_by_class", {}).items():
            if cls not in self.drops_by_class:
                raise ConfigurationError(
                    f"snapshot names unknown frame class {cls!r}"
                )
            self.drops_by_class[cls] = int(count)
        self.window_drops = int(data.get("window_drops", 0))
        for cls, state in data.get("rng_states", {}).items():
            rng = self._rngs.get(cls)
            if rng is None:
                raise ConfigurationError(
                    f"snapshot carries an RNG stream for {cls!r} but this "
                    f"plan draws no Bernoulli losses for that class; "
                    f"rebuild the plan with the snapshot's configuration"
                )
            rng.bit_generator.state = state

    def should_drop(self, link_name: str, frame: EthernetFrame, now: int) -> bool:
        """Decide the fate of one arrival (called by the link)."""
        cls = self.classify(frame)
        index = self.seen[cls]
        self.seen[cls] = index + 1
        for window in self._down_windows:
            if window.covers(link_name, now):
                self.window_drops += 1
                self.drops_by_class[cls] += 1
                return True
        targeted = self._drop_occurrences.get(cls)
        if targeted is not None and index in targeted:
            self.drops_by_class[cls] += 1
            return True
        rate = self._bernoulli.get(cls, 0.0)
        if rate > 0.0 and float(self._rngs[cls].random()) < rate:
            self.drops_by_class[cls] += 1
            return True
        return False
