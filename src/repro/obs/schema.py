"""Minimal JSON-schema validation for emitted telemetry bundles.

The repo is zero-dependency, so this implements the small JSON-Schema
subset the telemetry formats actually need -- ``type``, ``properties``,
``required``, ``items``, ``enum``, ``additionalProperties`` (boolean
form) and ``minimum`` -- rather than pulling in ``jsonschema``.
:func:`validate` returns a list of human-readable error strings (empty
means valid), which both the tests and the ``repro obs check`` CI gate
consume.

The schemas here are the written contract for the bundle files:

* :data:`METRICS_SCHEMA` -- ``metrics.json`` (a
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot`),
* :data:`CHROME_TRACE_SCHEMA` -- ``trace.chrome.json`` (the Chrome
  ``trace_event`` document Perfetto loads),
* :data:`TRACE_RECORD_SCHEMA` -- one line of ``trace.jsonl``,
* :data:`TIMESERIES_SCHEMA` -- ``timeseries.json`` (probe samples),
* :data:`SPAN_SCHEMA` -- one line of ``spans.jsonl`` (causal spans),
* :data:`ANOMALY_SCHEMA` -- one line of ``anomalies.jsonl`` (invariant
  monitor output),
* :data:`FLIGHT_SCHEMA` -- a flight-recorder ``flight.json`` dump,
* :data:`BENCH_SCHEMA` -- a standardized ``BENCH_<name>.json`` record
  emitted by the benchmark suite.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "validate",
    "validate_bundle",
    "METRICS_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "TRACE_RECORD_SCHEMA",
    "TIMESERIES_SCHEMA",
    "SPAN_SCHEMA",
    "ANOMALY_SCHEMA",
    "FLIGHT_SCHEMA",
    "BENCH_SCHEMA",
]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Check ``instance`` against the supported JSON-Schema subset.

    Returns error strings; an empty list means the instance conforms.
    """
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(instance, py_type)
        # bool is an int subclass in Python; keep the JSON types distinct
        if ok and expected in ("integer", "number") and isinstance(
            instance, bool
        ):
            ok = False
        if not ok:
            errors.append(
                f"{path}: expected {expected}, got "
                f"{type(instance).__name__}"
            )
            return errors  # deeper checks would be nonsense
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance} below minimum {schema['minimum']}"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            subschema = properties.get(key)
            if subschema is not None:
                errors.extend(validate(value, subschema, f"{path}.{key}"))
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected key {key!r}")
        extra = schema.get("patternValues")
        if extra is not None:  # schema applied to every value (our ext.)
            for key, value in instance.items():
                if key not in properties:
                    errors.extend(validate(value, extra, f"{path}.{key}"))
    if isinstance(instance, list):
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(instance):
                errors.extend(
                    validate(item, item_schema, f"{path}[{index}]")
                )
    return errors


#: One series entry inside a metric family.
_SERIES_SCHEMA = {
    "type": "object",
    "required": ["labels"],
    "properties": {
        "labels": {"type": "object"},
        "value": {"type": "number"},
        "count": {"type": "integer", "minimum": 0},
        "sum": {"type": "number"},
        "buckets": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["le", "count"],
                "properties": {"count": {"type": "integer", "minimum": 0}},
            },
        },
    },
}

METRICS_SCHEMA = {
    "type": "object",
    "patternValues": {
        "type": "object",
        "required": ["type", "label_names", "series"],
        "properties": {
            "type": {"enum": ["counter", "gauge", "histogram"]},
            "help": {"type": "string"},
            "label_names": {"type": "array", "items": {"type": "string"}},
            "series": {"type": "array", "items": _SERIES_SCHEMA},
        },
    },
}

CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    # b/n/e are the async-span phases the Perfetto
                    # span export emits (one async track per trace).
                    "ph": {
                        "enum": ["X", "i", "M", "B", "E", "C", "b", "n", "e"]
                    },
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "id": {"type": "integer", "minimum": 0},
                    "cat": {"type": "string"},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"type": "string"},
    },
}

TRACE_RECORD_SCHEMA = {
    "type": "object",
    "required": ["time", "category", "subject"],
    "additionalProperties": False,
    "properties": {
        "time": {"type": "integer", "minimum": 0},
        "category": {"type": "string"},
        "subject": {"type": "string"},
        "detail": {"type": "string"},
        "fields": {"type": "object"},
    },
}

TIMESERIES_SCHEMA = {
    "type": "object",
    "patternValues": {
        "type": "array",
        "items": {
            "type": "array",
            "items": {"type": "number"},
        },
    },
}

#: One line of ``spans.jsonl`` (a :class:`~repro.obs.spans.Span`).
#: ``end_ns == -1`` marks a span still open at export; ``parent == -1``
#: marks a trace root (where ``span == trace``).
SPAN_SCHEMA = {
    "type": "object",
    "required": [
        "span", "trace", "parent", "name", "subject", "start_ns", "end_ns",
    ],
    "additionalProperties": False,
    "properties": {
        "span": {"type": "integer", "minimum": 0},
        "trace": {"type": "integer", "minimum": 0},
        "parent": {"type": "integer", "minimum": -1},
        "name": {"type": "string"},
        "subject": {"type": "string"},
        "start_ns": {"type": "integer", "minimum": 0},
        "end_ns": {"type": "integer", "minimum": -1},
        "fields": {"type": "object"},
    },
}

#: One line of ``anomalies.jsonl`` (an invariant-monitor record).
ANOMALY_SCHEMA = {
    "type": "object",
    "required": ["time", "invariant", "subject", "severity", "detail"],
    "additionalProperties": False,
    "properties": {
        "time": {"type": "integer", "minimum": 0},
        "invariant": {
            "enum": [
                "paper-bound",
                "netcalc-bound",
                "link-overbooking",
                "lease-leak",
                "shared-link-double-book",
                "shared-link-divergence",
            ]
        },
        "subject": {"type": "string"},
        "severity": {"enum": ["warning", "critical"]},
        "detail": {"type": "string"},
        "fields": {"type": "object"},
    },
}

#: A flight-recorder dump (``flight.json``).
FLIGHT_SCHEMA = {
    "type": "object",
    "required": ["reason", "time_ns", "events", "anomalies", "metrics"],
    "additionalProperties": False,
    "properties": {
        "reason": {"type": "string"},
        "time_ns": {"type": "integer", "minimum": -1},
        "events": {"type": "array", "items": SPAN_SCHEMA},
        "anomalies": {"type": "array", "items": ANOMALY_SCHEMA},
        "metrics": {"type": "object"},
    },
}

#: A standardized benchmark record (``BENCH_<name>.json``), one per
#: ``benchmarks/bench_*.py`` module per run, written by the benchmarks'
#: conftest plugin (wall time always; throughput / overhead when the
#: bench reports them via the ``bench_record`` fixture).
BENCH_SCHEMA = {
    "type": "object",
    "required": ["name", "wall_s", "tests"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string"},
        "wall_s": {"type": "number", "minimum": 0},
        "throughput": {"type": "number", "minimum": 0},
        "overhead_pct": {"type": "number"},
        "tests": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["test", "wall_s", "outcome"],
                "additionalProperties": False,
                "properties": {
                    "test": {"type": "string"},
                    "wall_s": {"type": "number", "minimum": 0},
                    "outcome": {"type": "string"},
                },
            },
        },
        "extra": {"type": "object"},
    },
}


def validate_bundle(directory: str | Path) -> list[str]:
    """Validate every telemetry file present in ``directory``.

    Missing optional files are fine; a bundle without even
    ``metrics.json`` is reported. Returns error strings (empty = valid).
    """
    directory = Path(directory)
    errors: list[str] = []

    metrics_path = directory / "metrics.json"
    if metrics_path.exists():
        errors.extend(
            validate(
                json.loads(metrics_path.read_text()),
                METRICS_SCHEMA,
                "metrics.json",
            )
        )
    else:
        errors.append(f"{metrics_path}: missing")

    chrome_path = directory / "trace.chrome.json"
    if chrome_path.exists():
        errors.extend(
            validate(
                json.loads(chrome_path.read_text()),
                CHROME_TRACE_SCHEMA,
                "trace.chrome.json",
            )
        )

    jsonl_path = directory / "trace.jsonl"
    if jsonl_path.exists():
        with jsonl_path.open(encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"trace.jsonl:{lineno}: not JSON ({exc})")
                    continue
                errors.extend(
                    validate(
                        record,
                        TRACE_RECORD_SCHEMA,
                        f"trace.jsonl:{lineno}",
                    )
                )

    series_path = directory / "timeseries.json"
    if series_path.exists():
        errors.extend(
            validate(
                json.loads(series_path.read_text()),
                TIMESERIES_SCHEMA,
                "timeseries.json",
            )
        )

    for name, line_schema in (
        ("spans.jsonl", SPAN_SCHEMA),
        ("anomalies.jsonl", ANOMALY_SCHEMA),
    ):
        jsonl = directory / name
        if not jsonl.exists():
            continue
        with jsonl.open(encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"{name}:{lineno}: not JSON ({exc})")
                    continue
                errors.extend(
                    validate(record, line_schema, f"{name}:{lineno}")
                )

    for flight_path in sorted(directory.glob("flight*.json")):
        errors.extend(
            validate(
                json.loads(flight_path.read_text()),
                FLIGHT_SCHEMA,
                flight_path.name,
            )
        )

    return errors
