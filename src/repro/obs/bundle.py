"""The telemetry bundle: one object wiring registry, trace and probes.

:class:`Telemetry` is the facade experiments and the CLI deal with.
One instance owns

* a :class:`~repro.obs.registry.MetricsRegistry` (always on -- metrics
  are cheap enough to keep enabled),
* a structured :class:`~repro.sim.trace.TraceRecorder` (on by default
  in a bundle; capacity-capped),
* optionally a :class:`~repro.obs.profiling.KernelProfiler` and a
  :class:`~repro.obs.probes.ProbeSet` once a simulator is attached,

and knows how to instrument the repo's building blocks:
``attach_simulator`` for kernel counters/profiling,
``instrument_star`` for a fully built
:class:`~repro.network.topology.StarNetwork` (port/link/switch
collectors, delay histograms, sim-time probes), ``track_cache`` for
feasibility caches, and ``write`` to emit the bundle directory::

    out/
      metrics.json       MetricsRegistry.snapshot()
      timeseries.json    probe samples (when probes ran)
      trace.jsonl        one structured record per line
      trace.chrome.json  Chrome trace_event JSON (open in Perfetto)

Everything here is pull-based: instrumented components update their own
cheap counters as before, and registered collectors harvest them only
when a snapshot is taken, so the simulation hot path pays nothing for
the registry's existence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..sim.kernel import Simulator
from ..sim.trace import TraceRecord, TraceRecorder
from .export import (
    chrome_trace,
    write_span_jsonl,
    write_trace_jsonl,
)
from .flight import FlightRecorder
from .monitor import InvariantMonitor, star_bound_provider
from .probes import ProbeSet
from .profiling import KernelProfiler
from .registry import MetricsRegistry
from .spans import Span, SpanTracker

__all__ = ["TelemetryConfig", "Telemetry", "TelemetryShard"]

#: Delay histogram buckets also used for per-hop waits: 1 us .. ~1 s.
_CACHE_STAT_PREFIX = "feasibility_cache."


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """What a bundle collects (metrics are always on)."""

    #: Record structured trace events (frame lifecycle, signalling,
    #: admission verdicts). Costs memory proportional to the capacity.
    tracing: bool = True
    #: Ring-buffer cap on retained trace records (None = unbounded).
    trace_capacity: int | None = 200_000
    #: Sim-time probe cadence; None disables the periodic probes.
    probe_cadence_ns: int | None = 1_000_000
    #: Time every kernel event callback (adds ~2 clock reads/event).
    profile: bool = False
    #: Collect causal spans (per-request / per-channel latency
    #: attribution; see :mod:`repro.obs.spans`).
    spans: bool = False
    #: Ring-buffer cap on retained spans.
    span_capacity: int = 200_000
    #: Measure wall-clock admission compute into verdict spans. Off by
    #: default: wall times are non-deterministic, and deterministic
    #: merges (parallel sweeps) require byte-identical span streams.
    measure_compute: bool = False
    #: Run the online invariant monitor (delay bounds, overbooking,
    #: lease leaks; see :mod:`repro.obs.monitor`).
    monitor: bool = False
    #: Raise :class:`~repro.errors.InvariantViolation` on the first
    #: anomaly instead of only recording it.
    fail_fast: bool = False
    #: Span records retained per flight-recorder dump.
    flight_capacity: int = 2048
    #: Directory for automatic flight dumps (on the first anomaly and
    #: on a kernel crash). ``None`` disables automatic dumping; the
    #: recorder can still be dumped explicitly.
    flight_dir: str | None = None


@dataclass(frozen=True, slots=True)
class TelemetryShard:
    """One worker's telemetry, exported for merging into a parent bundle.

    The parallel sweep runner gives every worker process its own
    :class:`Telemetry`; a shard is the picklable summary the worker
    sends back: the registry snapshot plus the recorded trace. Absorbing
    every shard in deterministic (work-unit) order reproduces the exact
    bundle a serial run of the same sweep would have produced.
    """

    metrics: dict
    trace: tuple[TraceRecord, ...] = ()
    trace_dropped: int = 0
    #: causal spans recorded by the worker (IDs in worker-local space;
    #: :meth:`Telemetry.absorb_shard` re-bases them).
    spans: tuple[Span, ...] = ()
    #: span IDs the worker allocated (the merge offset advance).
    span_next_id: int = 0
    span_dropped: int = 0


class Telemetry:
    """One experiment's telemetry session."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry()
        self.recorder = TraceRecorder(
            enabled=self.config.tracing,
            capacity=self.config.trace_capacity,
        )
        self.profiler: KernelProfiler | None = (
            KernelProfiler() if self.config.profile else None
        )
        self.probes: ProbeSet | None = None
        self.spans: SpanTracker | None = (
            SpanTracker(
                capacity=self.config.span_capacity,
                measure_compute=self.config.measure_compute,
            )
            if self.config.spans
            else None
        )
        self.monitor: InvariantMonitor | None = None
        self.flight: FlightRecorder | None = None
        if self.config.monitor or self.config.spans:
            self.flight = FlightRecorder(
                capacity=self.config.flight_capacity,
                span_provider=self._flight_spans,
                metrics_provider=self.snapshot,
                anomaly_provider=self._flight_anomalies,
            )
        if self.config.monitor:
            self.monitor = InvariantMonitor(
                fail_fast=self.config.fail_fast,
                flight=self.flight,
                flight_dir=self.config.flight_dir,
            )
        self._caches: list = []
        self._cache_totals: dict[str, int] = {}
        self._cache_collector_installed = False

    def _flight_spans(self) -> list[dict]:
        if self.spans is None:
            return []
        return [span.as_dict() for span in self.spans]

    def _flight_anomalies(self) -> list[dict]:
        if self.monitor is None:
            return []
        return list(self.monitor.anomalies)

    # -- wiring ----------------------------------------------------------

    def attach_simulator(self, sim: Simulator) -> None:
        """Hook kernel counters (and the profiler, if any) into the bundle."""
        if self.profiler is not None:
            sim.profiler = self.profiler
            self.profiler.publish(self.registry)
        if self.flight is not None and self.config.flight_dir is not None:
            flight = self.flight
            flight_dir = self.config.flight_dir

            def on_crash(exc: BaseException) -> None:
                flight.dump(
                    flight_dir,
                    reason=f"crash:{type(exc).__name__}",
                    time_ns=sim.now,
                )

            sim.on_crash = on_crash
        dispatched = self.registry.gauge(
            "kernel.dispatched_events",
            help="events the kernel has fired",
        ).labels()
        heap_max = self.registry.gauge(
            "kernel.max_heap_depth",
            help="event-queue high-water mark",
        ).labels()
        live = self.registry.gauge(
            "kernel.live_pending_events",
            help="non-cancelled events still queued",
        ).labels()
        clock = self.registry.gauge(
            "kernel.now_ns", help="simulation clock",
        ).labels()

        def collect() -> None:
            dispatched.set(sim.dispatched_events)
            heap_max.set(sim.max_heap_depth)
            live.set(sim.live_pending_events)
            clock.set(sim.now)

        self.registry.add_collector(collect)

    def track_cache(self, cache) -> None:
        """Surface a feasibility cache's private stats as metrics.

        Several controllers (one per trial/scheme in a sweep) may be
        tracked; the published gauges are sums over all of them, so a
        sweep's snapshot reports total cache traffic. Callers that are
        done with a controller should hand its cache to
        :meth:`retire_cache`, which folds the final counts into a
        running total and releases the reference -- otherwise a long
        sweep retains one dead cache per (trial, scheme) and every
        snapshot re-walks all of them.
        """
        if cache is None:
            return
        self._caches.append(cache)
        self._ensure_cache_collector()

    def retire_cache(self, cache) -> None:
        """Fold a finished cache's stats into the totals and drop it.

        Idempotent: retiring a cache that was never tracked (or was
        already retired) is a no-op, so callers do not need to know
        whether telemetry saw the controller. After retirement the
        published ``feasibility_cache.*`` gauges are unchanged -- the
        final counter values live on in ``_cache_totals`` -- but the
        bundle holds O(1) state however many caches a sweep retires.
        """
        if cache is None:
            return
        try:
            self._caches.remove(cache)
        except ValueError:
            return
        for key, value in cache.stats.as_dict().items():
            self._cache_totals[key] = self._cache_totals.get(key, 0) + value

    def _ensure_cache_collector(self) -> None:
        if self._cache_collector_installed:
            return
        self._cache_collector_installed = True
        gauges: dict[str, object] = {}

        def collect() -> None:
            totals = dict(self._cache_totals)
            for tracked in self._caches:
                for key, value in tracked.stats.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
            for key, value in totals.items():
                gauge = gauges.get(key)
                if gauge is None:
                    gauge = self.registry.gauge(
                        _CACHE_STAT_PREFIX + key,
                        help="summed over tracked caches",
                    ).labels()
                    gauges[key] = gauge
                gauge.set(value)

        self.registry.add_collector(collect)

    # -- parallel-sweep merging ------------------------------------------

    def export_shard(self) -> TelemetryShard:
        """Summarize this bundle for a parent process to absorb.

        Used by the parallel sweep runner: each worker snapshots its own
        registry (collectors run, so retired-cache totals and any live
        tracked caches are materialized as gauges) and ships the trace
        records it recorded.
        """
        tracker = self.spans
        return TelemetryShard(
            metrics=self.snapshot(),
            trace=tuple(self.recorder),
            trace_dropped=self.recorder.dropped,
            spans=() if tracker is None else tracker.spans,
            span_next_id=0 if tracker is None else tracker.next_id,
            span_dropped=0 if tracker is None else tracker.dropped,
        )

    def absorb_shard(self, shard: TelemetryShard) -> None:
        """Merge one worker's :class:`TelemetryShard` into this bundle.

        Counters/gauges/histograms fold via
        :meth:`~repro.obs.registry.MetricsRegistry.merge`; trace records
        append through the recorder (capacity and drop accounting apply
        exactly as if the events had been recorded here). Absorbing
        shards in work-unit order reproduces the serial bundle.
        """
        self.registry.merge(shard.metrics)
        self.recorder.extend(shard.trace, dropped=shard.trace_dropped)
        if self.spans is not None and shard.span_next_id:
            self.spans.absorb(
                shard.spans, shard.span_next_id, dropped=shard.span_dropped
            )

    def instrument_star(self, net) -> None:
        """Wire a built StarNetwork into this bundle.

        Called by :func:`~repro.network.topology.build_star` when a
        telemetry bundle is passed in; safe to call manually for
        hand-built networks. Registers snapshot-time collectors for the
        switch/port/link statistics, hooks the per-frame delay observer,
        tracks the admission cache, and starts the sim-time probes.
        """
        self.attach_simulator(net.sim)
        self.track_cache(net.admission.cache)
        registry = self.registry

        # per-frame delay histogram + miss counter, fed by the metrics
        # collector's delivery hook (one bound-method call per RT frame)
        delay_hist = registry.histogram(
            "rt.frame_delay_ns",
            help="end-to-end RT frame delay (Eq. 18.1 observable)",
        ).labels()
        miss_counter = registry.counter(
            "rt.deadline_misses", labels=("channel",),
            help="frames delivered after d_i*slot + T_latency",
        )

        monitor = self.monitor
        if monitor is not None and monitor.bound_provider is None:
            monitor.bound_provider = star_bound_provider(net)

        if monitor is None:
            def observe_delay(
                channel_id: int, delay_ns: int, missed: bool
            ) -> None:
                delay_hist.observe(delay_ns)
                if missed:
                    miss_counter.labels(channel_id).inc()
        else:
            sim = net.sim

            def observe_delay(
                channel_id: int, delay_ns: int, missed: bool
            ) -> None:
                delay_hist.observe(delay_ns)
                if missed:
                    miss_counter.labels(channel_id).inc()
                monitor.on_rt_delivery(channel_id, delay_ns, missed, sim.now)

        net.metrics.delay_observer = observe_delay

        tracker = self.spans
        if tracker is not None:
            net.switch.spans = tracker
            for node in net.nodes.values():
                node.spans = tracker
                node.rt_layer.spans = tracker
                if node.uplink is not None:
                    node.uplink.spans = tracker
                    node.uplink.link.spans = tracker
            for port in net.switch.ports.values():
                port.spans = tracker
                port.link.spans = tracker

        switch_forwarded = registry.gauge(
            "switch.frames_forwarded",
        ).labels()
        switch_dropped = registry.gauge("switch.frames_dropped").labels()
        port_gauges = {
            name: registry.gauge("port." + name, labels=("port",))
            for name in (
                "rt_enqueued", "rt_transmitted", "be_enqueued",
                "be_transmitted", "be_dropped", "rt_link_deadline_misses",
                "rt_backlog_max", "be_backlog_max", "rt_queue_max_depth",
            )
        }
        link_gauges = {
            name: registry.gauge("link." + name, labels=("link",))
            for name in ("frames_carried", "bytes_carried", "busy_ns",
                         "frames_lost")
        }
        link_util = registry.gauge("link.utilization", labels=("link",))

        def ports():
            for node in net.nodes.values():
                if node.uplink is not None:
                    yield node.uplink
            yield from net.switch.ports.values()

        def collect() -> None:
            switch_forwarded.set(net.switch.frames_forwarded)
            switch_dropped.set(net.switch.frames_dropped)
            for port in ports():
                stats = port.stats
                name = port.name
                for field in (
                    "rt_enqueued", "rt_transmitted", "be_enqueued",
                    "be_transmitted", "be_dropped",
                    "rt_link_deadline_misses", "rt_backlog_max",
                    "be_backlog_max",
                ):
                    port_gauges[field].labels(name).set(
                        getattr(stats, field)
                    )
                port_gauges["rt_queue_max_depth"].labels(name).set(
                    port.rt_queue_max_depth
                )
                link = port.link
                for field in ("frames_carried", "bytes_carried",
                              "busy_ns", "frames_lost"):
                    link_gauges[field].labels(link.name).set(
                        getattr(link, field)
                    )
                link_util.labels(link.name).set(link.utilization())

        registry.add_collector(collect)

        cadence = self.config.probe_cadence_ns
        if cadence is not None:
            probes = ProbeSet(net.sim, registry, cadence_ns=cadence)
            uplinks = [
                node.uplink for node in net.nodes.values()
                if node.uplink is not None
            ]
            downlinks = list(net.switch.ports.values())
            all_links = [p.link for p in uplinks] + [
                p.link for p in downlinks
            ]
            probes.add(
                "uplink_rt_backlog_frames",
                lambda: sum(p.rt_backlog for p in uplinks),
            )
            probes.add(
                "switch_rt_buffer_frames",
                lambda: sum(p.rt_backlog for p in downlinks),
            )
            probes.add(
                "switch_be_buffer_frames",
                lambda: sum(p.be_backlog for p in downlinks),
            )
            probes.add(
                "link_utilization_mean",
                lambda: (
                    sum(l.utilization() for l in all_links) / len(all_links)
                    if all_links else 0.0
                ),
            )
            probes.add(
                "kernel_live_pending_events",
                lambda: net.sim.live_pending_events,
            )
            probes.start()
            self.probes = probes

    def instrument_fabric(self, net) -> None:
        """Wire a built multi-switch :class:`FabricNetwork` in.

        Mirrors :meth:`instrument_star` for the extension data plane:
        kernel counters, the per-frame delay histogram + paper-bound
        monitor hook, and span tracking on every port, wire, switch
        model and RT layer (so a fabric run's per-hop transit shows up
        as ``queue``/``wire``/``processing`` children of each channel's
        trace, exactly like the star). Netcalc bounds are per-topology;
        callers with a fabric bound provider can set
        ``monitor.bound_provider`` themselves.
        """
        self.attach_simulator(net.sim)
        registry = self.registry
        delay_hist = registry.histogram(
            "rt.frame_delay_ns",
            help="end-to-end RT frame delay (generalized Eq. 18.1)",
        ).labels()
        miss_counter = registry.counter(
            "rt.deadline_misses", labels=("channel",),
            help="frames delivered after d_i*slot + T_latency(k)",
        )

        monitor = self.monitor
        if monitor is None:
            def observe_delay(
                channel_id: int, delay_ns: int, missed: bool
            ) -> None:
                delay_hist.observe(delay_ns)
                if missed:
                    miss_counter.labels(channel_id).inc()
        else:
            sim = net.sim

            def observe_delay(
                channel_id: int, delay_ns: int, missed: bool
            ) -> None:
                delay_hist.observe(delay_ns)
                if missed:
                    miss_counter.labels(channel_id).inc()
                monitor.on_rt_delivery(channel_id, delay_ns, missed, sim.now)

        net.metrics.delay_observer = observe_delay

        tracker = self.spans
        if tracker is not None:
            for node in net.nodes.values():
                node.spans = tracker
                node.rt_layer.spans = tracker
                if node.uplink is not None:
                    node.uplink.spans = tracker
                    node.uplink.link.spans = tracker
            for switch in net.switches.values():
                switch.spans = tracker
                for port in switch.ports.values():
                    port.spans = tracker
                    port.link.spans = tracker

        forwarded = registry.gauge(
            "fabric.frames_forwarded", labels=("switch",),
        )
        dropped = registry.gauge(
            "fabric.frames_dropped", labels=("switch",),
        )

        def collect() -> None:
            for name, switch in net.switches.items():
                forwarded.labels(name).set(switch.frames_forwarded)
                dropped.labels(name).set(switch.frames_dropped)

        registry.add_collector(collect)

    def check_invariants(self, net) -> int:
        """Run the monitor's structural checks against a star network.

        Returns the number of anomalies emitted (0 when the monitor is
        off or everything holds). Delivery-time bound checks run
        continuously through the delay observer; this adds the
        on-demand link-overbooking and lease-leak assertions.
        """
        if self.monitor is None:
            return 0
        emitted = self.monitor.check_links(
            net.admission.state, now_ns=net.sim.now
        )
        emitted += self.monitor.check_leases(
            net.switch.manager, now_ns=net.sim.now
        )
        return emitted

    # -- output ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Collect and return the registry's JSON-serializable state."""
        return self.registry.snapshot()

    def write(self, directory: str | Path) -> dict[str, Path]:
        """Emit the bundle files; returns name -> written path."""
        if self.profiler is not None:
            self.profiler.stop()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: dict[str, Path] = {}

        metrics_path = directory / "metrics.json"
        metrics_path.write_text(json.dumps(self.snapshot(), indent=1))
        written["metrics"] = metrics_path

        if self.probes is not None:
            series_path = directory / "timeseries.json"
            series_path.write_text(
                json.dumps(self.probes.to_dict(), indent=1)
            )
            written["timeseries"] = series_path

        if self.spans is not None:
            written["spans_jsonl"] = write_span_jsonl(
                self.spans, directory / "spans.jsonl"
            )
        if self.monitor is not None:
            anomalies_path = directory / "anomalies.jsonl"
            anomalies_path.write_text(
                "".join(
                    json.dumps(record, sort_keys=False, separators=(",", ":"))
                    + "\n"
                    for record in self.monitor.anomalies
                ),
                encoding="utf-8",
            )
            written["anomalies_jsonl"] = anomalies_path

        if self.recorder.enabled:
            written["trace_jsonl"] = write_trace_jsonl(
                self.recorder, directory / "trace.jsonl"
            )
            chrome_path = directory / "trace.chrome.json"
            chrome_path.write_text(
                json.dumps(
                    chrome_trace(
                        self.recorder,
                        spans=() if self.spans is None else self.spans,
                    ),
                    indent=1,
                )
            )
            written["trace_chrome"] = chrome_path
        return written
