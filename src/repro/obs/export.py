"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

Two output formats for one :class:`~repro.sim.trace.TraceRecorder`:

* **JSONL** -- one JSON object per record, stable field order, suitable
  for ``jq``/pandas post-processing and the CI schema check.
* **Chrome trace_event JSON** -- the ``{"traceEvents": [...]}`` format
  understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``, so a full simulation (frame lifecycle, EDF
  queueing, signalling handshakes, admission verdicts) can be browsed
  on a zoomable timeline.

Mapping to the Chrome format
----------------------------
The viewer groups events into *processes* (pid) and *threads* (tid).
We map the category's top segment (``link``, ``port``, ``signal``,
``admission``, ...) to a process and the record's subject (the link or
port name, the node, ...) to a thread within it, emitting ``M``
metadata events so the viewer shows real names. Records whose
``fields`` carry ``duration_ns`` become complete ``X`` spans of that
length; everything else becomes an instant ``i`` event. Timestamps are
microseconds (the format's unit); simulation nanoseconds divide by
1000 exactly in the common case and as a float otherwise.

Causal spans (:mod:`repro.obs.spans`) additionally export as *async*
events (``ph`` ``b``/``n``/``e``) keyed by their trace ID, so Perfetto
renders each trace -- one connection request, one channel's data phase
-- as a nested async track: pass the spans to :func:`chrome_trace` or
serialize them standalone with :func:`span_jsonl_lines`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..sim.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .spans import Span

__all__ = [
    "trace_jsonl_lines",
    "write_trace_jsonl",
    "span_jsonl_lines",
    "write_span_jsonl",
    "span_chrome_events",
    "chrome_trace",
    "write_chrome_trace",
]


def trace_jsonl_lines(records: Iterable[TraceRecord]) -> Iterator[str]:
    """Serialize records to JSONL (one compact JSON object per line)."""
    for r in records:
        payload: dict[str, object] = {
            "time": r.time,
            "category": r.category,
            "subject": r.subject,
            "detail": r.detail,
        }
        if r.fields:
            payload["fields"] = dict(r.fields)
        yield json.dumps(payload, sort_keys=False, separators=(",", ":"))


def write_trace_jsonl(records: Iterable[TraceRecord], path: str | Path) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for line in trace_jsonl_lines(records):
            fh.write(line)
            fh.write("\n")
    return path


def span_jsonl_lines(spans: Iterable["Span"]) -> Iterator[str]:
    """Serialize causal spans to JSONL (schema: ``SPAN_SCHEMA``)."""
    for span in spans:
        yield json.dumps(
            span.as_dict(), sort_keys=False, separators=(",", ":")
        )


def write_span_jsonl(spans: Iterable["Span"], path: str | Path) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for line in span_jsonl_lines(spans):
            fh.write(line)
            fh.write("\n")
    return path


def _ts_us(time_ns: int) -> float | int:
    # exact division keeps timestamps integers (prettier in the viewer)
    quotient, remainder = divmod(time_ns, 1000)
    return quotient if remainder == 0 else time_ns / 1000


def span_chrome_events(
    spans: Iterable["Span"], pid: int = 1000
) -> list[dict]:
    """Render spans as Perfetto *async* events under one process.

    Every trace becomes one async track (``id`` = trace ID); spans of
    the trace open with ``b`` and close with ``e`` (Perfetto nests
    same-id begin/end pairs, reproducing the parent/child tree as long
    as children close before their parents -- which holds by
    construction here: hop segments end before the root resolves).
    Spans still open at export and zero-duration events render as
    instant ``n`` marks on their track. Threads within the process are
    the span subjects, so the port/link/switch a segment belongs to
    stays visible.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "spans"},
    }]
    tids: dict[str, int] = {}
    for span in spans:
        tid = tids.get(span.subject)
        if tid is None:
            tid = len(tids) + 1
            tids[span.subject] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": span.subject or "spans"},
            })
        args: dict[str, object] = {"span": span.span_id}
        if span.parent_id >= 0:
            args["parent"] = span.parent_id
        if span.fields:
            args.update(span.fields)
        base = {
            "name": span.name,
            "cat": "spans",
            "pid": pid,
            "tid": tid,
            "id": span.trace_id,
        }
        if span.end_ns < 0 or span.end_ns == span.start_ns:
            events.append({
                **base, "ph": "n", "ts": _ts_us(span.start_ns), "args": args,
            })
            continue
        events.append({
            **base, "ph": "b", "ts": _ts_us(span.start_ns), "args": args,
        })
        events.append({
            **base, "ph": "e", "ts": _ts_us(span.end_ns), "args": {},
        })
    return events


def chrome_trace(
    records: Iterable[TraceRecord], spans: Iterable["Span"] = ()
) -> dict:
    """Build a Chrome ``trace_event`` document from trace records.

    When ``spans`` are given, they ride along as async events (see
    :func:`span_chrome_events`) in a dedicated ``spans`` process, so
    one Perfetto load shows both the flat event stream and the causal
    trees.
    """
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}

    for r in records:
        group = r.category.split(".", 1)[0]
        pid = pids.get(group)
        if pid is None:
            pid = len(pids) + 1
            pids[group] = pid
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": group},
            })
        tid_key = (pid, r.subject)
        tid = tids.get(tid_key)
        if tid is None:
            tid = sum(1 for key in tids if key[0] == pid) + 1
            tids[tid_key] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": r.subject or group},
            })
        args: dict[str, object] = {}
        if r.detail:
            args["detail"] = r.detail
        duration_ns = None
        if r.fields:
            duration_ns = r.fields.get("duration_ns")
            for key, value in r.fields.items():
                if key != "duration_ns":
                    args[key] = value
        event: dict[str, object] = {
            "name": r.category,
            "cat": group,
            "pid": pid,
            "tid": tid,
            "ts": _ts_us(r.time),
            "args": args,
        }
        if duration_ns is not None:
            event["ph"] = "X"
            event["dur"] = _ts_us(int(duration_ns))
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)

    span_events = span_chrome_events(spans, pid=len(pids) + 1)
    if len(span_events) > 1:  # more than the process_name metadata
        events.extend(span_events)

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    records: Iterable[TraceRecord], path: str | Path
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records), indent=1))
    return path
