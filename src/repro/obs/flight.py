"""Flight recorder: a bounded post-mortem dump of recent activity.

Aviation-style black box for the simulator: when an invariant trips or
an exception escapes the kernel's dispatch loop, the recorder writes a
single ``flight.json`` capturing the *recent past* -- the tail of the
span stream, the anomaly records, and a metrics snapshot -- so the
failure can be debugged without re-running the scenario.

Zero steady-state cost: the recorder holds *providers* (callables that
read the span tracker / metrics registry / monitor at dump time)
instead of copying events as they happen. The only per-event work in
the system remains the span tracker's own bounded deque.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Dumps a bounded window of recent spans plus a metrics snapshot.

    Parameters
    ----------
    capacity:
        Maximum number of span records included in a dump (the most
        recent ones win).
    span_provider:
        Callable returning the current span records (dicts); typically
        a bound method of the :class:`~repro.obs.spans.SpanTracker`.
    metrics_provider:
        Callable returning the metrics snapshot dict.
    anomaly_provider:
        Callable returning the anomaly records list.
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        span_provider: Callable[[], Iterable[dict]] | None = None,
        metrics_provider: Callable[[], dict] | None = None,
        anomaly_provider: Callable[[], list[dict]] | None = None,
    ) -> None:
        self.capacity = capacity
        self.span_provider = span_provider
        self.metrics_provider = metrics_provider
        self.anomaly_provider = anomaly_provider
        #: paths of every dump written, in order.
        self.dumps: list[Path] = []

    def snapshot(self, reason: str, time_ns: int = -1) -> dict:
        """Assemble the dump payload without writing it."""
        spans = list(self.span_provider()) if self.span_provider else []
        if len(spans) > self.capacity:
            spans = spans[-self.capacity:]
        return {
            "reason": reason,
            "time_ns": time_ns,
            "events": spans,
            "anomalies": (
                list(self.anomaly_provider()) if self.anomaly_provider else []
            ),
            "metrics": (
                self.metrics_provider() if self.metrics_provider else {}
            ),
        }

    def dump(
        self, directory: str | Path, reason: str, time_ns: int = -1
    ) -> Path:
        """Write ``flight.json`` into ``directory`` and return its path.

        Repeated dumps into the same directory get numbered suffixes
        (``flight.json``, ``flight.1.json``, ...) so an anomaly storm
        never overwrites the first -- usually most informative --
        capture.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "flight.json"
        index = 1
        while path.exists():
            path = directory / f"flight.{index}.json"
            index += 1
        payload = self.snapshot(reason, time_ns)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self.dumps.append(path)
        return path
