"""Sim-time series probes: periodic samplers on *weak* kernel events.

A :class:`ProbeSet` samples a set of named callables (queue depths,
link utilization, buffer occupancy, ...) every ``cadence_ns`` of
simulation time. The sampling events are scheduled **weak**
(:meth:`repro.sim.kernel.Simulator.schedule` with ``weak=True``), which
is the whole trick: the simulator stops as soon as only weak events
remain, so probes

* never extend a run beyond its uninstrumented final clock,
* never change the relative order of model events (they only read), and
* cost nothing once the simulation's real work is done.

Each sample is appended to an in-memory series ``[(t, value), ...]``
and mirrored into a registry gauge (``probe.<name>``), so the latest
value also shows up in metrics snapshots.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..sim.kernel import Simulator
from .registry import MetricsRegistry

__all__ = ["ProbeSet"]


class ProbeSet:
    """Named periodic samplers over one simulator.

    Parameters
    ----------
    sim:
        The kernel to sample on.
    registry:
        Gauges ``probe.<name>`` mirror the latest sample of each probe.
    cadence_ns:
        Simulation-time sampling period.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        cadence_ns: int,
    ) -> None:
        if cadence_ns <= 0:
            raise ConfigurationError(
                f"probe cadence must be positive, got {cadence_ns} ns"
            )
        self._sim = sim
        self._registry = registry
        self.cadence_ns = cadence_ns
        self._samplers: list[tuple[str, Callable[[], float], object]] = []
        self.series: dict[str, list[tuple[int, float]]] = {}
        self._started = False
        self.samples_taken = 0

    def add(self, name: str, sample: Callable[[], float]) -> None:
        """Register one probe; ``sample()`` must be read-only on the model."""
        if name in self.series:
            raise ConfigurationError(f"duplicate probe name {name!r}")
        gauge = self._registry.gauge(
            "probe." + name, help="latest probe sample"
        ).labels()
        self._samplers.append((name, sample, gauge))
        self.series[name] = []

    def start(self) -> None:
        """Begin sampling: first tick one cadence from now, then periodic."""
        if self._started:
            return
        self._started = True
        self._sim.schedule(
            self.cadence_ns, self._tick, label="obs:probe", weak=True
        )

    def _tick(self) -> None:
        now = self._sim.now
        for name, sample, gauge in self._samplers:
            value = sample()
            self.series[name].append((now, value))
            gauge.set(value)
        self.samples_taken += 1
        self._sim.schedule(
            self.cadence_ns, self._tick, label="obs:probe", weak=True
        )

    def to_dict(self) -> dict[str, list[list[float]]]:
        """JSON-serializable view: name -> [[t_ns, value], ...]."""
        return {
            name: [[t, v] for t, v in samples]
            for name, samples in sorted(self.series.items())
        }
