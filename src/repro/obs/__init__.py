"""Unified telemetry: metrics registry, trace export, probes, profiling.

The one import most callers need is :class:`Telemetry` -- build one,
pass it to :func:`~repro.network.topology.build_star` or an experiment
runner, and call :meth:`~repro.obs.bundle.Telemetry.write` at the end
to emit a bundle directory (metrics snapshot, probe time series, JSONL
trace, Chrome/Perfetto trace). The pieces are importable on their own
for targeted use.
"""

from .bundle import Telemetry, TelemetryConfig
from .export import (
    chrome_trace,
    trace_jsonl_lines,
    write_chrome_trace,
    write_trace_jsonl,
)
from .probes import ProbeSet
from .profiling import KernelProfiler
from .registry import DEFAULT_LATENCY_BUCKETS_NS, MetricsRegistry
from .schema import (
    CHROME_TRACE_SCHEMA,
    METRICS_SCHEMA,
    TIMESERIES_SCHEMA,
    TRACE_RECORD_SCHEMA,
    validate,
    validate_bundle,
)

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "ProbeSet",
    "KernelProfiler",
    "chrome_trace",
    "trace_jsonl_lines",
    "write_chrome_trace",
    "write_trace_jsonl",
    "validate",
    "validate_bundle",
    "METRICS_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "TRACE_RECORD_SCHEMA",
    "TIMESERIES_SCHEMA",
]
