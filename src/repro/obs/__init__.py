"""Unified telemetry: metrics registry, trace export, probes, profiling.

The one import most callers need is :class:`Telemetry` -- build one,
pass it to :func:`~repro.network.topology.build_star` or an experiment
runner, and call :meth:`~repro.obs.bundle.Telemetry.write` at the end
to emit a bundle directory (metrics snapshot, probe time series, JSONL
trace, Chrome/Perfetto trace). The pieces are importable on their own
for targeted use.
"""

from .bundle import Telemetry, TelemetryConfig, TelemetryShard
from .export import (
    chrome_trace,
    span_chrome_events,
    span_jsonl_lines,
    trace_jsonl_lines,
    write_chrome_trace,
    write_span_jsonl,
    write_trace_jsonl,
)
from .flight import FlightRecorder
from .monitor import InvariantMonitor, star_bound_provider
from .probes import ProbeSet
from .profiling import KernelProfiler
from .registry import DEFAULT_LATENCY_BUCKETS_NS, MetricsRegistry
from .schema import (
    ANOMALY_SCHEMA,
    BENCH_SCHEMA,
    CHROME_TRACE_SCHEMA,
    FLIGHT_SCHEMA,
    METRICS_SCHEMA,
    SPAN_SCHEMA,
    TIMESERIES_SCHEMA,
    TRACE_RECORD_SCHEMA,
    validate,
    validate_bundle,
)
from .spans import (
    ATTRIBUTED_PHASES,
    RequestAttribution,
    Span,
    SpanTracker,
    span_from_dict,
    summarize_requests,
)

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "TelemetryShard",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "ProbeSet",
    "KernelProfiler",
    "Span",
    "SpanTracker",
    "RequestAttribution",
    "summarize_requests",
    "span_from_dict",
    "ATTRIBUTED_PHASES",
    "InvariantMonitor",
    "star_bound_provider",
    "FlightRecorder",
    "chrome_trace",
    "trace_jsonl_lines",
    "span_jsonl_lines",
    "span_chrome_events",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_span_jsonl",
    "validate",
    "validate_bundle",
    "METRICS_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "TRACE_RECORD_SCHEMA",
    "TIMESERIES_SCHEMA",
    "SPAN_SCHEMA",
    "ANOMALY_SCHEMA",
    "FLIGHT_SCHEMA",
    "BENCH_SCHEMA",
]
