"""Kernel profiling: wall-time per event label and dispatch throughput.

A :class:`KernelProfiler` plugs into :attr:`Simulator.profiler`; the
dispatch loop then times every event callback with ``perf_counter_ns``
and reports ``account(label, wall_ns)``. Aggregation is per label --
the labels the model already assigns at scheduling time ("switch:process",
"m0->switch:deliver", "m3:ch7:period", ...) -- with the trailing
``:<suffix>`` kept and everything instance-specific before it dropped,
so ten thousand frame deliveries across forty links roll up into a few
stable rows.

This is *wall* time, not simulation time: the profile answers "where
does the host CPU go while simulating", which is what the ROADMAP's
perf work needs. Attaching a profiler adds two ``perf_counter_ns``
calls per event (~40 ns each), so it is opt-in; with
``Simulator.profiler = None`` the dispatch loop takes the timing-free
branch.
"""

from __future__ import annotations

from time import perf_counter_ns

from .registry import MetricsRegistry

__all__ = ["KernelProfiler"]


def _label_key(label: str) -> str:
    """Collapse instance-specific labels into stable profile rows.

    ``"m0->switch:deliver"`` -> ``"deliver"``; ``"m3:ch7:period"`` ->
    ``"period"``; an unlabelled event profiles as ``"(unlabelled)"``.
    """
    if not label:
        return "(unlabelled)"
    return label.rsplit(":", 1)[-1]


class KernelProfiler:
    """Per-label wall-time accounting for one (or more) simulators."""

    __slots__ = ("_rows", "started_at_ns", "stopped_at_ns")

    def __init__(self) -> None:
        # label key -> [count, total_wall_ns, max_wall_ns]
        self._rows: dict[str, list[int]] = {}
        self.started_at_ns = perf_counter_ns()
        self.stopped_at_ns: int | None = None

    def account(self, label: str, wall_ns: int) -> None:
        """One dispatched event took ``wall_ns`` of host time."""
        key = _label_key(label)
        row = self._rows.get(key)
        if row is None:
            row = [0, 0, 0]
            self._rows[key] = row
        row[0] += 1
        row[1] += wall_ns
        if wall_ns > row[2]:
            row[2] = wall_ns

    def stop(self) -> None:
        """Freeze the elapsed-time window used by :attr:`dispatch_rate`."""
        if self.stopped_at_ns is None:
            self.stopped_at_ns = perf_counter_ns()

    @property
    def total_events(self) -> int:
        return sum(row[0] for row in self._rows.values())

    @property
    def total_wall_ns(self) -> int:
        return sum(row[1] for row in self._rows.values())

    @property
    def dispatch_rate(self) -> float:
        """Events dispatched per wall second (in-callback time only)."""
        wall = self.total_wall_ns
        if wall <= 0:
            return 0.0
        return self.total_events / (wall / 1_000_000_000)

    def rows(self) -> list[tuple[str, int, int, int]]:
        """(label, count, total_wall_ns, max_wall_ns), hottest first."""
        return sorted(
            (
                (label, row[0], row[1], row[2])
                for label, row in self._rows.items()
            ),
            key=lambda r: -r[2],
        )

    def publish(self, registry: MetricsRegistry) -> None:
        """Register a snapshot-time collector mirroring the profile.

        Gauges: ``kernel.profile.events``, ``.wall_ns`` and ``.max_ns``
        per label, plus ``kernel.dispatch_rate_per_s``.
        """
        events = registry.gauge(
            "kernel.profile.events", labels=("label",),
            help="dispatched events per label",
        )
        wall = registry.gauge(
            "kernel.profile.wall_ns", labels=("label",),
            help="total wall time in callbacks per label",
        )
        worst = registry.gauge(
            "kernel.profile.max_ns", labels=("label",),
            help="slowest single callback per label",
        )
        rate = registry.gauge(
            "kernel.dispatch_rate_per_s",
            help="events dispatched per wall second of callback time",
        )

        def collect() -> None:
            for label, row in self._rows.items():
                events.labels(label).set(row[0])
                wall.labels(label).set(row[1])
                worst.labels(label).set(row[2])
            rate.set(self.dispatch_rate)

        registry.add_collector(collect)

    def summary(self, limit: int = 12) -> str:
        """Human-readable table of the hottest labels."""
        lines = [
            f"kernel profile: {self.total_events} events, "
            f"{self.total_wall_ns / 1e6:.1f} ms in callbacks, "
            f"{self.dispatch_rate:,.0f} events/s"
        ]
        for label, count, total, worst in self.rows()[:limit]:
            lines.append(
                f"  {label:24s} {count:8d}x {total / 1e6:9.2f} ms "
                f"(max {worst / 1e3:7.1f} us)"
            )
        return "\n".join(lines)
