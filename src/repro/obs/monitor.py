"""Online invariant monitor: check guarantees while the run happens.

The reproduction has two *offline* oracles (the EDF replay of PR 1 and
the network-calculus bounds of PR 6). This module moves the checks
online: every delivered RT frame is compared, at delivery time, against

* the paper's bound ``d_i * slot + T_latency`` (Eq. 18.1), and
* its channel's network-calculus :class:`~repro.netcalc.bounds.PathBound`
  (an independent second bound; for admitted channels it is finite, so
  a measured delay above it is a bug in either the scheduler or the
  curve algebra),

plus structural invariants checked on demand:

* **link overbooking** -- no occupied link's reserved utilization may
  exceed 1 (admission must never accept past capacity);
* **lease leaks** -- no switch-side pending offer may outlive its
  lease (the reclaim timer must have fired);
* **shared-link double booking** -- in a multi-switch fabric, the
  union of every switch's committed trunk view must stay EDF-feasible
  and no two switches may hold conflicting records for one channel
  (the intent lock's core guarantee).

Each violation becomes a structured anomaly record, validated against
:data:`~repro.obs.schema.ANOMALY_SCHEMA` at emission. In fail-fast
mode the first anomaly raises :class:`~repro.errors.InvariantViolation`
after the flight recorder (if any) has dumped.

Cost discipline: with no monitor attached the delivery path pays
nothing (the hook simply isn't installed); with one attached, the
per-delivery cost is two integer compares plus one dict lookup -- the
netcalc bounds are computed once per channel set and cached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import InvariantViolation
from .schema import ANOMALY_SCHEMA, validate

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.admission import SystemState
    from ..core.channel_manager import SwitchChannelManager
    from ..service.intent import SharedLinkFabric
    from .flight import FlightRecorder

__all__ = ["InvariantMonitor"]


class InvariantMonitor:
    """Evaluates delivery and structural invariants as the run proceeds.

    Parameters
    ----------
    bound_provider:
        Callable returning the current ``{channel_id: bound_ns}`` map of
        network-calculus end-to-end bounds. Called once per unknown
        channel (results are cached until an unknown channel appears,
        which signals the channel set changed).
    fail_fast:
        Raise :class:`InvariantViolation` on the first anomaly instead
        of only recording it.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`; an anomaly
        triggers one automatic dump into ``flight_dir`` (first anomaly
        only -- later ones are recorded but do not re-dump).
    flight_dir:
        Target directory for the automatic dump.
    """

    def __init__(
        self,
        *,
        bound_provider: Callable[[], dict[int, int]] | None = None,
        fail_fast: bool = False,
        flight: "FlightRecorder | None" = None,
        flight_dir: str | None = None,
    ) -> None:
        self.bound_provider = bound_provider
        self.fail_fast = fail_fast
        self.flight = flight
        self.flight_dir = flight_dir
        self.anomalies: list[dict] = []
        self._bounds: dict[int, int] = {}
        self._dumped = False

    # -- anomaly plumbing --------------------------------------------------

    def _emit(
        self,
        time_ns: int,
        invariant: str,
        subject: str,
        severity: str,
        detail: str,
        fields: dict | None = None,
    ) -> dict:
        record = {
            "time": time_ns,
            "invariant": invariant,
            "subject": subject,
            "severity": severity,
            "detail": detail,
        }
        if fields is not None:
            record["fields"] = fields
        validate(record, ANOMALY_SCHEMA)
        self.anomalies.append(record)
        if (
            not self._dumped
            and self.flight is not None
            and self.flight_dir is not None
        ):
            self._dumped = True
            self.flight.dump(
                self.flight_dir, reason=f"anomaly:{invariant}", time_ns=time_ns
            )
        if self.fail_fast:
            raise InvariantViolation(
                f"{invariant} violated at t={time_ns}: {detail}",
                anomaly=record,
            )
        return record

    # -- per-delivery bound checks ----------------------------------------

    def netcalc_bound_ns(self, channel_id: int) -> int | None:
        """The cached netcalc bound of ``channel_id`` (refreshing the
        cache from the provider when the channel is unknown)."""
        bound = self._bounds.get(channel_id)
        if bound is None and self.bound_provider is not None:
            self._bounds = dict(self.bound_provider())
            bound = self._bounds.get(channel_id)
        return bound

    def on_rt_delivery(
        self, channel_id: int, delay_ns: int, missed: bool, now_ns: int
    ) -> None:
        """Check one delivered RT frame against both delay bounds.

        ``missed`` is the paper-bound verdict the metrics collector
        already computed (``delivery > d*slot + T_latency``), so the
        common case costs one branch plus one dict probe here.
        """
        if missed:
            self._emit(
                now_ns,
                "paper-bound",
                f"channel-{channel_id}",
                "critical",
                f"frame delay {delay_ns} ns exceeded the paper bound "
                f"d*slot + T_latency",
                {"channel": channel_id, "delay_ns": delay_ns},
            )
        bound = self.netcalc_bound_ns(channel_id)
        if bound is not None and delay_ns > bound:
            self._emit(
                now_ns,
                "netcalc-bound",
                f"channel-{channel_id}",
                "critical",
                f"frame delay {delay_ns} ns exceeded the network-calculus "
                f"bound {bound} ns",
                {"channel": channel_id, "delay_ns": delay_ns,
                 "bound_ns": bound},
            )

    # -- structural invariants --------------------------------------------

    def check_links(self, state: "SystemState", now_ns: int = -1) -> int:
        """Assert no occupied link is booked past unit utilization.

        Returns the number of anomalies emitted (0 on a healthy state).
        """
        emitted = 0
        for link in state.occupied_links():
            utilization = state.link_utilization(link)
            if utilization > 1:
                emitted += 1
                self._emit(
                    max(now_ns, 0),
                    "link-overbooking",
                    str(link),
                    "critical",
                    f"link reserved utilization {utilization} exceeds 1",
                    {
                        "utilization": str(utilization),
                        "load": state.link_load(link),
                    },
                )
        return emitted

    def check_leases(
        self, manager: "SwitchChannelManager", now_ns: int
    ) -> int:
        """Assert no pending offer has outlived its lease.

        A pending offer whose ``expires_at`` already passed means the
        reclaim machinery failed -- admission capacity is leaked until
        someone notices. Returns the number of anomalies emitted.
        """
        emitted = 0
        for channel_id, expires_at in manager.pending_offer_leases():
            if expires_at <= now_ns:
                emitted += 1
                self._emit(
                    now_ns,
                    "lease-leak",
                    f"channel-{channel_id}",
                    "critical",
                    f"pending offer lease expired at {expires_at} ns but "
                    f"was never reclaimed",
                    {"channel": channel_id, "expires_ns": expires_at},
                )
        return emitted

    def check_shared_links(
        self,
        fabric: "SharedLinkFabric",
        now_ns: int,
        *,
        require_converged: bool = False,
    ) -> int:
        """Assert the intent lock's guarantee on every shared trunk.

        Critical anomalies: two switches holding *conflicting* records
        for one channel, or the union of committed views being EDF-
        infeasible -- either means a double booking slipped past the
        announce/hold/commit protocol. With ``require_converged`` (end
        of a soak, after the control plane has drained) any view
        difference at all is reported as a warning: commits still in
        flight are expected mid-run, never at quiescence.

        Returns the number of anomalies emitted.
        """
        from ..core.feasibility import is_feasible
        from ..core.task import LinkTask
        from ..service.intent import _trunk_ref

        emitted = 0
        for link_id in range(fabric.n_switches - 1):
            views = fabric.trunk_views(link_id)
            union: dict[int, list[int]] = {}
            for view in views:
                for channel_id, entry in view.items():
                    known = union.get(channel_id)
                    if known is not None and known != entry:
                        emitted += 1
                        self._emit(
                            max(now_ns, 0),
                            "shared-link-double-book",
                            f"trunk{link_id}",
                            "critical",
                            f"switches hold conflicting records for "
                            f"channel {channel_id} on trunk {link_id}",
                            {"channel": channel_id,
                             "records": [known, entry]},
                        )
                    union[channel_id] = entry
            ref = _trunk_ref(link_id)
            tasks = [
                LinkTask(
                    link=ref,
                    period=entry[1],
                    capacity=entry[2],
                    deadline=entry[3],
                    channel_id=channel_id,
                )
                for channel_id, entry in sorted(union.items())
            ]
            if tasks and not is_feasible(tasks).feasible:
                emitted += 1
                self._emit(
                    max(now_ns, 0),
                    "shared-link-double-book",
                    f"trunk{link_id}",
                    "critical",
                    f"union of committed views on trunk {link_id} is "
                    f"EDF-infeasible ({len(tasks)} channels)",
                    {"channels": sorted(union)},
                )
            if require_converged and any(v != views[0] for v in views[1:]):
                emitted += 1
                self._emit(
                    max(now_ns, 0),
                    "shared-link-divergence",
                    f"trunk{link_id}",
                    "warning",
                    f"committed views of trunk {link_id} differ at "
                    f"quiescence",
                    {"loads": [len(v) for v in views]},
                )
        return emitted


def star_bound_provider(net) -> Callable[[], dict[int, int]]:
    """Bound provider closure for a :class:`StarNetwork`.

    Converts every admitted channel's :class:`PathBound` to wall-clock
    nanoseconds with the star's PHY constants (one switch hop: two
    propagations, one store-and-forward processing).
    """
    from ..netcalc.bounds import path_bound_ns

    def provider() -> dict[int, int]:
        phy = net.phy
        return {
            channel_id: path_bound_ns(
                bound,
                phy.slot_ns,
                phy.propagation_ns,
                phy.switch_processing_ns,
            )
            for channel_id, bound in
            net.admission.state.channel_delay_bounds().items()
        }

    return provider
