"""A zero-dependency metrics registry: counters, gauges, histograms.

The observability layer's contract is *cheap enough to stay enabled in
benchmarks*: a hot-path increment is one dictionary-free attribute add
on a pre-bound child object, and everything heavier (label resolution,
snapshotting, derived collectors) happens off the hot path.

Model
-----
A *family* is a named metric with a fixed tuple of label names
(``("link",)``, ``("scheme", "reason")``, ...). ``family.labels(...)``
resolves one combination of label values to a *child* -- the object that
actually carries the number(s) -- and memoizes it, so call sites resolve
once and then increment through the child reference:

>>> registry = MetricsRegistry()
>>> accepts = registry.counter("admission.accepts", labels=("scheme",))
>>> sdps = accepts.labels("sdps")
>>> sdps.inc()
>>> registry.snapshot()["admission.accepts"]["series"][0]["value"]
1

Families with no labels expose the single child's methods directly
(``family.inc()``, ``family.set()``, ``family.observe()``), so simple
metrics need no ceremony.

*Collectors* are zero-argument callables run at snapshot time; they let
subsystems with their own private counters (the feasibility cache, port
stats, link stats) surface current values as gauges with zero hot-path
cost.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_NS",
]

#: Default fixed buckets for nanosecond latency histograms: a geometric
#: ladder from 1 us to ~1 s (frame delays in the reproduced network live
#: in the 100 us .. 10 ms decades; the tails catch pathologies).
DEFAULT_LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    1_000 * (4**k) for k in range(11)
)


class Counter:
    """Monotone event count. One labeled child of a counter family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot add {amount}"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, utilization, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def set_max(self, value) -> None:
        """Keep the maximum of the current and the offered value
        (high-water-mark tracking)."""
        if value > self.value:
            self.value = value

    def to_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``buckets`` are the inclusive upper edges, strictly ascending; one
    implicit overflow bucket catches everything beyond the last edge.
    An observation lands in the first bucket whose edge is ``>= value``
    (``bisect_left``, so an observation exactly on an edge counts into
    that edge's bucket).
    """

    __slots__ = ("uppers", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[int | float]) -> None:
        uppers = tuple(buckets)
        if not uppers:
            raise ConfigurationError("a histogram needs at least one bucket")
        if any(b >= a for b, a in zip(uppers, uppers[1:])):
            raise ConfigurationError(
                f"histogram bucket edges must be strictly ascending: {uppers}"
            )
        self.uppers = uppers
        self.bucket_counts = [0] * (len(uppers) + 1)
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value) -> None:
        self.bucket_counts[bisect_left(self.uppers, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        buckets = [
            {"le": upper, "count": count}
            for upper, count in zip(self.uppers, self.bucket_counts)
        ]
        buckets.append({"le": "+Inf", "count": self.bucket_counts[-1]})
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children.

    Constructed through the registry, never directly. Children are
    memoized by their label-value tuple; resolving the same combination
    twice returns the identical object, so call sites can pre-bind.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_children", "_make")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        make: Callable[[], Counter | Gauge | Histogram],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._children: dict[tuple, Counter | Gauge | Histogram] = {}
        self._make = make

    def labels(self, *values) -> Counter | Gauge | Histogram:
        """The child for this combination of label values (memoized).

        Values are positional, in the order the label names were
        declared; each is coerced to ``str`` so numeric IDs label
        naturally.
        """
        if len(values) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
        return child

    # unlabeled convenience: family.inc() / set() / observe() hit the
    # single default child directly.

    def inc(self, amount: int = 1) -> None:
        self.labels().inc(amount)

    def set(self, value) -> None:
        self.labels().set(value)

    def set_max(self, value) -> None:
        self.labels().set_max(value)

    def observe(self, value) -> None:
        self.labels().observe(value)

    @property
    def value(self):
        """Value of the unlabeled default child (counters/gauges)."""
        return self.labels().value

    def children(self) -> Iterator[tuple[tuple[str, ...], object]]:
        return iter(sorted(self._children.items()))

    def to_dict(self) -> dict:
        series = [
            {"labels": dict(zip(self.label_names, key)), **child.to_dict()}
            for key, child in sorted(self._children.items())
        ]
        return {
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": series,
        }


class MetricsRegistry:
    """Named families plus snapshot-time collectors.

    Registration is idempotent: asking for an existing name with the
    same kind and label names returns the existing family (so components
    can register their metrics independently); a kind or label mismatch
    is a configuration error.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration ----------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        make: Callable[[], object],
    ) -> MetricFamily:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}, cannot re-register "
                    f"as {kind} with labels {label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help, label_names, make)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels, Counter)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[int | float] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
        labels: Sequence[str] = (),
    ) -> MetricFamily:
        edges = tuple(buckets)
        Histogram(edges)  # validate the edges eagerly, not on first child
        return self._family(
            name, "histogram", help, labels, lambda: Histogram(edges)
        )

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` before every snapshot (derived metrics)."""
        self._collectors.append(collector)

    # -- access ----------------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            raise ConfigurationError(f"no metric named {name!r}")
        return family

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(
            family for _, family in sorted(self._families.items())
        )

    def __len__(self) -> int:
        return len(self._families)

    # -- export ----------------------------------------------------------

    def collect(self) -> None:
        """Run every registered collector (refresh derived gauges)."""
        for collector in self._collectors:
            collector()

    def snapshot(self) -> dict[str, dict]:
        """JSON-serializable view of every family (collectors run first)."""
        self.collect()
        return {
            name: family.to_dict()
            for name, family in sorted(self._families.items())
        }

    def value_of(self, name: str, *label_values) -> object:
        """Shortcut: current value of one child (tests, assertions)."""
        return self.get(name).labels(*label_values).value

    # -- merging ---------------------------------------------------------

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Built for combining per-worker registries of one sharded sweep:
        every numeric series is a disjoint piece of the same logical
        total, so the merge is additive across the board --

        * **counters** add their counts;
        * **gauges** add their values (worker gauges hold per-shard
          totals, e.g. summed feasibility-cache counters);
        * **histograms** add per-bucket counts, ``count`` and ``sum``,
          and fold ``min``/``max``.

        Families and children absent here are created with the
        snapshot's kind, help text and label names (histograms reuse the
        snapshot's bucket edges), so merging into an empty registry
        reproduces the source snapshot exactly. A kind or label mismatch
        with an existing family is a :class:`ConfigurationError`, as in
        normal registration.
        """
        for name, family_dict in snapshot.items():
            kind = family_dict["type"]
            help_text = family_dict.get("help", "")
            label_names = tuple(family_dict.get("label_names", ()))
            series = family_dict.get("series", [])
            if kind == "counter":
                family = self.counter(name, help_text, label_names)
            elif kind == "gauge":
                family = self.gauge(name, help_text, label_names)
            elif kind == "histogram":
                edges = DEFAULT_LATENCY_BUCKETS_NS
                if series:
                    edges = tuple(
                        bucket["le"]
                        for bucket in series[0]["buckets"]
                        if bucket["le"] != "+Inf"
                    )
                family = self.histogram(name, edges, help_text, label_names)
            else:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )
            for entry in series:
                labels = entry.get("labels", {})
                values = tuple(labels[key] for key in label_names)
                child = family.labels(*values)
                if kind == "counter":
                    child.inc(entry["value"])
                elif kind == "gauge":
                    child.inc(entry["value"])
                else:
                    self._merge_histogram(name, child, entry)

    @staticmethod
    def _merge_histogram(name: str, child: Histogram, entry: Mapping) -> None:
        edges = tuple(
            bucket["le"] for bucket in entry["buckets"]
            if bucket["le"] != "+Inf"
        )
        if edges != child.uppers:
            raise ConfigurationError(
                f"histogram {name!r} bucket edges differ: have "
                f"{child.uppers}, merging {edges}"
            )
        for i, bucket in enumerate(entry["buckets"]):
            child.bucket_counts[i] += bucket["count"]
        child.count += entry["count"]
        child.total += entry["sum"]
        for side, fold in (("min", min), ("max", max)):
            incoming = entry.get(side)
            if incoming is None:
                continue
            current = getattr(child, side)
            setattr(
                child, side,
                incoming if current is None else fold(current, incoming),
            )
