"""Causal spans: per-request / per-channel latency attribution.

The telemetry of PR 3 answers *aggregate* questions (how many frames,
what histogram of delays). Spans answer the *per-flow* question the
paper's guarantee is actually about: where did connection request
``0x4A`` spend its 212 us, and which phase of the pipeline would have
to improve to get it closer to its bound?

A **trace** is the causal tree of one logical operation -- one
connection request (minted when the RequestFrame is built and threaded
through retransmissions, the switch lease, the admission verdict and
the final response), one RT channel's data phase (every frame's per-hop
transit), or one teardown. A **span** is one timed segment of that
tree, linked to its parent. Span IDs are allocated from a single
monotone counter so a merged parallel sweep reproduces the serial ID
stream exactly (see :meth:`SpanTracker.absorb`).

Everything here is simulator-time (integer ns) and fully deterministic:
no wall clock, no randomness. The one exception is the *admission
compute* attribution, which is a wall-time quantity by nature; call
sites only measure it when :attr:`SpanTracker.measure_compute` is set
(the CLI's ``repro spans`` does, the deterministic sweep runner never
does, keeping merged shards byte-identical).

The tracker is attached to components as a plain ``spans`` attribute
(default ``None``); every call site is gated on ``is not None`` so a
run without telemetry pays one attribute load per hook, and emits
byte-identical traces and decision streams -- the same zero-cost
discipline the PR 3 trace recorder follows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Span",
    "SpanTracker",
    "RequestAttribution",
    "summarize_requests",
    "span_from_dict",
    "ATTRIBUTED_PHASES",
]

#: Critical-path phases the attribution partitions a request into.
#: ``queue`` = time in an output-port queue, ``wire`` = transmission +
#: propagation, ``processing`` = store-and-forward delay inside a
#: switch, ``backoff`` = residual time explained only by waiting on a
#: retransmission timer after a control-frame loss. ``admission`` is
#: the verdict event (zero sim-time; its wall cost is reported
#: separately as ``admission_compute_ns``).
ATTRIBUTED_PHASES = ("queue", "wire", "processing", "backoff")


@dataclass(slots=True)
class Span:
    """One timed segment of a causal trace.

    ``end_ns == -1`` marks a span still open when the tracker was
    exported (e.g. a channel root that outlives the run). ``parent_id
    == -1`` marks a trace root; for roots, ``trace_id == span_id``.
    """

    span_id: int
    trace_id: int
    parent_id: int
    name: str
    subject: str
    start_ns: int
    end_ns: int = -1
    fields: dict | None = None

    def as_dict(self) -> dict:
        record = {
            "span": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "subject": self.subject,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.fields is not None:
            record["fields"] = self.fields
        return record


def span_from_dict(record: dict) -> Span:
    """Rebuild a :class:`Span` from its :meth:`Span.as_dict` form (the
    ``spans.jsonl`` line format), so offline tools -- ``repro obs
    report``, notebook analysis -- can run the same attribution the
    live tracker supports."""
    return Span(
        span_id=record["span"],
        trace_id=record["trace"],
        parent_id=record["parent"],
        name=record["name"],
        subject=record["subject"],
        start_ns=record["start_ns"],
        end_ns=record["end_ns"],
        fields=record.get("fields"),
    )


class SpanTracker:
    """Mints, threads and stores causal spans.

    Parameters
    ----------
    capacity:
        Bounded retention; the oldest spans are dropped (and counted in
        :attr:`dropped`) once the limit is reached, like the trace
        recorder's deque.
    measure_compute:
        When True, call sites that decide admission wrap the decision
        in a wall-clock measurement and stamp ``compute_ns`` into the
        verdict span's fields. Off by default because wall times are
        not deterministic (merged parallel shards must stay
        byte-identical).
    """

    __slots__ = (
        "capacity",
        "dropped",
        "measure_compute",
        "_spans",
        "_next_id",
        "_frames",
        "_requests",
        "_channels",
        "_leases",
        "_teardowns",
    )

    def __init__(
        self, capacity: int = 200_000, *, measure_compute: bool = False
    ) -> None:
        self.capacity = capacity
        self.dropped = 0
        self.measure_compute = measure_compute
        self._spans: deque[Span] = deque()
        self._next_id = 0
        #: frame_id -> [trace_id, parent_id, queue_start, queue_subject]
        self._frames: dict[int, list] = {}
        self._requests: dict[tuple[str, int], Span] = {}
        self._channels: dict[int, Span] = {}
        self._leases: dict[int, Span] = {}
        self._teardowns: dict[int, Span] = {}

    # -- core allocation ---------------------------------------------------

    def _append(self, span: Span) -> Span:
        if len(self._spans) >= self.capacity:
            self._spans.popleft()
            self.dropped += 1
        self._spans.append(span)
        return span

    def begin_trace(
        self, name: str, subject: str, start_ns: int, fields: dict | None = None
    ) -> Span:
        """Open a new trace root (its span ID doubles as the trace ID)."""
        span_id = self._next_id
        self._next_id = span_id + 1
        return self._append(
            Span(span_id, span_id, -1, name, subject, start_ns, -1, fields)
        )

    def child(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        subject: str,
        start_ns: int,
        end_ns: int = -1,
        fields: dict | None = None,
    ) -> Span:
        """Record a child span (complete if ``end_ns`` is given)."""
        span_id = self._next_id
        self._next_id = span_id + 1
        return self._append(
            Span(span_id, trace_id, parent_id, name, subject, start_ns,
                 end_ns, fields)
        )

    def event(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        subject: str,
        time_ns: int,
        fields: dict | None = None,
    ) -> Span:
        """A zero-duration child span (verdicts, retries, losses)."""
        return self.child(
            trace_id, parent_id, name, subject, time_ns, time_ns, fields
        )

    # -- request lifecycle -------------------------------------------------

    def begin_request(
        self,
        node: str,
        connect_request_id: int,
        start_ns: int,
        fields: dict | None = None,
    ) -> Span:
        """Mint the trace for one connection request at its source."""
        root = self.begin_trace("signal.request", node, start_ns, fields)
        self._requests[(node, connect_request_id)] = root
        return root

    def request_root(self, node: str, connect_request_id: int) -> Span | None:
        return self._requests.get((node, connect_request_id))

    def end_request(
        self, node: str, connect_request_id: int, end_ns: int, status: str
    ) -> Span | None:
        """Close a request's root span with its resolution status."""
        root = self._requests.pop((node, connect_request_id), None)
        if root is not None:
            root.end_ns = end_ns
            if root.fields is None:
                root.fields = {"status": status}
            else:
                root.fields["status"] = status
        return root

    # -- channel data phase ------------------------------------------------

    def channel_root(
        self, channel_id: int, start_ns: int, subject: str
    ) -> Span:
        """The data-phase trace root of ``channel_id`` (lazily minted)."""
        root = self._channels.get(channel_id)
        if root is None:
            root = self.begin_trace(
                "channel", subject, start_ns, {"channel": channel_id}
            )
            self._channels[channel_id] = root
        return root

    # -- teardown ----------------------------------------------------------

    def begin_teardown(
        self, channel_id: int, subject: str, start_ns: int
    ) -> Span:
        root = self._teardowns.get(channel_id)
        if root is None:
            root = self.begin_trace(
                "teardown", subject, start_ns, {"channel": channel_id}
            )
            self._teardowns[channel_id] = root
        return root

    def teardown_root(self, channel_id: int) -> Span | None:
        return self._teardowns.get(channel_id)

    def end_teardown(self, channel_id: int, end_ns: int) -> None:
        """Close the teardown root at the switch's release (idempotent:
        repeated TeardownFrames land after the first one closed it)."""
        root = self._teardowns.get(channel_id)
        if root is not None and root.end_ns < 0:
            root.end_ns = end_ns

    # -- switch-side lease -------------------------------------------------

    def lease_armed(
        self,
        channel_id: int,
        trace_id: int,
        parent_id: int,
        start_ns: int,
        expires_ns: int,
    ) -> Span:
        span = self.child(
            trace_id, parent_id, "lease", "switch", start_ns, -1,
            {"channel": channel_id, "expires_ns": expires_ns},
        )
        self._leases[channel_id] = span
        return span

    def lease_resolved(self, channel_id: int, end_ns: int) -> None:
        span = self._leases.pop(channel_id, None)
        if span is not None:
            span.end_ns = end_ns
            span.fields["outcome"] = "resolved"

    def lease_reclaimed(self, channel_id: int, end_ns: int) -> None:
        span = self._leases.pop(channel_id, None)
        if span is not None:
            span.end_ns = end_ns
            span.fields["outcome"] = "reclaimed"

    # -- frame threading ---------------------------------------------------
    #
    # Frames are frozen, so the causal link rides this side table keyed
    # by the frame's debug ID (unique per network build). Entries are
    # popped at the frame's end of life (delivery, loss, buffer drop),
    # so the table is bounded by the number of frames in flight.

    def attach_frame(
        self, frame_id: int, trace_id: int, parent_id: int
    ) -> None:
        """Thread ``frame_id`` into a trace; its port/link/switch hops
        will be recorded as children of ``parent_id``."""
        self._frames[frame_id] = [trace_id, parent_id, -1, ""]

    def frame_context(self, frame_id: int) -> tuple[int, int] | None:
        """(trace_id, parent_id) of a threaded frame, else None."""
        ctx = self._frames.get(frame_id)
        if ctx is None:
            return None
        return ctx[0], ctx[1]

    def frame_enqueued(self, frame_id: int, now_ns: int, port: str) -> None:
        ctx = self._frames.get(frame_id)
        if ctx is not None:
            ctx[2] = now_ns
            ctx[3] = port

    def frame_transmit(
        self, frame_id: int, start_ns: int, arrival_ns: int, link: str
    ) -> None:
        """Record the wire hop (tx + propagation); closes any pending
        queue wait (zero waits are elided to keep span volume down --
        a zero-length span carries no attribution)."""
        ctx = self._frames.get(frame_id)
        if ctx is None:
            return
        queued = ctx[2]
        if queued >= 0:
            if start_ns > queued:
                self.child(ctx[0], ctx[1], "queue", ctx[3], queued, start_ns)
            ctx[2] = -1
        self.child(ctx[0], ctx[1], "wire", link, start_ns, arrival_ns)

    def frame_processing(
        self, frame_id: int, start_ns: int, end_ns: int, switch: str
    ) -> None:
        ctx = self._frames.get(frame_id)
        if ctx is not None:
            self.child(ctx[0], ctx[1], "processing", switch, start_ns, end_ns)

    def frame_lost(
        self, frame_id: int, now_ns: int, link: str, cause: str
    ) -> None:
        ctx = self._frames.pop(frame_id, None)
        if ctx is not None:
            self.event(
                ctx[0], ctx[1], "lost", link, now_ns, {"cause": cause}
            )

    def frame_dropped(self, frame_id: int, now_ns: int, port: str) -> None:
        ctx = self._frames.pop(frame_id, None)
        if ctx is not None:
            self.event(ctx[0], ctx[1], "dropped", port, now_ns)

    def frame_done(self, frame_id: int) -> None:
        """The frame reached its final consumer; release its context."""
        self._frames.pop(frame_id, None)

    # -- views and merge ---------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def next_id(self) -> int:
        """IDs allocated so far (the merge offset for :meth:`absorb`)."""
        return self._next_id

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0
        self._next_id = 0
        self._frames.clear()
        self._requests.clear()
        self._channels.clear()
        self._leases.clear()
        self._teardowns.clear()

    def absorb(
        self, spans: Iterable[Span], next_id: int, dropped: int = 0
    ) -> None:
        """Merge a worker shard's spans, re-basing every ID.

        The worker allocated IDs ``0 .. next_id-1`` from its own
        counter; shifting them by this tracker's current counter
        reproduces exactly the IDs a serial run would have allocated
        (serial work units allocate contiguous blocks in unit order),
        so the merged span stream is byte-identical to the serial one
        at any worker count. Parent/child links shift together, so
        causality is preserved.
        """
        offset = self._next_id
        for span in spans:
            self._append(
                Span(
                    span.span_id + offset,
                    span.trace_id + offset,
                    span.parent_id + offset if span.parent_id >= 0 else -1,
                    span.name,
                    span.subject,
                    span.start_ns,
                    span.end_ns,
                    dict(span.fields) if span.fields is not None else None,
                )
            )
        self._next_id = offset + next_id
        self.dropped += dropped


@dataclass(frozen=True, slots=True)
class RequestAttribution:
    """Critical-path breakdown of one resolved connection request."""

    trace_id: int
    subject: str
    status: str
    start_ns: int
    end_ns: int
    queue_ns: int
    wire_ns: int
    processing_ns: int
    backoff_ns: int
    admission_events: int
    admission_compute_ns: int
    retries: int

    @property
    def total_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def attributed_ns(self) -> int:
        return self.queue_ns + self.wire_ns + self.processing_ns + self.backoff_ns

    @property
    def coverage(self) -> float:
        """Fraction of the end-to-end latency attributed to a named
        phase. 1.0 by construction unless a child span leaks outside
        its root (which would indicate a threading bug)."""
        total = self.total_ns
        if total <= 0:
            return 1.0
        return self.attributed_ns / total

    def as_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "subject": self.subject,
            "status": self.status,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "total_ns": self.total_ns,
            "queue_ns": self.queue_ns,
            "wire_ns": self.wire_ns,
            "processing_ns": self.processing_ns,
            "backoff_ns": self.backoff_ns,
            "admission_events": self.admission_events,
            "admission_compute_ns": self.admission_compute_ns,
            "retries": self.retries,
            "coverage": self.coverage,
        }


def summarize_requests(spans: Iterable[Span]) -> list[RequestAttribution]:
    """Attribute each resolved request's latency to named phases.

    The timed children (queue / wire / processing) of a request trace
    partition the handshake's critical path: every segment boundary in
    the simulated pipeline is contiguous (a frame is enqueued the
    instant it is created, transmitted the instant the wire frees,
    processed the instant it arrives), so on an error-free wire the
    union of the children covers the root exactly. Under loss, the
    *uncovered* remainder is precisely the time spent waiting on a
    retransmission timer -- reported as ``backoff``. Overlapping
    intervals (an original and a retransmission in flight at once) are
    attributed first-come-first-serve over a single sweep, so no
    nanosecond is counted twice and the phases always sum to the
    end-to-end latency.
    """
    roots: dict[int, Span] = {}
    children: dict[int, list[Span]] = {}
    admission: dict[int, list[Span]] = {}
    retries: dict[int, int] = {}
    for span in spans:
        if span.name == "signal.request" and span.parent_id < 0:
            if span.end_ns >= 0:
                roots[span.trace_id] = span
        elif span.name in ("queue", "wire", "processing"):
            children.setdefault(span.trace_id, []).append(span)
        elif span.name == "admission":
            admission.setdefault(span.trace_id, []).append(span)
        elif span.name == "retry":
            retries[span.trace_id] = retries.get(span.trace_id, 0) + 1

    out: list[RequestAttribution] = []
    for trace_id, root in roots.items():
        phases = {"queue": 0, "wire": 0, "processing": 0}
        intervals = sorted(
            (
                (max(s.start_ns, root.start_ns),
                 min(s.end_ns, root.end_ns), s.name, s.span_id)
                for s in children.get(trace_id, ())
                if s.end_ns >= 0
            ),
        )
        frontier = root.start_ns
        for start, end, name, _ in intervals:
            start = max(start, frontier)
            if end > start:
                phases[name] += end - start
                frontier = end
        backoff = (root.end_ns - root.start_ns) - sum(phases.values())
        verdicts = admission.get(trace_id, ())
        compute = sum(
            s.fields.get("compute_ns", 0)
            for s in verdicts
            if s.fields is not None
        )
        status = ""
        if root.fields is not None:
            status = root.fields.get("status", "")
        out.append(
            RequestAttribution(
                trace_id=trace_id,
                subject=root.subject,
                status=status,
                start_ns=root.start_ns,
                end_ns=root.end_ns,
                queue_ns=phases["queue"],
                wire_ns=phases["wire"],
                processing_ns=phases["processing"],
                backoff_ns=backoff,
                admission_events=len(verdicts),
                admission_compute_ns=compute,
                retries=retries.get(trace_id, 0),
            )
        )
    return out
