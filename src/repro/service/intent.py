"""Intent-lock coordination for shared links in a multi-switch fabric.

A single switch owns every link of its star, so admission is a local
decision. The moment two switches share a trunk, each holds only a
*view* of the trunk's reservation state, and naive concurrent admission
can double-book it. This module adds the coordination layer:

**Intent lock (announce -> hold -> commit).** A switch wanting trunk
capacity broadcasts an :class:`~repro.protocol.frames.IntentFrame`
``ANNOUNCE`` to every peer sharing the link and retransmits it (the
PR 4 retry machinery) until every peer has ``ACK``-ed. Only then does a
*hold window* open; at its expiry the switch decides:

* if any other active intent on the link -- its own or a peer's --
  precedes it under the total order ``(priority, switch MAC, seq)``,
  it **defers** (bounded re-holds, then aborts);
* otherwise it tests EDF feasibility of the committed union plus its
  candidate, then reliably broadcasts ``COMMIT`` (idempotent by
  channel) or ``ABORT``.

Safety (THEORY.md section 10): a commit requires every peer's ACK
before the hold opens, so two conflicting intents each *know* of the
other before either can commit; the precedence order picks exactly one
winner, hence no two commits on one link overlap a hold window.

**Gossip.** Each switch periodically -- and whenever its own view moves
by more than a utilization threshold -- broadcasts a
:class:`~repro.protocol.frames.GossipFrame` carrying its per-link view
version. A peer that detects it is *ahead* of the sender re-broadcasts
its commits (and recent releases); both sides being idempotent, views
reconverge even after retry exhaustion.

:class:`SharedLinkFabric` packages the protocol with a churn-driven
workload into one checkpointable engine, mirroring
:class:`~repro.service.service.AdmissionService`: a single
content-ordered agenda heap (no sequence numbers), every piece of state
JSON-serializable, so kill-and-resume reproduces the uninterrupted
decision stream byte for byte -- even with announce/commit legs
in flight at the checkpoint.

Scope: the coordination protocol governs the *shared* trunks. Access
links (node uplink/downlink) are validated against the fabric's
authoritative access view at arrival time, exactly as a single-switch
star would; only trunk state is replicated and intent-locked.
"""

from __future__ import annotations

import heapq
import json

from ..core.channel import ChannelSpec
from ..core.feasibility import is_feasible
from ..core.task import LinkDirection, LinkRef, LinkTask
from ..errors import ConfigurationError, PartitioningError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.frames import GossipFrame, IntentFrame, IntentKind, decode_signaling
from ..protocol.signaling import RetryPolicy
from ..faults.plan import FaultPlan
from ..multiswitch.partitioning import split_deadline
from ..sim.rng import RngRegistry
from .churn import ChurnConfig, ChurnProcess

__all__ = ["IntentCoordinator", "SharedLinkFabric", "FABRIC_CHECKPOINT_VERSION"]

FABRIC_CHECKPOINT_VERSION = 1

#: Locally administered unicast base for synthetic switch MACs.
_SWITCH_MAC_BASE = 0x0200_0000_0000

#: Releases remembered per link for gossip-triggered reconciliation.
_RELEASE_LOG_LIMIT = 64

# Agenda priorities (same content-ordered-heap discipline as the
# service: ties break on (prio, k1, k2), never on insertion order).
_PRIO_DELIVER = 0
_PRIO_RETRY = 1
_PRIO_HOLD = 2
_PRIO_DEPART = 3
_PRIO_ARRIVE = 4
_PRIO_GOSSIP = 5
_PRIO_CHECKPOINT = 6


def _trunk_ref(link_id: int) -> LinkRef:
    """The shared trunk modelled as one more EDF "processor"."""
    return LinkRef(node=f"trunk{link_id}", direction=LinkDirection.UPLINK)


class IntentCoordinator:
    """One switch's replicated-trunk state machine.

    Purely passive: methods mutate local state and *return* frames for
    the caller (the fabric, or a future wire harness) to transmit. All
    state is JSON-serializable via :meth:`export_state`.
    """

    def __init__(self, mac: int, link_ids: tuple[int, ...]) -> None:
        self.mac = mac
        self.link_ids = tuple(link_ids)
        #: link_id -> {channel_id: [owner_mac, period, capacity, deadline]}
        self.committed: dict[int, dict[int, list[int]]] = {
            link_id: {} for link_id in self.link_ids
        }
        #: link_id -> count of commit/release ops applied (view version).
        self.version: dict[int, int] = {link_id: 0 for link_id in self.link_ids}
        #: own in-flight intents: seq -> record dict.
        self.pending: dict[int, dict] = {}
        #: peers' announced intents: (mac, seq) -> record dict.
        self.foreign: dict[tuple[int, int], dict] = {}
        #: (mac, seq) pairs whose COMMIT was already applied (dedup).
        self.applied: set[tuple[int, int]] = set()
        #: per-link recent releases [channel_id, seq] for reconciliation.
        self.release_log: dict[int, list[list[int]]] = {
            link_id: [] for link_id in self.link_ids
        }

    # -- intent origination ------------------------------------------------

    def begin_intent(
        self,
        seq: int,
        link_id: int,
        channel_id: int,
        priority: int,
        spec_on_link: tuple[int, int, int],
        peers: tuple[int, ...],
    ) -> IntentFrame:
        """Open a local intent record and build its ANNOUNCE frame."""
        period, capacity, deadline = spec_on_link
        self.pending[seq] = {
            "link_id": link_id,
            "channel_id": channel_id,
            "priority": priority,
            "period": period,
            "capacity": capacity,
            "deadline": deadline,
            "peers": sorted(peers),
            "acked": [],
            "state": "announce",
            "defers": 0,
        }
        return IntentFrame(
            kind=IntentKind.ANNOUNCE,
            intent_seq=seq,
            switch_mac=self.mac,
            ack_mac=0,
            link_id=link_id,
            channel_id=channel_id,
            priority=priority,
            period=period,
            capacity=capacity,
            deadline=deadline,
        )

    def precedence_of(self, seq: int) -> tuple[int, int, int]:
        record = self.pending[seq]
        return (record["priority"], self.mac, seq)

    def blockers(self, seq: int, now_ns: int, ttl_ns: int) -> int:
        """Count active intents on this intent's link that precede it.

        Considers the switch's *other* pending intents and every live
        foreign announce (pruning entries older than ``ttl_ns`` -- the
        backstop against a peer that died mid-handshake).
        """
        mine = self.pending[seq]
        my_key = self.precedence_of(seq)
        count = 0
        for other_seq, record in self.pending.items():
            if other_seq == seq or record["link_id"] != mine["link_id"]:
                continue
            if record["state"] in ("committed", "aborted"):
                continue
            if (record["priority"], self.mac, other_seq) < my_key:
                count += 1
        for (mac, fseq), record in list(self.foreign.items()):
            if now_ns - record["heard_at"] > ttl_ns:
                del self.foreign[(mac, fseq)]
                continue
            if record["link_id"] != mine["link_id"]:
                continue
            if (record["priority"], mac, fseq) < my_key:
                count += 1
        return count

    def trunk_feasible(self, seq: int) -> bool:
        """EDF-test the committed union plus this intent's candidate."""
        record = self.pending[seq]
        link_id = record["link_id"]
        ref = _trunk_ref(link_id)
        tasks = [
            LinkTask(
                link=ref,
                period=entry[1],
                capacity=entry[2],
                deadline=entry[3],
                channel_id=channel_id,
            )
            for channel_id, entry in sorted(self.committed[link_id].items())
        ]
        tasks.append(
            LinkTask(
                link=ref,
                period=record["period"],
                capacity=record["capacity"],
                deadline=record["deadline"],
                channel_id=record["channel_id"],
            )
        )
        return is_feasible(tasks).feasible

    def resolution_frame(self, seq: int, kind: IntentKind) -> IntentFrame:
        """Build the COMMIT/ABORT frame for an own pending intent."""
        record = self.pending[seq]
        record["state"] = (
            "committed" if kind is IntentKind.COMMIT else "aborted"
        )
        return IntentFrame(
            kind=kind,
            intent_seq=seq,
            switch_mac=self.mac,
            ack_mac=0,
            link_id=record["link_id"],
            channel_id=record["channel_id"],
            priority=record["priority"],
            period=record["period"],
            capacity=record["capacity"],
            deadline=record["deadline"],
        )

    def release_frame(self, seq: int, link_id: int, channel_id: int) -> IntentFrame:
        entry = self.committed[link_id][channel_id]
        return IntentFrame(
            kind=IntentKind.RELEASE,
            intent_seq=seq,
            switch_mac=self.mac,
            ack_mac=0,
            link_id=link_id,
            channel_id=channel_id,
            priority=0,
            period=entry[1],
            capacity=entry[2],
            deadline=entry[3],
        )

    # -- frame application (local and remote, all idempotent) --------------

    def record_announce(self, frame: IntentFrame, now_ns: int) -> IntentFrame:
        """Note a peer's intent; return the ACK to send back."""
        key = (frame.switch_mac, frame.intent_seq)
        if key not in self.applied:
            self.foreign[key] = {
                "link_id": frame.link_id,
                "channel_id": frame.channel_id,
                "priority": frame.priority,
                "heard_at": now_ns,
            }
        return IntentFrame(
            kind=IntentKind.ACK,
            intent_seq=frame.intent_seq,
            switch_mac=frame.switch_mac,
            ack_mac=self.mac,
            link_id=frame.link_id,
            channel_id=frame.channel_id,
            priority=frame.priority,
            period=frame.period,
            capacity=frame.capacity,
            deadline=frame.deadline,
        )

    def record_ack(self, frame: IntentFrame) -> bool:
        """Credit a peer's ACK; True when every peer has answered."""
        record = self.pending.get(frame.intent_seq)
        if record is None or record["state"] != "announce":
            return False
        if frame.ack_mac not in record["acked"]:
            record["acked"].append(frame.ack_mac)
            record["acked"].sort()
        return record["acked"] == record["peers"]

    def apply_commit(self, frame: IntentFrame) -> bool:
        """Install a commit into the replicated view (idempotent)."""
        key = (frame.switch_mac, frame.intent_seq)
        self.foreign.pop(key, None)
        if key in self.applied:
            return False
        self.applied.add(key)
        self.committed[frame.link_id][frame.channel_id] = [
            frame.switch_mac,
            frame.period,
            frame.capacity,
            frame.deadline,
            frame.intent_seq,
        ]
        self.version[frame.link_id] += 1
        return True

    def apply_abort(self, frame: IntentFrame) -> None:
        self.foreign.pop((frame.switch_mac, frame.intent_seq), None)

    def apply_release(self, frame: IntentFrame) -> bool:
        """Remove a released channel from the view (idempotent)."""
        key = (frame.switch_mac, frame.intent_seq)
        if key in self.applied:
            return False
        self.applied.add(key)
        removed = self.committed[frame.link_id].pop(frame.channel_id, None)
        if removed is None:
            return False
        self.version[frame.link_id] += 1
        log = self.release_log[frame.link_id]
        log.append([frame.channel_id, frame.intent_seq])
        del log[:-_RELEASE_LOG_LIMIT]
        return True

    # -- gossip ------------------------------------------------------------

    def utilization_of(self, link_id: int) -> tuple[int, int]:
        """Exact committed utilization of a link as (num, den)."""
        num, den = 0, 1
        for entry in self.committed[link_id].values():
            num = num * entry[1] + entry[2] * den
            den = den * entry[1]
        return num, den

    def gossip_frame(self, link_id: int) -> GossipFrame:
        num, den = self.utilization_of(link_id)
        # Clamp into the frame's 32-bit fields (den grows as a product
        # of periods; the ratio is all gossip consumers compare).
        while num >> 32 or den >> 32:
            num >>= 1
            den >>= 1
        return GossipFrame(
            switch_mac=self.mac,
            link_id=link_id,
            version=self.version[link_id],
            load=len(self.committed[link_id]),
            util_num=num,
            util_den=max(1, den),
        )

    def reconciliation_frames(self, link_id: int) -> list[IntentFrame]:
        """Re-broadcast the link view for a peer that fell behind.

        Commits are replayed from the live view; releases from the
        bounded recent-release log. Every frame is idempotent at the
        receiver, so over-sending is harmless.
        """
        frames = []
        for channel_id, entry in sorted(self.committed[link_id].items()):
            frames.append(
                IntentFrame(
                    kind=IntentKind.COMMIT,
                    intent_seq=entry[4],
                    switch_mac=entry[0],
                    ack_mac=0,
                    link_id=link_id,
                    channel_id=channel_id,
                    priority=0,
                    period=entry[1],
                    capacity=entry[2],
                    deadline=entry[3],
                )
            )
        for channel_id, seq in self.release_log[link_id]:
            frames.append(
                IntentFrame(
                    kind=IntentKind.RELEASE,
                    intent_seq=seq,
                    switch_mac=self.mac,
                    ack_mac=0,
                    link_id=link_id,
                    channel_id=channel_id,
                    priority=0,
                    period=1,
                    capacity=1,
                    deadline=1,
                )
            )
        return frames

    # -- checkpoint/resume -------------------------------------------------

    def export_state(self) -> dict:
        return {
            "mac": self.mac,
            "committed": {
                str(link_id): {
                    str(channel_id): list(entry)
                    for channel_id, entry in view.items()
                }
                for link_id, view in self.committed.items()
            },
            "version": {str(k): v for k, v in self.version.items()},
            "pending": {str(seq): dict(r) for seq, r in self.pending.items()},
            "foreign": [
                [mac, seq, dict(record)]
                for (mac, seq), record in sorted(self.foreign.items())
            ],
            "applied": sorted(list(pair) for pair in self.applied),
            "release_log": {
                str(k): [list(e) for e in v]
                for k, v in self.release_log.items()
            },
        }

    def import_state(self, data: dict) -> None:
        if int(data["mac"]) != self.mac:
            raise ConfigurationError(
                f"coordinator snapshot is for MAC {data['mac']:#x}, "
                f"this switch is {self.mac:#x}"
            )
        self.committed = {
            int(link_id): {
                int(channel_id): list(map(int, entry))
                for channel_id, entry in view.items()
            }
            for link_id, view in data["committed"].items()
        }
        self.version = {int(k): int(v) for k, v in data["version"].items()}
        self.pending = {int(seq): dict(r) for seq, r in data["pending"].items()}
        self.foreign = {
            (int(mac), int(seq)): dict(record)
            for mac, seq, record in data["foreign"]
        }
        self.applied = {(int(a), int(b)) for a, b in data["applied"]}
        self.release_log = {
            int(k): [list(map(int, e)) for e in v]
            for k, v in data["release_log"].items()
        }


class SharedLinkFabric:
    """A churn-driven multi-switch fabric with intent-locked trunks.

    ``n_switches`` switches form a chain; switch ``i`` and ``i+1``
    share trunk ``link_id=i``. Each switch serves ``nodes_per_switch``
    end nodes and runs its own seeded churn stream; every generated
    channel crosses to an adjacent switch, so every admission exercises
    the intent lock. Control frames travel over a modelled control bus
    with fixed latency, classified loss through a
    :class:`~repro.faults.plan.FaultPlan`, and per-leg retransmission.

    The engine is a content-ordered agenda heap (the
    :class:`~repro.service.service.AdmissionService` discipline), so
    :meth:`take_checkpoint`/:meth:`resume` reproduce the uninterrupted
    run byte for byte from any checkpoint -- including mid-handshake.
    """

    def __init__(
        self,
        *,
        n_switches: int = 2,
        nodes_per_switch: int = 4,
        seed: int = 0,
        churn: ChurnConfig | None = None,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        hold_ns: int = 2_000_000,
        control_latency_ns: int = 1_000,
        gossip_every_ns: int = 10_000_000,
        gossip_threshold: float = 0.10,
        checkpoint_every_ns: int | None = None,
        max_defers: int = 4,
        monitor=None,
    ) -> None:
        if n_switches < 2:
            raise ConfigurationError(
                f"a shared-link fabric needs >= 2 switches, got {n_switches}"
            )
        if nodes_per_switch < 1:
            raise ConfigurationError("need at least one node per switch")
        if hold_ns <= 0 or control_latency_ns <= 0:
            raise ConfigurationError(
                "hold_ns and control_latency_ns must be positive"
            )
        self.n_switches = n_switches
        self.nodes_per_switch = nodes_per_switch
        self.seed = seed
        self.nodes = [
            tuple(f"n{i}_{k}" for k in range(nodes_per_switch))
            for i in range(n_switches)
        ]
        all_nodes = tuple(n for group in self.nodes for n in group)
        self.churn_config = churn if churn is not None else ChurnConfig(
            nodes=all_nodes
        )
        if len(self.churn_config.nodes) < 2:  # pragma: no cover - ChurnConfig
            raise ConfigurationError("churn population too small")
        registry = RngRegistry(seed)
        self.churn = [
            ChurnProcess(registry.fork(i + 1), self.churn_config)
            for i in range(n_switches)
        ]
        self.plan = fault_plan
        self.retry = retry if retry is not None else RetryPolicy(
            timeout_ns=3_000_000, max_retries=12, backoff=1.5
        )
        self.hold_ns = hold_ns
        self.control_latency_ns = control_latency_ns
        self.gossip_every_ns = gossip_every_ns
        self.gossip_threshold = gossip_threshold
        self.checkpoint_every_ns = checkpoint_every_ns
        self.max_defers = max_defers
        self.monitor = monitor
        #: foreign-intent staleness backstop: generous multiple of the
        #: worst-case announce->resolution span under full retries.
        self.foreign_ttl_ns = (
            self.hold_ns * (max_defers + 2)
            + self.retry.delay_ns(0) * (self.retry.max_retries + 1)
        )
        self.coordinators = [
            IntentCoordinator(
                _SWITCH_MAC_BASE + i, self._links_of_switch(i)
            )
            for i in range(n_switches)
        ]
        # -- mutable engine state (everything below is checkpointed) --
        self.now = 0
        self._agenda: list[tuple[int, int, int, int]] = []
        #: fabric-global intent/message sequence.
        self._next_seq = 1
        self._next_delivery = 1
        #: delivery_id -> [src_idx, dst_idx, hex frame bytes]
        self._wire: dict[int, list] = {}
        #: seq -> reliable-broadcast record.
        self._outstanding: dict[int, dict] = {}
        #: per-switch next channel id counter (stride-partitioned).
        self._next_channel = [0] * n_switches
        #: global access-link view: "node|dir" -> {cid: [P, C, d]}.
        self._access: dict[str, dict[int, list[int]]] = {}
        #: committed channels: cid -> [switch, link_id, src, dst, departs_at]
        self._active: dict[int, list] = {}
        #: cids currently bound to an unresolved intent (id reuse guard).
        self._reserved_ids: set[int] = set()
        self._next_arrival = [0] * n_switches
        self._last_gossip_util: dict[str, list[int]] = {}
        self._started = False
        self.ledger: list[tuple] = []
        self.counters = {
            "arrivals": 0,
            "local_rejects": 0,
            "commits": 0,
            "aborts": 0,
            "defers": 0,
            "departures": 0,
            "announce_timeouts": 0,
            "retransmissions": 0,
            "gossip_rounds": 0,
            "reconciliations": 0,
            "checkpoints": 0,
        }
        self.checkpoints: list[dict] = []

    # -- topology helpers --------------------------------------------------

    def _links_of_switch(self, i: int) -> tuple[int, ...]:
        links = []
        if i > 0:
            links.append(i - 1)
        if i < self.n_switches - 1:
            links.append(i)
        return tuple(links)

    def _peers_of_link(self, link_id: int) -> tuple[int, ...]:
        return (link_id, link_id + 1)

    def _switch_of_mac(self, mac: int) -> int:
        return mac - _SWITCH_MAC_BASE

    # -- lifecycle ---------------------------------------------------------

    def start(self, at_ns: int = 0) -> None:
        if self._started:
            raise ConfigurationError("fabric already started")
        self._started = True
        self.now = at_ns
        for i in range(self.n_switches):
            self._next_arrival[i] = at_ns + self.churn[i].next_interarrival_ns()
            self._push(self._next_arrival[i], _PRIO_ARRIVE, i, 0)
            self._push(at_ns + self.gossip_every_ns, _PRIO_GOSSIP, i, 0)
        if self.checkpoint_every_ns is not None:
            self._push(
                at_ns + self.checkpoint_every_ns, _PRIO_CHECKPOINT, 0, 0
            )

    def run_until(self, until_ns: int) -> int:
        """Pump the agenda up to and including ``until_ns``."""
        if not self._started:
            raise ConfigurationError("call start() (or resume()) first")
        dispatched = 0
        while self._agenda and self._agenda[0][0] <= until_ns:
            at, prio, k1, k2 = heapq.heappop(self._agenda)
            self.now = at
            self._dispatch(prio, k1, k2)
            dispatched += 1
        self.now = max(self.now, until_ns)
        return dispatched

    def _push(self, at: int, prio: int, k1: int, k2: int) -> None:
        heapq.heappush(self._agenda, (at, prio, k1, k2))

    def _dispatch(self, prio: int, k1: int, k2: int) -> None:
        if prio == _PRIO_DELIVER:
            self._ev_deliver(k1)
        elif prio == _PRIO_RETRY:
            self._ev_retry(k1)
        elif prio == _PRIO_HOLD:
            self._ev_hold(k1)
        elif prio == _PRIO_DEPART:
            self._ev_depart(k1, k2)
        elif prio == _PRIO_ARRIVE:
            self._ev_arrive(k1)
        elif prio == _PRIO_GOSSIP:
            self._ev_gossip(k1)
        else:
            self._ev_checkpoint()

    # -- the control bus ---------------------------------------------------

    def _transmit(self, src: int, dst: int, payload: bytes) -> None:
        """One attempt to move a control frame; may be dropped."""
        if self.plan is not None:
            eth = EthernetFrame(
                kind=FrameKind.SIGNALING,
                source=f"sw{src}",
                destination=f"sw{dst}",
                payload_bytes=len(payload),
                payload_object=payload,
            )
            if self.plan.should_drop(f"sw{src}->sw{dst}", eth, self.now):
                return
        delivery_id = self._next_delivery
        self._next_delivery += 1
        self._wire[delivery_id] = [src, dst, payload.hex()]
        self._push(
            self.now + self.control_latency_ns, _PRIO_DELIVER, delivery_id, 0
        )

    def _send_reliable(
        self, src: int, frame: IntentFrame, peers: tuple[int, ...]
    ) -> None:
        """Broadcast with per-peer retransmission until ACKed.

        ANNOUNCE legs are ACKed explicitly by the protocol; COMMIT,
        ABORT and RELEASE legs reuse the same ACK frame (the receiver
        acks whatever reliable kind it hears, and application is
        idempotent, so duplicated deliveries are harmless).
        """
        payload = frame.encode()
        self._outstanding[frame.intent_seq] = {
            "src": src,
            "kind": int(frame.kind),
            "payload": payload.hex(),
            "pending": sorted(peers),
            "attempt": 0,
        }
        for dst in peers:
            self._transmit(src, dst, payload)
        self._push(
            self.now + self.retry.delay_ns(0),
            _PRIO_RETRY,
            frame.intent_seq,
            0,
        )

    def _ev_retry(self, seq: int) -> None:
        record = self._outstanding.get(seq)
        if record is None:
            return
        if not record["pending"]:
            del self._outstanding[seq]
            return
        if record["attempt"] >= self.retry.max_retries:
            del self._outstanding[seq]
            if record["kind"] == int(IntentKind.ANNOUNCE):
                self._announce_timed_out(seq)
            return
        record["attempt"] += 1
        payload = bytes.fromhex(record["payload"])
        for dst in record["pending"]:
            self.counters["retransmissions"] += 1
            self._transmit(record["src"], dst, payload)
        self._push(
            self.now + self.retry.delay_ns(record["attempt"]),
            _PRIO_RETRY,
            seq,
            0,
        )

    def _ev_deliver(self, delivery_id: int) -> None:
        entry = self._wire.pop(delivery_id, None)
        if entry is None:
            return
        src, dst, payload_hex = entry
        frame = decode_signaling(bytes.fromhex(payload_hex))
        if isinstance(frame, GossipFrame):
            self._on_gossip(dst, frame)
            return
        assert isinstance(frame, IntentFrame)
        handler = {
            IntentKind.ANNOUNCE: self._on_announce,
            IntentKind.ACK: self._on_ack,
            IntentKind.COMMIT: self._on_commit,
            IntentKind.ABORT: self._on_abort,
            IntentKind.RELEASE: self._on_release,
        }[frame.kind]
        handler(dst, frame)

    def _ack_and_mark(self, receiver: int, frame: IntentFrame) -> None:
        """Send the generic reliable-delivery ACK back to the origin."""
        ack = IntentFrame(
            kind=IntentKind.ACK,
            intent_seq=frame.intent_seq,
            switch_mac=frame.switch_mac,
            ack_mac=self.coordinators[receiver].mac,
            link_id=frame.link_id,
            channel_id=frame.channel_id,
            priority=frame.priority,
            period=frame.period,
            capacity=frame.capacity,
            deadline=frame.deadline,
        )
        self._transmit(
            receiver, self._switch_of_mac(frame.switch_mac), ack.encode()
        )

    # -- protocol event handlers -------------------------------------------

    def _on_announce(self, receiver: int, frame: IntentFrame) -> None:
        ack = self.coordinators[receiver].record_announce(frame, self.now)
        self._transmit(
            receiver, self._switch_of_mac(frame.switch_mac), ack.encode()
        )

    def _on_ack(self, receiver: int, frame: IntentFrame) -> None:
        outstanding = self._outstanding.get(frame.intent_seq)
        if outstanding is not None:
            peer = self._switch_of_mac(frame.ack_mac)
            if peer in outstanding["pending"]:
                outstanding["pending"].remove(peer)
            if not outstanding["pending"]:
                del self._outstanding[frame.intent_seq]
        coordinator = self.coordinators[receiver]
        if coordinator.record_ack(frame):
            record = coordinator.pending[frame.intent_seq]
            record["state"] = "hold"
            self._push(
                self.now + self.hold_ns, _PRIO_HOLD, frame.intent_seq, 0
            )

    def _on_commit(self, receiver: int, frame: IntentFrame) -> None:
        self.coordinators[receiver].apply_commit(frame)
        self._ack_and_mark(receiver, frame)
        self._maybe_threshold_gossip(receiver, frame.link_id)

    def _on_abort(self, receiver: int, frame: IntentFrame) -> None:
        self.coordinators[receiver].apply_abort(frame)
        self._ack_and_mark(receiver, frame)

    def _on_release(self, receiver: int, frame: IntentFrame) -> None:
        self.coordinators[receiver].apply_release(frame)
        self._ack_and_mark(receiver, frame)
        self._maybe_threshold_gossip(receiver, frame.link_id)

    def _on_gossip(self, receiver: int, frame: GossipFrame) -> None:
        coordinator = self.coordinators[receiver]
        if frame.link_id not in coordinator.version:
            return
        if coordinator.version[frame.link_id] > frame.version:
            # The sender is behind: replay our view (idempotent).
            self.counters["reconciliations"] += 1
            sender = self._switch_of_mac(frame.switch_mac)
            for reply in coordinator.reconciliation_frames(frame.link_id):
                self._transmit(receiver, sender, reply.encode())

    # -- workload events ---------------------------------------------------

    def _ev_arrive(self, i: int) -> None:
        churn = self.churn[i]
        request = churn.draw_request()
        holding = churn.holding_ns()
        self.counters["arrivals"] += 1
        all_nodes = self.churn_config.nodes
        src_slot = all_nodes.index(request.source) % self.nodes_per_switch
        src = self.nodes[i][src_slot]
        neighbours = [j for j in (i - 1, i + 1) if 0 <= j < self.n_switches]
        dst_pick = all_nodes.index(request.destination)
        j = neighbours[dst_pick % len(neighbours)]
        dst = self.nodes[j][dst_pick % self.nodes_per_switch]
        link_id = min(i, j)
        self._admit(i, j, link_id, src, dst, request.spec, holding)
        self._next_arrival[i] = self.now + churn.next_interarrival_ns()
        self._push(self._next_arrival[i], _PRIO_ARRIVE, i, 0)

    def _allocate_channel_id(self, i: int) -> int:
        """Stride-partitioned 16-bit IDs: switch ``i`` owns ``i mod n``."""
        span = 0xFFFF // self.n_switches
        for _ in range(span):
            slot = self._next_channel[i] % span
            self._next_channel[i] += 1
            candidate = 1 + slot * self.n_switches + i
            if (
                candidate not in self._active
                and candidate not in self._reserved_ids
            ):
                return candidate
        raise ConfigurationError(
            f"switch {i} exhausted its channel-ID partition"
        )

    def _admit(
        self,
        i: int,
        j: int,
        link_id: int,
        src: str,
        dst: str,
        spec: ChannelSpec,
        holding: int,
    ) -> None:
        try:
            parts = split_deadline(spec.deadline, spec.capacity, (1, 1, 1))
        except PartitioningError:
            self.counters["local_rejects"] += 1
            self.ledger.append(
                ("reject", self.now, i, src, dst, spec.period,
                 spec.capacity, spec.deadline, "partition")
            )
            return
        channel_id = self._allocate_channel_id(i)
        up_key = f"{src}|up"
        down_key = f"{dst}|down"
        for key, node, direction, deadline in (
            (up_key, src, LinkDirection.UPLINK, parts[0]),
            (down_key, dst, LinkDirection.DOWNLINK, parts[2]),
        ):
            view = self._access.get(key, {})
            tasks = [
                LinkTask(
                    link=LinkRef(node=node, direction=direction),
                    period=entry[0],
                    capacity=entry[1],
                    deadline=entry[2],
                    channel_id=cid,
                )
                for cid, entry in sorted(view.items())
            ]
            tasks.append(
                LinkTask(
                    link=LinkRef(node=node, direction=direction),
                    period=spec.period,
                    capacity=spec.capacity,
                    deadline=deadline,
                    channel_id=channel_id,
                )
            )
            if not is_feasible(tasks).feasible:
                self.counters["local_rejects"] += 1
                self.ledger.append(
                    ("reject", self.now, i, src, dst, spec.period,
                     spec.capacity, spec.deadline, "access-link")
                )
                return
        # Reserve access capacity now; released on abort or departure.
        self._access.setdefault(up_key, {})[channel_id] = [
            spec.period, spec.capacity, parts[0]
        ]
        self._access.setdefault(down_key, {})[channel_id] = [
            spec.period, spec.capacity, parts[2]
        ]
        self._reserved_ids.add(channel_id)
        seq = self._next_seq
        self._next_seq += 1
        # Rate-monotonic-flavoured precedence: shorter period wins the
        # trunk; (priority, MAC, seq) breaks the rest deterministically.
        priority = min(255, spec.period // 16)
        coordinator = self.coordinators[i]
        announce = coordinator.begin_intent(
            seq,
            link_id,
            channel_id,
            priority,
            (spec.period, spec.capacity, parts[1]),
            peers=tuple(
                self.coordinators[p].mac
                for p in self._peers_of_link(link_id)
                if p != i
            ),
        )
        record = coordinator.pending[seq]
        record["holding"] = holding
        record["src"] = src
        record["dst"] = dst
        record["owner"] = i
        peers = tuple(
            p for p in self._peers_of_link(link_id) if p != i
        )
        self.ledger.append(
            ("announce", self.now, i, channel_id, link_id, spec.period,
             spec.capacity, spec.deadline)
        )
        self._send_reliable(i, announce, peers)

    def _ev_hold(self, seq: int) -> None:
        owner = self._owner_of_seq(seq)
        if owner is None:
            return
        coordinator = self.coordinators[owner]
        record = coordinator.pending.get(seq)
        if record is None or record["state"] != "hold":
            return
        if coordinator.blockers(seq, self.now, self.foreign_ttl_ns):
            if record["defers"] < self.max_defers:
                record["defers"] += 1
                self.counters["defers"] += 1
                self._push(self.now + self.hold_ns, _PRIO_HOLD, seq, 0)
                return
            self._resolve_abort(owner, seq, "conflict")
            return
        if not coordinator.trunk_feasible(seq):
            self._resolve_abort(owner, seq, "trunk-infeasible")
            return
        self._resolve_commit(owner, seq)

    def _owner_of_seq(self, seq: int) -> int | None:
        for i, coordinator in enumerate(self.coordinators):
            if seq in coordinator.pending:
                return i
        return None

    def _resolve_commit(self, owner: int, seq: int) -> None:
        coordinator = self.coordinators[owner]
        record = coordinator.pending[seq]
        frame = coordinator.resolution_frame(seq, IntentKind.COMMIT)
        coordinator.apply_commit(frame)
        channel_id = record["channel_id"]
        self._reserved_ids.discard(channel_id)
        departs_at = self.now + record["holding"]
        self._active[channel_id] = [
            owner, record["link_id"], record["src"], record["dst"], departs_at
        ]
        self.counters["commits"] += 1
        self.ledger.append(
            ("commit", self.now, owner, channel_id, record["link_id"])
        )
        peers = tuple(
            p
            for p in self._peers_of_link(record["link_id"])
            if p != owner
        )
        self._send_reliable(owner, frame, peers)
        self._push(departs_at, _PRIO_DEPART, owner, channel_id)
        self._maybe_threshold_gossip(owner, record["link_id"])
        del coordinator.pending[seq]

    def _resolve_abort(self, owner: int, seq: int, reason: str) -> None:
        coordinator = self.coordinators[owner]
        record = coordinator.pending[seq]
        frame = coordinator.resolution_frame(seq, IntentKind.ABORT)
        self._drop_access(record["src"], record["dst"], record["channel_id"])
        self._reserved_ids.discard(record["channel_id"])
        self.counters["aborts"] += 1
        self.ledger.append(
            ("abort", self.now, owner, record["channel_id"], reason)
        )
        peers = tuple(
            p
            for p in self._peers_of_link(record["link_id"])
            if p != owner
        )
        self._send_reliable(owner, frame, peers)
        del coordinator.pending[seq]

    def _announce_timed_out(self, seq: int) -> None:
        owner = self._owner_of_seq(seq)
        if owner is None:
            return
        record = self.coordinators[owner].pending.get(seq)
        if record is None or record["state"] != "announce":
            return
        self.counters["announce_timeouts"] += 1
        self._drop_access(record["src"], record["dst"], record["channel_id"])
        self._reserved_ids.discard(record["channel_id"])
        self.counters["aborts"] += 1
        self.ledger.append(
            ("abort", self.now, owner, record["channel_id"],
             "announce-timeout")
        )
        del self.coordinators[owner].pending[seq]

    def _drop_access(self, src: str, dst: str, channel_id: int) -> None:
        for key in (f"{src}|up", f"{dst}|down"):
            view = self._access.get(key)
            if view is not None:
                view.pop(channel_id, None)
                if not view:
                    del self._access[key]

    def _ev_depart(self, owner: int, channel_id: int) -> None:
        entry = self._active.pop(channel_id, None)
        if entry is None:
            return
        _, link_id, src, dst, _ = entry
        self._drop_access(src, dst, channel_id)
        coordinator = self.coordinators[owner]
        seq = self._next_seq
        self._next_seq += 1
        frame = coordinator.release_frame(seq, link_id, channel_id)
        coordinator.apply_release(frame)
        self.counters["departures"] += 1
        self.ledger.append(("depart", self.now, owner, channel_id))
        peers = tuple(
            p for p in self._peers_of_link(link_id) if p != owner
        )
        self._send_reliable(owner, frame, peers)
        self._maybe_threshold_gossip(owner, link_id)

    # -- gossip scheduling -------------------------------------------------

    def _ev_gossip(self, i: int) -> None:
        self.counters["gossip_rounds"] += 1
        self._broadcast_gossip(i)
        self._push(self.now + self.gossip_every_ns, _PRIO_GOSSIP, i, 0)

    def _broadcast_gossip(self, i: int) -> None:
        coordinator = self.coordinators[i]
        for link_id in coordinator.link_ids:
            frame = coordinator.gossip_frame(link_id)
            key = f"{i}:{link_id}"
            self._last_gossip_util[key] = [frame.util_num, frame.util_den]
            for p in self._peers_of_link(link_id):
                if p != i:
                    self._transmit(i, p, frame.encode())

    def _maybe_threshold_gossip(self, i: int, link_id: int) -> None:
        coordinator = self.coordinators[i]
        num, den = coordinator.utilization_of(link_id)
        key = f"{i}:{link_id}"
        last = self._last_gossip_util.get(key, [0, 1])
        # |num/den - last| > threshold, in integers.
        delta = abs(num * last[1] - last[0] * den)
        if delta * 100 > int(self.gossip_threshold * 100) * den * last[1]:
            frame = coordinator.gossip_frame(link_id)
            self._last_gossip_util[key] = [frame.util_num, frame.util_den]
            for p in self._peers_of_link(link_id):
                if p != i:
                    self._transmit(i, p, frame.encode())

    # -- checkpointing -----------------------------------------------------

    def _ev_checkpoint(self) -> None:
        # Bump and reschedule *before* capturing: the snapshot's agenda
        # must already contain the next checkpoint entry, or a resumed
        # fabric never checkpoints again.
        self.counters["checkpoints"] += 1
        assert self.checkpoint_every_ns is not None
        self._push(
            self.now + self.checkpoint_every_ns, _PRIO_CHECKPOINT, 0, 0
        )
        self.take_checkpoint()

    def take_checkpoint(self) -> dict:
        """Everything a resumed fabric needs, as one JSON-able dict."""
        data = {
            "version": FABRIC_CHECKPOINT_VERSION,
            "now_ns": self.now,
            "seed": self.seed,
            "n_switches": self.n_switches,
            "nodes_per_switch": self.nodes_per_switch,
            "agenda": sorted(list(e) for e in self._agenda),
            "next_seq": self._next_seq,
            "next_delivery": self._next_delivery,
            "wire": {
                str(k): list(v) for k, v in sorted(self._wire.items())
            },
            "outstanding": {
                str(k): dict(v) for k, v in sorted(self._outstanding.items())
            },
            "next_channel": list(self._next_channel),
            "access": {
                key: {str(cid): list(entry) for cid, entry in view.items()}
                for key, view in sorted(self._access.items())
            },
            "active": {
                str(cid): list(entry)
                for cid, entry in sorted(self._active.items())
            },
            "reserved_ids": sorted(self._reserved_ids),
            "next_arrival": list(self._next_arrival),
            "last_gossip_util": {
                k: list(v) for k, v in sorted(self._last_gossip_util.items())
            },
            "coordinators": [c.export_state() for c in self.coordinators],
            "churn": [c.export_state() for c in self.churn],
            "fault_plan": (
                None if self.plan is None else self.plan.export_state()
            ),
            "counters": dict(self.counters),
            "ledger_len": len(self.ledger),
        }
        # Deep-freeze through JSON: the dicts above hold references to
        # live nested lists (ack lists, outstanding peer sets) that the
        # engine keeps mutating -- a shallow checkpoint would rot as the
        # run continues past it.
        data = json.loads(json.dumps(data, sort_keys=True))
        self.checkpoints.append(data)
        return data

    @classmethod
    def resume(cls, data: dict, **kwargs) -> "SharedLinkFabric":
        """Rebuild a fabric from :meth:`take_checkpoint` output.

        ``kwargs`` must supply the same code-level configuration
        (fault_plan, retry, hold_ns, ...) as the original; the
        checkpoint carries only positions and views, not policy.
        """
        if data.get("version") != FABRIC_CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"fabric checkpoint version {data.get('version')!r} is not "
                f"supported (this build reads {FABRIC_CHECKPOINT_VERSION})"
            )
        fabric = cls(
            n_switches=int(data["n_switches"]),
            nodes_per_switch=int(data["nodes_per_switch"]),
            seed=int(data["seed"]),
            **kwargs,
        )
        fabric._started = True
        fabric.now = int(data["now_ns"])
        fabric._agenda = [tuple(e) for e in data["agenda"]]
        heapq.heapify(fabric._agenda)
        fabric._next_seq = int(data["next_seq"])
        fabric._next_delivery = int(data["next_delivery"])
        fabric._wire = {int(k): list(v) for k, v in data["wire"].items()}
        fabric._outstanding = {
            int(k): dict(v) for k, v in data["outstanding"].items()
        }
        fabric._next_channel = [int(v) for v in data["next_channel"]]
        fabric._access = {
            key: {int(cid): list(map(int, e)) for cid, e in view.items()}
            for key, view in data["access"].items()
        }
        fabric._active = {
            int(cid): list(entry) for cid, entry in data["active"].items()
        }
        fabric._reserved_ids = {int(v) for v in data["reserved_ids"]}
        fabric._next_arrival = [int(v) for v in data["next_arrival"]]
        fabric._last_gossip_util = {
            k: list(v) for k, v in data["last_gossip_util"].items()
        }
        for coordinator, state in zip(
            fabric.coordinators, data["coordinators"]
        ):
            coordinator.import_state(state)
        for churn, state in zip(fabric.churn, data["churn"]):
            churn.import_state(state)
        if data.get("fault_plan") is not None:
            if fabric.plan is None:
                raise ConfigurationError(
                    "checkpoint carries fault-plan state but resume() was "
                    "given no fault_plan; pass the original plan config"
                )
            fabric.plan.import_state(data["fault_plan"])
        for key, count in data.get("counters", {}).items():
            if key in fabric.counters:
                fabric.counters[key] = int(count)
        return fabric

    # -- introspection for tests and invariants ----------------------------

    def trunk_views(self, link_id: int) -> list[dict[int, list[int]]]:
        """Each sharing switch's committed view of one trunk."""
        return [
            dict(self.coordinators[p].committed[link_id])
            for p in self._peers_of_link(link_id)
        ]

    def quiesce(self, settle_ns: int | None = None) -> None:
        """Stop new arrivals and drain in-flight work (end of a soak)."""
        self._agenda = [
            entry
            for entry in self._agenda
            if entry[1] not in (_PRIO_ARRIVE, _PRIO_CHECKPOINT)
        ]
        heapq.heapify(self._agenda)
        horizon = self.now + (
            settle_ns
            if settle_ns is not None
            else self.foreign_ttl_ns + self.gossip_every_ns * 2
        )
        self.run_until(horizon)

    def leaked_reservations(self) -> list[int]:
        """Access-view channel IDs with neither a live channel nor an
        unresolved intent behind them (must be empty after quiesce)."""
        leaked = set()
        for view in self._access.values():
            for cid in view:
                if cid not in self._active and cid not in self._reserved_ids:
                    leaked.add(cid)
        return sorted(leaked)
