"""Resident admission service: churn, checkpoints, and coordination.

The paper's switch is a *resident* admission authority -- channels
arrive and depart continuously while the switch keeps the system state
``{N, K}`` consistent forever (Section 18.4). Every experiment before
this package was a batch sweep; here the admission machinery runs as a
long-lived process inside the simulation kernel:

* :class:`~repro.service.churn.ChurnProcess` -- seeded Poisson-like
  arrival/departure streams with bounded holding times, drawn from
  :class:`~repro.sim.rng.RngRegistry` named streams so a run is
  byte-identical at any worker count;
* :class:`~repro.service.service.AdmissionService` -- the resident
  service: periodic snapshot checkpoints through the schema-v2
  persistence path and :func:`~repro.service.service.resume` that
  restarts mid-stream with a decision stream byte-identical to the
  never-restarted run;
* :class:`~repro.service.intent.SharedLinkFabric` -- multi-switch
  coordination: an announce-wait-commit **intent lock** over shared
  links (deterministic ``(priority, switch MAC, seq)`` tie-break,
  loss-tolerant retransmission of every leg) plus threshold-triggered
  gossip keeping per-link occupancy views converged.
"""

from .churn import ChurnConfig, ChurnProcess
from .service import AdmissionService, ServiceCheckpoint, resume
from .intent import IntentCoordinator, SharedLinkFabric

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "AdmissionService",
    "ServiceCheckpoint",
    "resume",
    "IntentCoordinator",
    "SharedLinkFabric",
]
