"""Seeded churn: continuous arrival/departure request streams.

A :class:`ChurnProcess` turns an :class:`~repro.sim.rng.RngRegistry`
into three named streams -- arrivals, holding times, and channel specs
-- so a long-lived service sees a Poisson-like request process whose
every draw is a pure function of the registry seed. The streams are
*named* (not positional) for the same reason the sweep runner's are:
interleaving other consumers of the registry, or splitting the run
across workers, must not reshuffle the churn.

Checkpoint/resume support is first-class: :meth:`ChurnProcess.export_state`
captures the three generators' bit positions (plain JSON-compatible
dicts from numpy's ``bit_generator.state``), and a process rebuilt with
the same configuration plus :meth:`ChurnProcess.import_state` continues
the draw sequence exactly where the original left off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.channel import ChannelSpec
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry

__all__ = ["ChurnConfig", "ChurnProcess"]


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Shape of the churn: rates, holding bounds, and the spec menu.

    ``nodes`` is the population requests are drawn over (source and
    destination always distinct). Interarrival and holding times are
    exponential with the given means, holding clamped to
    ``[min_holding_ns, max_holding_ns]`` -- the paper's channels are
    long-lived but *bounded* (an unbounded tail would let a finite soak
    accumulate unbounded state).
    """

    nodes: tuple[str, ...]
    mean_interarrival_ns: int = 1_000_000
    mean_holding_ns: int = 20_000_000
    min_holding_ns: int = 1_000_000
    max_holding_ns: int = 200_000_000
    #: Period menu for drawn specs (paper workload periods by default).
    periods: tuple[int, ...] = (100, 80, 60, 40)
    max_capacity: int = 6
    #: Deadline range as fractions of the period.
    deadline_lo: float = 0.2
    deadline_hi: float = 1.5

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ConfigurationError(
                f"churn needs at least 2 nodes, got {len(self.nodes)}"
            )
        if self.mean_interarrival_ns <= 0 or self.mean_holding_ns <= 0:
            raise ConfigurationError(
                "interarrival and holding means must be positive"
            )
        if not (0 < self.min_holding_ns <= self.max_holding_ns):
            raise ConfigurationError(
                f"need 0 < min_holding <= max_holding, got "
                f"[{self.min_holding_ns}, {self.max_holding_ns}]"
            )
        if not self.periods or any(p <= 0 for p in self.periods):
            raise ConfigurationError("periods must be positive")
        if self.max_capacity < 1:
            raise ConfigurationError("max_capacity must be >= 1")
        if not (0.0 < self.deadline_lo <= self.deadline_hi):
            raise ConfigurationError(
                "need 0 < deadline_lo <= deadline_hi"
            )


@dataclass(slots=True)
class ChurnRequest:
    """One drawn arrival: who wants what."""

    source: str
    destination: str
    spec: ChannelSpec


class ChurnProcess:
    """The three seeded draw streams behind a churn workload.

    Parameters
    ----------
    registry:
        Seed source; the process claims the ``churn-arrival``,
        ``churn-holding`` and ``churn-spec`` named streams.
    config:
        The workload shape.
    """

    STREAMS = ("churn-arrival", "churn-holding", "churn-spec")

    def __init__(self, registry: RngRegistry, config: ChurnConfig) -> None:
        self.config = config
        self._arrival = registry.stream("churn-arrival")
        self._holding = registry.stream("churn-holding")
        self._spec = registry.stream("churn-spec")
        #: draws performed per stream (diagnostics; checkpointed).
        self.draws = {"arrival": 0, "holding": 0, "spec": 0}

    # -- draws -------------------------------------------------------------

    def next_interarrival_ns(self) -> int:
        """Exponential interarrival gap, at least 1 ns."""
        u = float(self._arrival.random())
        self.draws["arrival"] += 1
        gap = -self.config.mean_interarrival_ns * math.log(1.0 - u)
        return max(1, int(gap))

    def holding_ns(self) -> int:
        """Bounded exponential holding time for one admitted channel."""
        u = float(self._holding.random())
        self.draws["holding"] += 1
        hold = -self.config.mean_holding_ns * math.log(1.0 - u)
        return max(
            self.config.min_holding_ns,
            min(self.config.max_holding_ns, int(hold)),
        )

    def draw_request(self) -> ChurnRequest:
        """One arrival: distinct source/destination plus a spec."""
        cfg = self.config
        rng = self._spec
        self.draws["spec"] += 1
        n = len(cfg.nodes)
        src_idx = int(rng.integers(0, n))
        dst_idx = int(rng.integers(0, n - 1))
        if dst_idx >= src_idx:
            dst_idx += 1
        period = int(cfg.periods[int(rng.integers(0, len(cfg.periods)))])
        capacity = int(rng.integers(1, cfg.max_capacity + 1))
        lo = max(capacity, int(cfg.deadline_lo * period))
        hi = max(lo + 1, int(cfg.deadline_hi * period))
        deadline = int(rng.integers(lo, hi + 1))
        return ChurnRequest(
            source=cfg.nodes[src_idx],
            destination=cfg.nodes[dst_idx],
            spec=ChannelSpec(
                period=period, capacity=capacity, deadline=deadline
            ),
        )

    # -- checkpoint/resume -------------------------------------------------

    def export_state(self) -> dict:
        """JSON-compatible generator positions + draw counters."""
        return {
            "draws": dict(self.draws),
            "streams": {
                "churn-arrival": self._arrival.bit_generator.state,
                "churn-holding": self._holding.bit_generator.state,
                "churn-spec": self._spec.bit_generator.state,
            },
        }

    def import_state(self, data: dict) -> None:
        """Adopt positions exported by :meth:`export_state`.

        The process must have been built from the same registry seed and
        configuration; the state dicts carry the generator name, so a
        mismatched bit generator is rejected by numpy itself.
        """
        streams = data.get("streams", {})
        for name in self.STREAMS:
            if name not in streams:
                raise ConfigurationError(
                    f"churn snapshot is missing stream {name!r}"
                )
        self._arrival.bit_generator.state = streams["churn-arrival"]
        self._holding.bit_generator.state = streams["churn-holding"]
        self._spec.bit_generator.state = streams["churn-spec"]
        for key, count in data.get("draws", {}).items():
            if key in self.draws:
                self.draws[key] = int(count)
