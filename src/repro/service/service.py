"""The resident admission service: churn in, decisions out, forever.

:class:`AdmissionService` runs inside the discrete-event kernel as a
long-lived process. Its *agenda* is a deterministic heap of
``(at_ns, priority, key)`` entries -- departures before arrivals before
checkpoints at equal times, departures ordered by channel ID -- pumped
through the :class:`~repro.sim.kernel.Simulator` one instant at a time.
The agenda deliberately carries **no insertion sequence numbers**: its
order is a pure function of content, which is what makes
checkpoint/resume exact -- a resumed service rebuilds the identical
agenda from the checkpoint and continues the identical decision stream.

Checkpoints ride the schema-v2 persistence path
(:func:`repro.core.persistence.snapshot`) plus the service's own state:
the churn generators' positions, the pending departure schedule, the
pre-drawn next arrival time, and the running counters. :func:`resume`
reverses all of it; the contract (pinned by the service soak and the
Hypothesis churn property) is that kill-and-resume at any checkpoint
yields a final ``{N, K}`` and decision-ledger suffix byte-identical to
the uninterrupted run.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.admission import AdmissionController
from ..core.partitioning import DeadlinePartitioningScheme
from ..core import persistence
from ..errors import ConfigurationError
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .churn import ChurnConfig, ChurnProcess

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..obs.monitor import InvariantMonitor

__all__ = ["AdmissionService", "ServiceCheckpoint", "resume"]

#: Checkpoint layout version (independent of the admission snapshot's).
SERVICE_CHECKPOINT_VERSION = 1

# Agenda priorities at equal timestamps: departures free capacity before
# the same instant's arrival is decided (a channel whose holding time
# ends exactly when a request lands does not block it), and checkpoints
# observe the instant's final state.
_PRIO_DEPARTURE = 0
_PRIO_ARRIVAL = 1
_PRIO_CHECKPOINT = 2


@dataclass(frozen=True, slots=True)
class ServiceCheckpoint:
    """One taken checkpoint: the JSON-compatible payload plus its digest."""

    taken_at_ns: int
    data: dict
    digest: str


def _digest(admission_snapshot: dict) -> str:
    blob = json.dumps(admission_snapshot, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class AdmissionService:
    """A churn-driven admission authority resident in the kernel.

    Parameters
    ----------
    controller:
        The admission controller owning ``{N, K}``.
    churn:
        The seeded request process.
    sim:
        Kernel to live in; a private one is created when omitted.
    checkpoint_every_ns:
        Period of automatic snapshot checkpoints (None = never).
    monitor:
        Optional invariant monitor; ``check_links`` runs after every
        processed instant.
    """

    def __init__(
        self,
        controller: AdmissionController,
        churn: ChurnProcess,
        *,
        sim: Simulator | None = None,
        checkpoint_every_ns: int | None = None,
        monitor: "InvariantMonitor | None" = None,
    ) -> None:
        if checkpoint_every_ns is not None and checkpoint_every_ns <= 0:
            raise ConfigurationError(
                f"checkpoint_every_ns must be positive, got "
                f"{checkpoint_every_ns}"
            )
        self._controller = controller
        self._churn = churn
        self._sim = sim if sim is not None else Simulator()
        self._checkpoint_every_ns = checkpoint_every_ns
        self._monitor = monitor
        #: heap of (at_ns, priority, key); key = channel_id for
        #: departures, 0 otherwise. Content-ordered (no seq numbers).
        self._agenda: list[tuple[int, int, int]] = []
        #: authoritative departure schedule (channel_id -> at_ns).
        self._departures: dict[int, int] = {}
        self._next_arrival_at: int | None = None
        self._next_checkpoint_at: int | None = None
        self._pump_scheduled_at: int | None = None
        self._started = False
        #: decision stream: JSON-able tuples, in processing order.
        self.ledger: list[tuple] = []
        self.counters = {
            "arrivals": 0,
            "accepts": 0,
            "rejects": 0,
            "departures": 0,
            "checkpoints": 0,
        }
        self.checkpoints: list[ServiceCheckpoint] = []

    # -- public surface ----------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def controller(self) -> AdmissionController:
        return self._controller

    @property
    def active_channels(self) -> int:
        return len(self._controller.state)

    @property
    def last_checkpoint(self) -> ServiceCheckpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    def start(self, at_ns: int = 0) -> None:
        """Schedule the first arrival (and checkpoint) and begin."""
        if self._started:
            raise ConfigurationError("service already started")
        self._started = True
        self._next_arrival_at = at_ns + self._churn.next_interarrival_ns()
        heapq.heappush(
            self._agenda, (self._next_arrival_at, _PRIO_ARRIVAL, 0)
        )
        if self._checkpoint_every_ns is not None:
            self._next_checkpoint_at = at_ns + self._checkpoint_every_ns
            heapq.heappush(
                self._agenda,
                (self._next_checkpoint_at, _PRIO_CHECKPOINT, 0),
            )
        self._schedule_pump()

    def run_until(self, until_ns: int) -> int:
        """Advance the kernel (and so the service) to ``until_ns``."""
        if not self._started:
            raise ConfigurationError("call start() (or resume()) first")
        return self._sim.run(until=until_ns)

    def final_state_json(self) -> str:
        """Canonical JSON of the current admission state (byte-compare)."""
        return persistence.dumps(self._controller, indent=None)

    # -- checkpointing -----------------------------------------------------

    def take_checkpoint(self, now_ns: int | None = None) -> ServiceCheckpoint:
        """Capture everything a resumed service needs, right now."""
        now = self._sim.now if now_ns is None else now_ns
        admission = persistence.snapshot(self._controller)
        data = {
            "version": SERVICE_CHECKPOINT_VERSION,
            "now_ns": now,
            "admission": admission,
            "churn": self._churn.export_state(),
            "departures": sorted(
                [at, channel_id]
                for channel_id, at in self._departures.items()
            ),
            "next_arrival_at": self._next_arrival_at,
            "next_checkpoint_at": self._next_checkpoint_at,
            "checkpoint_every_ns": self._checkpoint_every_ns,
            "counters": dict(self.counters),
            "ledger_len": len(self.ledger),
        }
        # Deep-freeze through JSON so no nested structure stays shared
        # with live state (the fabric checkpoint learned this the hard
        # way); also guarantees the payload is serializable.
        data = json.loads(json.dumps(data, sort_keys=True))
        checkpoint = ServiceCheckpoint(
            taken_at_ns=now, data=data, digest=_digest(admission)
        )
        self.checkpoints.append(checkpoint)
        return checkpoint

    # -- the agenda pump ---------------------------------------------------

    def _schedule_pump(self) -> None:
        if not self._agenda:
            return
        head_at = self._agenda[0][0]
        if self._pump_scheduled_at == head_at:
            return
        self._pump_scheduled_at = head_at
        self._sim.schedule_at(head_at, self._pump, label="service:pump")

    def _pump(self) -> None:
        now = self._sim.now
        self._pump_scheduled_at = None
        while self._agenda and self._agenda[0][0] == now:
            _, prio, key = heapq.heappop(self._agenda)
            if prio == _PRIO_DEPARTURE:
                self._process_departure(now, key)
            elif prio == _PRIO_ARRIVAL:
                self._process_arrival(now)
            else:
                self._process_checkpoint(now)
        if self._monitor is not None:
            self._monitor.check_links(self._controller.state, now)
        self._schedule_pump()

    def _process_arrival(self, now: int) -> None:
        request = self._churn.draw_request()
        decision = self._controller.request(
            request.source, request.destination, request.spec
        )
        self.counters["arrivals"] += 1
        channel_id = -1
        if decision.accepted:
            self.counters["accepts"] += 1
            channel_id = decision.channel.channel_id
            departs_at = now + self._churn.holding_ns()
            self._departures[channel_id] = departs_at
            heapq.heappush(
                self._agenda, (departs_at, _PRIO_DEPARTURE, channel_id)
            )
        else:
            self.counters["rejects"] += 1
        self.ledger.append(
            (
                "arrive",
                now,
                request.source,
                request.destination,
                request.spec.period,
                request.spec.capacity,
                request.spec.deadline,
                int(decision.accepted),
                channel_id,
            )
        )
        self._next_arrival_at = now + self._churn.next_interarrival_ns()
        heapq.heappush(
            self._agenda, (self._next_arrival_at, _PRIO_ARRIVAL, 0)
        )

    def _process_departure(self, now: int, channel_id: int) -> None:
        del self._departures[channel_id]
        self._controller.release(channel_id)
        self.counters["departures"] += 1
        self.ledger.append(("depart", now, channel_id))

    def _process_checkpoint(self, now: int) -> None:
        # Advance the counter and the next-checkpoint time *before*
        # capturing: the snapshot must describe the world as of this
        # checkpoint having happened, or a resumed run re-fires it
        # (duplicate ledger entry) and finishes one checkpoint short.
        self.counters["checkpoints"] += 1
        assert self._checkpoint_every_ns is not None
        self._next_checkpoint_at = now + self._checkpoint_every_ns
        heapq.heappush(
            self._agenda, (self._next_checkpoint_at, _PRIO_CHECKPOINT, 0)
        )
        checkpoint = self.take_checkpoint(now)
        self.ledger.append(("checkpoint", now, checkpoint.digest))


def resume(
    data: dict,
    dps: DeadlinePartitioningScheme,
    registry: RngRegistry,
    config: ChurnConfig,
    *,
    sim: Simulator | None = None,
    monitor: "InvariantMonitor | None" = None,
) -> AdmissionService:
    """Restart a service from a checkpoint, mid-stream.

    ``registry`` and ``config`` must match the original service's (they
    are code-level configuration; the checkpoint only carries the
    generators' *positions*). The resumed service's ledger starts empty
    -- its entries are the uninterrupted run's suffix from the
    checkpoint instant onward, byte for byte.
    """
    if data.get("version") != SERVICE_CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"service checkpoint version {data.get('version')!r} is not "
            f"supported (this build reads {SERVICE_CHECKPOINT_VERSION})"
        )
    controller = persistence.restore(data["admission"], dps)
    churn = ChurnProcess(registry, config)
    churn.import_state(data["churn"])
    service = AdmissionService(
        controller,
        churn,
        sim=sim,
        checkpoint_every_ns=data.get("checkpoint_every_ns"),
        monitor=monitor,
    )
    service._started = True
    for at, channel_id in data.get("departures", ()):
        service._departures[int(channel_id)] = int(at)
        heapq.heappush(
            service._agenda, (int(at), _PRIO_DEPARTURE, int(channel_id))
        )
    next_arrival = data.get("next_arrival_at")
    if next_arrival is not None:
        service._next_arrival_at = int(next_arrival)
        heapq.heappush(
            service._agenda, (int(next_arrival), _PRIO_ARRIVAL, 0)
        )
    next_checkpoint = data.get("next_checkpoint_at")
    if next_checkpoint is not None and service._checkpoint_every_ns:
        service._next_checkpoint_at = int(next_checkpoint)
        heapq.heappush(
            service._agenda, (int(next_checkpoint), _PRIO_CHECKPOINT, 0)
        )
    for key, count in data.get("counters", {}).items():
        if key in service.counters:
            service.counters[key] = int(count)
    service._schedule_pump()
    return service
