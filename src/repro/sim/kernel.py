"""The discrete-event simulator core.

A minimal, deterministic event loop in integer nanoseconds:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` enqueue a
  callback; same-time events fire in scheduling (FIFO) order.
* :meth:`Simulator.run` drains the queue, optionally up to a horizon.
* cancellation is lazy and O(1) (see :mod:`repro.sim.events`).

The kernel is callback-based rather than coroutine-based: the network
models (links, ports, sources) are naturally event-driven state
machines, and callbacks keep the hot loop free of generator overhead --
one simulated second of a loaded 100 Mbps link is ~8k frame events, and
the validation experiments simulate many hyperperiods.

Event-queue implementations
---------------------------
The pending-event set is pluggable (``Simulator(queue=...)``):

``"heap"`` (default)
    a binary heap keyed by ``(time, seq)`` -- O(log n) push/pop,
    perfectly robust for any time distribution.
``"calendar"``
    a calendar queue (Brown 1988): buckets of width ``w`` indexed by
    ``time // w`` modulo the bucket count, scanned from the current
    year forward. For the periodic traffic this simulator exists for
    (frame slots recur every period/hyperperiod), push and pop are
    amortized O(1), which is what keeps the kernel up with the batched
    admission engine's decision rate. Bucket count and width adapt by
    powers of two as occupancy changes; every adaptation is a pure
    function of queue content, so runs remain bit-deterministic.

Both implementations dispatch in the identical total order ``(time,
seq)`` -- same-time FIFO included -- which the kernel test suite
enforces by differential replay.

Observability hooks
-------------------
Two features exist purely for the telemetry layer and cost nothing when
unused:

* **weak events** (``schedule(..., weak=True)``): observer callbacks
  that never keep the simulation alive. ``run()`` returns as soon as no
  *strong* (normal) events remain, without firing leftover weak events,
  so periodic probes cannot extend the final clock or perturb results.
* **profiler** (:attr:`Simulator.profiler`): when set to an object with
  an ``account(label, wall_ns)`` method, ``run()`` times each dispatch
  with ``perf_counter_ns`` and reports it. ``None`` (the default) keeps
  the dispatch loop branch-free of timing calls.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Callable, Iterator

from ..errors import ConfigurationError, SimulationError
from .events import Event, EventHandle
from .events import _fired  # type: ignore[attr-defined]

__all__ = ["Simulator"]

#: Queue entry: ``(time, seq, event)``; ``(time, seq)`` is unique, so
#: entries never compare by ``Event``.
_Entry = tuple[int, int, Event]


class _HeapQueue:
    """The classic binary-heap pending set (total order ``(time, seq)``)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _Entry) -> None:
        heapq.heappush(self._heap, entry)

    def peek(self) -> _Entry | None:
        return self._heap[0] if self._heap else None

    def pop(self) -> _Entry:
        return heapq.heappop(self._heap)

    def entries(self) -> Iterator[_Entry]:
        return iter(self._heap)

    def rebuild(self, entries: list[_Entry]) -> None:
        heapq.heapify(entries)
        self._heap = entries


class _CalendarQueue:
    """A calendar queue: bucketed pending set with amortized O(1) ops.

    Buckets are little ``(time, seq)``-keyed heaps; bucket ``b`` holds
    every pending entry with ``(time // width) % nbuckets == b``. A pop
    scans buckets starting at the *current year* (the bucket holding
    ``last_time``) and takes the head of the first bucket whose head
    actually belongs to the year under scan; if a whole year is empty,
    it falls back to a direct minimum search (the standard escape for
    sparse regions). Correctness does not depend on the width heuristic
    -- a bad width only degrades to O(nbuckets) scans -- and both the
    resize trigger and the width choice are pure functions of content,
    keeping replay deterministic.
    """

    __slots__ = (
        "_buckets", "_width", "_nbuckets", "_size", "_last_time", "_head"
    )

    _MIN_BUCKETS = 4

    def __init__(self) -> None:
        self._nbuckets = self._MIN_BUCKETS
        self._buckets: list[list[_Entry]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._width = 1024
        self._size = 0
        self._last_time = 0
        #: memoized result of the last _locate_min scan; invalidated by
        #: any mutation. Makes the kernel's peek-then-pop dispatch
        #: pattern a single scan per event.
        self._head: tuple[int, _Entry] | None = None

    def __len__(self) -> int:
        return self._size

    def push(self, entry: _Entry) -> None:
        head = self._head
        if head is not None and entry < head[1]:
            self._head = None
        index = (entry[0] // self._width) % self._nbuckets
        heapq.heappush(self._buckets[index], entry)
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(self._nbuckets * 2)

    def _locate_min(self) -> tuple[int, _Entry] | None:
        """(bucket index, head entry) of the queue minimum, or None."""
        if not self._size:
            return None
        if self._head is not None:
            return self._head
        width = self._width
        nbuckets = self._nbuckets
        year = self._last_time // width
        for offset in range(nbuckets):
            bucket = self._buckets[(year + offset) % nbuckets]
            if bucket and bucket[0][0] // width == year + offset:
                self._head = ((year + offset) % nbuckets, bucket[0])
                return self._head
        # Sparse region: nothing due within one full calendar year.
        # Direct search over the bucket heads (each head is its
        # bucket's minimum because buckets are heaps).
        best_index = -1
        best: _Entry | None = None
        for index, bucket in enumerate(self._buckets):
            if bucket and (best is None or bucket[0] < best):
                best_index = index
                best = bucket[0]
        assert best is not None
        self._head = (best_index, best)
        return self._head

    def peek(self) -> _Entry | None:
        located = self._locate_min()
        return located[1] if located is not None else None

    def pop(self) -> _Entry:
        located = self._locate_min()
        if located is None:
            raise IndexError("pop from an empty calendar queue")
        index, _ = located
        entry = heapq.heappop(self._buckets[index])
        self._head = None
        self._size -= 1
        self._last_time = entry[0]
        if (
            self._nbuckets > self._MIN_BUCKETS
            and self._size < self._nbuckets // 2
        ):
            self._resize(self._nbuckets // 2)
        return entry

    def entries(self) -> Iterator[_Entry]:
        for bucket in self._buckets:
            yield from bucket

    def rebuild(self, entries: list[_Entry]) -> None:
        size = len(entries)
        nbuckets = self._MIN_BUCKETS
        while nbuckets * 2 < size:
            nbuckets *= 2
        self._head = None
        self._nbuckets = nbuckets
        self._width = self._pick_width(entries)
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            heapq.heappush(
                self._buckets[(entry[0] // width) % nbuckets], entry
            )
        self._size = size

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._head = None
        self._nbuckets = nbuckets
        self._width = self._pick_width(entries)
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            heapq.heappush(
                self._buckets[(entry[0] // width) % nbuckets], entry
            )

    def _pick_width(self, entries: list[_Entry]) -> int:
        """Bucket width ~ the mean gap between pending event times.

        Aims at O(1) entries per bucket-year; clamped to >= 1 and kept
        a deterministic function of the pending set. Degenerate
        distributions (all same instant) just mean one busy bucket --
        still correct, the in-bucket heap handles it.
        """
        if len(entries) < 2:
            return max(1024, self._width)
        lo = min(entry[0] for entry in entries)
        hi = max(entry[0] for entry in entries)
        span = hi - lo
        if span <= 0:
            return max(1, self._width)
        return max(1, span // len(entries) + 1)


_QUEUES: dict[str, type] = {"heap": _HeapQueue, "calendar": _CalendarQueue}


class Simulator:
    """Deterministic discrete-event loop with an integer-ns clock.

    Parameters
    ----------
    queue:
        Pending-set implementation, ``"heap"`` (default) or
        ``"calendar"`` (see the module docstring). Both dispatch in the
        identical ``(time, seq)`` total order.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(100, lambda: seen.append(sim.now))
    >>> _ = sim.schedule(50, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [50, 100]
    """

    def __init__(self, *, queue: str = "heap") -> None:
        queue_type = _QUEUES.get(queue)
        if queue_type is None:
            raise ConfigurationError(
                f"unknown event queue {queue!r} (have {sorted(_QUEUES)})"
            )
        self._now = 0
        self._seq = 0
        self._queue_kind = queue
        self._queue = queue_type()
        self._running = False
        self._dispatched = 0
        self._strong = 0  # live (not cancelled, not fired) non-weak events
        self._max_heap_depth = 0
        self.profiler = None
        #: optional callback ``(exc)`` fired when an exception escapes
        #: the dispatch loop, before it propagates -- the flight
        #: recorder's crash-dump hook. ``None`` (default) keeps the
        #: loop's failure path identical to an uninstrumented kernel.
        self.on_crash = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """Which pending-set implementation this kernel runs on."""
        return self._queue_kind

    @property
    def pending_events(self) -> int:
        """Events still in the queue (including lazily cancelled ones)."""
        return len(self._queue)

    @property
    def live_pending_events(self) -> int:
        """Events still in the queue that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily-cancelled
        entries, so telemetry probes report true queue depth. O(queue).
        """
        return sum(
            1 for _, _, event in self._queue.entries() if not event.cancelled
        )

    @property
    def dispatched_events(self) -> int:
        """Lifetime count of events that actually fired."""
        return self._dispatched

    @property
    def max_heap_depth(self) -> int:
        """High-water mark of the event queue (includes cancelled)."""
        return self._max_heap_depth

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: int,
        action: Callable[[], None],
        label: str = "",
        *,
        weak: bool = False,
    ) -> EventHandle:
        """Schedule ``action`` to fire ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events fire later in
        the *current* instant, after all previously scheduled events for
        this time (FIFO), never immediately re-entering the caller.

        ``weak=True`` marks an observer event that never keeps the
        simulation alive (see the module docstring).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay} ns)"
            )
        return self.schedule_at(self._now + delay, action, label, weak=weak)

    def schedule_at(
        self,
        time: int,
        action: Callable[[], None],
        label: str = "",
        *,
        weak: bool = False,
    ) -> EventHandle:
        """Schedule ``action`` at absolute simulation time ``time`` (ns)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} ns; the clock is already at "
                f"{self._now} ns"
            )
        if not callable(action):
            raise SimulationError(
                f"event action must be callable, got {type(action).__name__}"
            )
        event = Event(
            time=time, seq=self._seq, action=action, label=label, weak=weak
        )
        self._seq += 1
        self._queue.push((time, event.seq, event))
        if not weak:
            self._strong += 1
        if len(self._queue) > self._max_heap_depth:
            self._max_heap_depth = len(self._queue)
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """Strong-event cancellation hook (called by EventHandle.cancel)."""
        self._strong -= 1

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Inclusive horizon in ns. Events scheduled after ``until``
            stay queued and the clock is advanced to exactly ``until``
            when the queue outlives the horizon. ``None`` drains the
            whole queue.

        Returns the number of events dispatched by this call. Re-entrant
        calls (``run`` from inside an event) are an error.

        Termination counts only *strong* events: once none remain, the
        loop exits without firing leftover weak observer events, so the
        final clock equals what an uninstrumented run would report.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"horizon {until} ns is in the past (now {self._now} ns)"
            )
        self._running = True
        profiler = self.profiler
        queue = self._queue
        fired = 0
        try:
            while self._strong:
                head = queue.peek()
                if head is None:
                    break
                time = head[0]
                if until is not None and time > until:
                    break
                event = queue.pop()[2]
                if event.cancelled:
                    continue
                if not event.weak:
                    self._strong -= 1
                self._now = time
                action = event.action
                event.action = _fired
                if profiler is None:
                    action()
                else:
                    start = perf_counter_ns()
                    action()
                    profiler.account(event.label, perf_counter_ns() - start)
                fired += 1
                self._dispatched += 1
        except BaseException as exc:
            if self.on_crash is not None:
                self.on_crash(exc)
            raise
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
            # The horizon path is where runs abandon in-flight work, so
            # lazily-cancelled entries would otherwise linger forever.
            self.compact()
        return fired

    def step(self) -> bool:
        """Dispatch a single (non-cancelled) event. Returns False if idle."""
        if self._running:
            raise SimulationError("Simulator.step is not re-entrant")
        queue = self._queue
        while len(queue):
            time, _, event = queue.pop()
            if event.cancelled:
                continue
            if not event.weak:
                self._strong -= 1
            self._now = time
            action = event.action
            event.action = _fired
            self._running = True
            try:
                action()
            finally:
                self._running = False
            self._dispatched += 1
            return True
        return False

    def peek_time(self) -> int | None:
        """Firing time of the next live event, or None when idle."""
        queue = self._queue
        while True:
            head = queue.peek()
            if head is None:
                return None
            if head[2].cancelled:
                queue.pop()
                continue
            return head[0]

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> int:
        """Drop lazily-cancelled events from the queue.

        Cancellation is O(1) by leaving the queue entry in place; a run
        stopped at a horizon can therefore accumulate dead entries
        indefinitely. Rebuilding without them is safe because queue keys
        ``(time, seq)`` are unique, so the rebuilt structure preserves
        pop order exactly. Returns the number of entries removed.
        """
        if self._running:
            raise SimulationError("cannot compact while running")
        before = len(self._queue)
        live = [
            entry for entry in self._queue.entries()
            if not entry[2].cancelled
        ]
        removed = before - len(live)
        if removed:
            self._queue.rebuild(live)
            self._strong = sum(
                1 for _, _, event in self._queue.entries() if not event.weak
            )
        return removed
