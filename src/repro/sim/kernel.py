"""The discrete-event simulator core.

A minimal, deterministic event loop in integer nanoseconds:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` enqueue a
  callback; same-time events fire in scheduling (FIFO) order.
* :meth:`Simulator.run` drains the queue, optionally up to a horizon.
* cancellation is lazy and O(1) (see :mod:`repro.sim.events`).

The kernel is callback-based rather than coroutine-based: the network
models (links, ports, sources) are naturally event-driven state
machines, and callbacks keep the hot loop free of generator overhead --
one simulated second of a loaded 100 Mbps link is ~8k frame events, and
the validation experiments simulate many hyperperiods.

Observability hooks
-------------------
Two features exist purely for the telemetry layer and cost nothing when
unused:

* **weak events** (``schedule(..., weak=True)``): observer callbacks
  that never keep the simulation alive. ``run()`` returns as soon as no
  *strong* (normal) events remain, without firing leftover weak events,
  so periodic probes cannot extend the final clock or perturb results.
* **profiler** (:attr:`Simulator.profiler`): when set to an object with
  an ``account(label, wall_ns)`` method, ``run()`` times each dispatch
  with ``perf_counter_ns`` and reports it. ``None`` (the default) keeps
  the dispatch loop branch-free of timing calls.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Callable

from ..errors import SimulationError
from .events import Event, EventHandle
from .events import _fired  # type: ignore[attr-defined]

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event loop with an integer-ns clock.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(100, lambda: seen.append(sim.now))
    >>> _ = sim.schedule(50, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [50, 100]
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._running = False
        self._dispatched = 0
        self._strong = 0  # live (not cancelled, not fired) non-weak events
        self._max_heap_depth = 0
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events still in the queue (including lazily cancelled ones)."""
        return len(self._heap)

    @property
    def live_pending_events(self) -> int:
        """Events still in the queue that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily-cancelled
        entries, so telemetry probes report true queue depth. O(queue).
        """
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    @property
    def dispatched_events(self) -> int:
        """Lifetime count of events that actually fired."""
        return self._dispatched

    @property
    def max_heap_depth(self) -> int:
        """High-water mark of the event queue (includes cancelled)."""
        return self._max_heap_depth

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: int,
        action: Callable[[], None],
        label: str = "",
        *,
        weak: bool = False,
    ) -> EventHandle:
        """Schedule ``action`` to fire ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events fire later in
        the *current* instant, after all previously scheduled events for
        this time (FIFO), never immediately re-entering the caller.

        ``weak=True`` marks an observer event that never keeps the
        simulation alive (see the module docstring).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay} ns)"
            )
        return self.schedule_at(self._now + delay, action, label, weak=weak)

    def schedule_at(
        self,
        time: int,
        action: Callable[[], None],
        label: str = "",
        *,
        weak: bool = False,
    ) -> EventHandle:
        """Schedule ``action`` at absolute simulation time ``time`` (ns)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} ns; the clock is already at "
                f"{self._now} ns"
            )
        if not callable(action):
            raise SimulationError(
                f"event action must be callable, got {type(action).__name__}"
            )
        event = Event(
            time=time, seq=self._seq, action=action, label=label, weak=weak
        )
        self._seq += 1
        heapq.heappush(self._heap, (time, event.seq, event))
        if not weak:
            self._strong += 1
        if len(self._heap) > self._max_heap_depth:
            self._max_heap_depth = len(self._heap)
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """Strong-event cancellation hook (called by EventHandle.cancel)."""
        self._strong -= 1

    # -- execution -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Inclusive horizon in ns. Events scheduled after ``until``
            stay queued and the clock is advanced to exactly ``until``
            when the queue outlives the horizon. ``None`` drains the
            whole queue.

        Returns the number of events dispatched by this call. Re-entrant
        calls (``run`` from inside an event) are an error.

        Termination counts only *strong* events: once none remain, the
        loop exits without firing leftover weak observer events, so the
        final clock equals what an uninstrumented run would report.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"horizon {until} ns is in the past (now {self._now} ns)"
            )
        self._running = True
        profiler = self.profiler
        fired = 0
        try:
            while self._heap and self._strong:
                time, _, event = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if not event.weak:
                    self._strong -= 1
                self._now = time
                action = event.action
                event.action = _fired
                if profiler is None:
                    action()
                else:
                    start = perf_counter_ns()
                    action()
                    profiler.account(event.label, perf_counter_ns() - start)
                fired += 1
                self._dispatched += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
            # The horizon path is where runs abandon in-flight work, so
            # lazily-cancelled entries would otherwise linger forever.
            self.compact()
        return fired

    def step(self) -> bool:
        """Dispatch a single (non-cancelled) event. Returns False if idle."""
        if self._running:
            raise SimulationError("Simulator.step is not re-entrant")
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if not event.weak:
                self._strong -= 1
            self._now = time
            action = event.action
            event.action = _fired
            self._running = True
            try:
                action()
            finally:
                self._running = False
            self._dispatched += 1
            return True
        return False

    def peek_time(self) -> int | None:
        """Firing time of the next live event, or None when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> int:
        """Drop lazily-cancelled events from the queue.

        Cancellation is O(1) by leaving the heap entry in place; a run
        stopped at a horizon can therefore accumulate dead entries
        indefinitely. Rebuilding without them is safe because heap keys
        ``(time, seq)`` are unique, so heapify preserves pop order
        exactly. Returns the number of entries removed.
        """
        if self._running:
            raise SimulationError("cannot compact while running")
        before = len(self._heap)
        self._heap = [
            entry for entry in self._heap if not entry[2].cancelled
        ]
        removed = before - len(self._heap)
        if removed:
            heapq.heapify(self._heap)
            self._strong = sum(
                1 for _, _, event in self._heap if not event.weak
            )
        return removed
