"""Discrete-event simulation substrate.

The paper's evaluation ran on the authors' simulator; ours is a small,
deterministic, integer-nanosecond event kernel:

* :mod:`~repro.sim.kernel` -- the event loop (:class:`Simulator`).
* :mod:`~repro.sim.events` -- event records and handles.
* :mod:`~repro.sim.rng` -- named, independently seeded random streams so
  that changing one traffic source's draws never perturbs another's.
* :mod:`~repro.sim.trace` -- structured trace recording for debugging
  and for the validation experiments.
"""

from .events import Event, EventHandle
from .kernel import Simulator
from .rng import RngRegistry
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "TraceRecord",
    "TraceRecorder",
]
