"""Event records for the discrete-event kernel.

An :class:`Event` pairs a firing time with a zero-argument callback.
Determinism rule: events scheduled for the same instant fire in the
order they were scheduled (FIFO), enforced by a monotone sequence
number in the heap key. This makes every simulation run bit-for-bit
reproducible for a given seed, which the validation experiments rely
on.

:class:`EventHandle` is the caller-facing token for cancellation.
Cancellation is lazy (the heap entry stays but is skipped on pop),
which keeps cancel O(1) -- important because every frame transmission
schedules a completion event and pipelined transmitters re-plan often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventHandle"]


@dataclass(slots=True)
class Event:
    """One scheduled callback. Library-internal; users see handles.

    ``weak`` marks observer events (telemetry probes): the simulator
    stops once only weak events remain, so probes never extend a run
    nor change its final clock. Weak actions must not mutate model
    state or schedule strong events.
    """

    time: int
    seq: int
    action: Callable[[], None]
    label: str = ""
    cancelled: bool = False
    weak: bool = False

    def sort_key(self) -> tuple[int, int]:
        return (self.time, self.seq)


@dataclass(frozen=True, slots=True)
class EventHandle:
    """Opaque token returned by :meth:`Simulator.schedule`.

    Holds a reference to the underlying event so cancellation works even
    after the heap has been reorganized, plus the owning simulator so
    cancelling a strong event immediately releases its keep-alive count
    (the simulator must not idle-wait on an event that will never fire).
    """

    _event: Event = field(repr=False)
    _sim: object = field(default=None, repr=False)

    @property
    def time(self) -> int:
        """The scheduled firing time (ns)."""
        return self._event.time

    @property
    def label(self) -> str:
        """Diagnostic label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def pending(self) -> bool:
        """True until the event has fired or been cancelled."""
        return not self._event.cancelled and self._event.action is not _fired

    def cancel(self) -> bool:
        """Prevent the event from firing. Returns False if already fired."""
        if self._event.action is _fired:
            return False
        if not self._event.cancelled:
            self._event.cancelled = True
            if self._sim is not None and not self._event.weak:
                self._sim._note_cancelled()
        return True


def _fired() -> None:  # sentinel assigned after dispatch
    raise AssertionError("a fired event must never be re-dispatched")
