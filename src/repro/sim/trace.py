"""Structured trace recording for simulations.

The validation experiments need to reconstruct per-frame timelines
(generated → queued → transmission start → delivered) to verify the
paper's Eq. 18.1 guarantee. Rather than sprinkling print statements,
every network component reports milestones to a :class:`TraceRecorder`;
recording is off by default and costs one predicate call per milestone
when disabled, so production benchmark runs pay almost nothing.

Records are plain tuples-with-names, filterable by category, and the
recorder can summarize itself for quick debugging.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One milestone in a simulation.

    Attributes
    ----------
    time:
        Simulation time (ns) of the milestone.
    category:
        Dotted event kind, e.g. ``"frame.delivered"``, ``"edf.enqueue"``,
        ``"signal.request"``.
    subject:
        Identifier of the thing the record is about (usually a frame ID
        or channel ID rendered into the free-form text by the caller).
    detail:
        Free-form human-readable detail.
    """

    time: int
    category: str
    subject: str
    detail: str = ""


class TraceRecorder:
    """Collects :class:`TraceRecord` entries when enabled.

    Parameters
    ----------
    enabled:
        When False (the default), :meth:`record` is a cheap no-op.
    capacity:
        Optional cap on stored records; when exceeded, the *oldest*
        records are discarded (the most recent history is what one debugs
        with). ``None`` means unbounded.
    """

    def __init__(self, enabled: bool = False, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0

    def record(
        self, time: int, category: str, subject: str, detail: str = ""
    ) -> None:
        """Store one milestone (no-op when disabled)."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(time=time, category=category, subject=subject, detail=detail)
        )
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded due to the capacity cap."""
        return self._dropped

    def by_category(self, category: str) -> list[TraceRecord]:
        """All stored records with exactly this category."""
        return [r for r in self._records if r.category == category]

    def by_prefix(self, prefix: str) -> list[TraceRecord]:
        """All stored records whose category starts with ``prefix``."""
        return [r for r in self._records if r.category.startswith(prefix)]

    def categories(self) -> dict[str, int]:
        """Histogram of stored record categories."""
        return dict(Counter(r.category for r in self._records))

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0

    def summary(self, limit: int = 10) -> str:
        """Multi-line human-readable digest (top categories by count)."""
        lines = [f"TraceRecorder: {len(self._records)} records"]
        if self._dropped:
            lines.append(f"  ({self._dropped} dropped by capacity cap)")
        for category, count in sorted(
            self.categories().items(), key=lambda kv: -kv[1]
        )[:limit]:
            lines.append(f"  {category:30s} {count}")
        return "\n".join(lines)
