"""Structured trace recording for simulations.

The validation experiments need to reconstruct per-frame timelines
(generated → queued → transmission start → delivered) to verify the
paper's Eq. 18.1 guarantee. Rather than sprinkling print statements,
every network component reports milestones to a :class:`TraceRecorder`;
recording is off by default and costs one predicate call per milestone
when disabled, so production benchmark runs pay almost nothing.

Records are plain tuples-with-names, filterable by category, and the
recorder can summarize itself for quick debugging.

Hot-path discipline
-------------------
Formatting a ``detail`` string is often more expensive than storing the
record, so instrumented call sites gate payload construction on
:meth:`TraceRecorder.enabled_for`::

    if trace.enabled_for("link.start"):
        trace.record(now, "link.start", frame.describe(), f"tx={tx}")

``enabled_for`` is a cheap predicate (one attribute read when tracing
is off), so a disabled recorder never pays for f-strings.

Structured payloads
-------------------
Beyond the free-form ``detail`` string, a record can carry ``fields``
-- a small dict of typed values (``{"duration_ns": 12000, "ch": 3}``).
The telemetry exporters (:mod:`repro.obs.export`) turn these into
Chrome-trace arguments and span durations; components that predate the
telemetry layer simply leave ``fields`` as ``None``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One milestone in a simulation.

    Attributes
    ----------
    time:
        Simulation time (ns) of the milestone.
    category:
        Dotted event kind, e.g. ``"frame.delivered"``, ``"edf.enqueue"``,
        ``"signal.request"``.
    subject:
        Identifier of the thing the record is about (usually a frame ID
        or channel ID rendered into the free-form text by the caller).
    detail:
        Free-form human-readable detail.
    fields:
        Optional typed payload for exporters. ``duration_ns`` is special:
        exporters render the record as a span of that length starting at
        ``time`` rather than an instant.
    """

    time: int
    category: str
    subject: str
    detail: str = ""
    fields: Mapping[str, object] | None = None


class TraceRecorder:
    """Collects :class:`TraceRecord` entries when enabled.

    Parameters
    ----------
    enabled:
        When False (the default), :meth:`record` is a cheap no-op.
    capacity:
        Optional cap on stored records; when exceeded, the *oldest*
        records are discarded (the most recent history is what one debugs
        with). ``None`` means unbounded. Backed by
        :class:`collections.deque` so eviction is O(1) per record.
    prefixes:
        Optional category filter: when given, only categories starting
        with one of these prefixes are stored (and ``enabled_for``
        reports False for the rest, so call sites skip formatting too).
    """

    def __init__(
        self,
        enabled: bool = False,
        capacity: int | None = None,
        prefixes: tuple[str, ...] | None = None,
    ) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0
        self._prefixes = tuple(prefixes) if prefixes else None

    def enabled_for(self, category: str) -> bool:
        """True when a record of this category would be stored.

        Call sites use this to gate detail-string construction, so the
        check must stay cheap: one attribute read when disabled.
        """
        if not self.enabled:
            return False
        prefixes = self._prefixes
        return prefixes is None or category.startswith(prefixes)

    def record(
        self,
        time: int,
        category: str,
        subject: str,
        detail: str = "",
        fields: Mapping[str, object] | None = None,
    ) -> None:
        """Store one milestone (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        prefixes = self._prefixes
        if prefixes is not None and not category.startswith(prefixes):
            return
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self._dropped += 1
        records.append(
            TraceRecord(
                time=time,
                category=category,
                subject=subject,
                detail=detail,
                fields=fields,
            )
        )

    def extend(self, records, dropped: int = 0) -> None:
        """Append already-built records (merging a worker's recorder).

        Each record passes through :meth:`record`, so the enabled flag,
        the prefix filter and the capacity cap apply exactly as if the
        events had been recorded here; ``dropped`` adds the source
        recorder's own drop count so capacity losses in a worker stay
        visible after the merge.
        """
        for r in records:
            self.record(r.time, r.category, r.subject, r.detail, r.fields)
        if dropped:
            self._dropped += dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Records discarded due to the capacity cap."""
        return self._dropped

    def by_category(self, category: str) -> list[TraceRecord]:
        """All stored records with exactly this category."""
        return [r for r in self._records if r.category == category]

    def by_prefix(self, prefix: str) -> list[TraceRecord]:
        """All stored records whose category starts with ``prefix``."""
        return [r for r in self._records if r.category.startswith(prefix)]

    def categories(self) -> dict[str, int]:
        """Histogram of stored record categories."""
        return dict(Counter(r.category for r in self._records))

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0

    def summary(self, limit: int = 10) -> str:
        """Multi-line human-readable digest (top categories by count)."""
        lines = [f"TraceRecorder: {len(self._records)} records"]
        if self._dropped:
            lines.append(f"  ({self._dropped} dropped by capacity cap)")
        for category, count in sorted(
            self.categories().items(), key=lambda kv: -kv[1]
        )[:limit]:
            lines.append(f"  {category:30s} {count}")
        return "\n".join(lines)
