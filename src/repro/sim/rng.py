"""Named, independently seeded random streams.

Experiments must be reproducible (same seed → same admitted channel set →
same figure row) and *decoupled*: adding a best-effort traffic source
must not change which (master, slave) pairs the request generator draws.
The standard trick is one named stream per consumer, each derived from
the experiment's root seed plus the stream name via ``numpy``'s
``SeedSequence.spawn``-style keying.

Usage
-----
>>> rngs = RngRegistry(seed=42)
>>> a = rngs.stream("requests")
>>> b = rngs.stream("besteffort")
>>> a is rngs.stream("requests")   # memoized
True
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["RngRegistry", "FORK_MODULUS"]

#: Multiplier of the :meth:`RngRegistry.fork` derivation. ``fork`` maps
#: ``(root_seed, sub_seed) -> root_seed * FORK_MODULUS + sub_seed``,
#: which is injective only while ``sub_seed < FORK_MODULUS`` -- e.g.
#: ``RngRegistry(s).fork(FORK_MODULUS)`` would equal
#: ``RngRegistry(s + 1).fork(0)``. ``fork`` therefore rejects larger
#: sub-seeds instead of silently aliasing another registry's streams.
FORK_MODULUS = 1_000_003


class RngRegistry:
    """Factory and cache for named :class:`numpy.random.Generator` streams.

    Each stream is seeded from ``(root_seed, hash(name))`` through
    :class:`numpy.random.SeedSequence`, so streams are statistically
    independent and stable across runs and process restarts (the name
    hash is a deterministic string digest, not Python's randomized
    ``hash``).
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int) or seed < 0:
            raise ConfigurationError(
                f"root seed must be a non-negative int, got {seed!r}"
            )
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    @staticmethod
    def _name_key(name: str) -> int:
        """Stable 64-bit digest of a stream name (FNV-1a)."""
        acc = 0xCBF29CE484222325
        for byte in name.encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoized) generator for ``name``."""
        if not name:
            raise ConfigurationError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(self._name_key(name),)
            )
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def fork(self, sub_seed: int) -> "RngRegistry":
        """A registry for a sub-experiment (e.g. trial ``i`` of a sweep).

        Derived as ``root_seed * FORK_MODULUS + sub_seed`` (a base-
        ``FORK_MODULUS`` digit append), so that trials of the same
        experiment never share streams while remaining a pure function
        of ``(root seed, trial index)``. The derivation is injective
        only for ``sub_seed`` in ``[0, FORK_MODULUS)``; anything larger
        would collide with a different root seed's fork (e.g.
        ``fork(FORK_MODULUS)`` == ``RngRegistry(seed + 1).fork(0)``)
        and is rejected. Sub-seeds in range keep the exact streams they
        have always produced.
        """
        if sub_seed < 0:
            raise ConfigurationError(f"sub_seed must be >= 0, got {sub_seed}")
        if sub_seed >= FORK_MODULUS:
            raise ConfigurationError(
                f"sub_seed must be < {FORK_MODULUS} (larger values alias "
                f"another root seed's forks), got {sub_seed}"
            )
        return RngRegistry(self._seed * FORK_MODULUS + sub_seed)
