"""Command-line interface: regenerate any experiment from a terminal.

``python -m repro <command>`` runs one reproduced artifact and prints
its table; ``--csv``/``--json`` additionally export the series for
external plotting. Every command is seeded and deterministic.

Commands
--------
``fig18-5``      the paper's Figure 18.5 (EXP-F5)
``validate``     Eq. 18.1 guarantee under simulation (EXP-V1)
``coexist``      best-effort coexistence (EXP-B1)
``perf``         feasibility-test cost (EXP-P1)
``ablation``     parameter sweeps (EXP-A1/A3/A4) and the symmetric
                 control (EXP-A2)
``dps``          all five partitioning schemes (EXP-D1)
``multiswitch``  switch-tree extension (EXP-X1)
``fabric-sweep`` graph-fabric acceptance curves (EXP-X3): fat-tree /
                 chain / tree / star topologies at 100+ end nodes,
                 msym vs mprop, seeded multipath routing
``robustness``   phase / loss fault injection (EXP-R1) and the
                 signalling-loss liveness check (EXP-R2,
                 ``--signal-loss``)
``oracle``       differential fuzz campaign: analytical admission vs
                 brute-force EDF timeline replay
``bench-admission`` admission fast-path timing, cached vs from-scratch
                 (EXP-P2); ``--smoke`` for the quick CI variant
``admission-diff`` differential campaign: cached vs from-scratch
                 admission decisions under interleaved releases;
                 ``--churn`` interleaves snapshot/resume ops and
                 byte-compares every persistence round-trip
``service-soak`` long-lived admission service soak (EXP-X4): churn
                 workload, kill-and-resume determinism, and the
                 two-switch intent-lock fabric under control loss
``netcalc-diff`` second-oracle fuzz campaign: network-calculus bounds
                 vs paper bounds vs measured simulation delays
``netcalc-bounds`` per-channel netcalc bound table for the Fig. 18.5
                 workload (the checked-in regression CSV)
``obs``          telemetry bundles: ``capture`` a fully instrumented
                 run, ``check`` an emitted bundle against the schemas,
                 ``report`` a bundle's spans/anomalies/flight dumps
``spans``        causal span capture: attribute each request's latency
                 to queue/wire/processing/backoff, with an online
                 invariant monitor and flight recorder riding along
``bench-report`` summarize the benchmark suite's ``BENCH_*.json``
                 artifacts, optionally against a baseline directory

``fig18-5``, ``validate`` and ``robustness --signal-loss`` accept
``--telemetry-out DIR`` to emit a telemetry bundle (metrics snapshot,
probe time series, JSONL trace and a Chrome/Perfetto trace) alongside
their normal output.

The acceptance sweeps (``fig18-5``, ``dps``, ``ablation``,
``multiswitch``, ``fabric-sweep``) and ``validate --trials N`` accept
``--workers N`` to
fan their seeded work units across a process pool (1 = serial, 0 = one
per CPU); every output -- tables, CSV/JSON exports, telemetry bundles
-- is byte-identical at any worker count.

Exit status: 0 on success, 1 when a checked guarantee is violated
(``validate``, ``coexist``, ``robustness``, ``oracle``,
``bench-admission`` parity, ``admission-diff``, ``netcalc-diff``,
``service-soak``, ``fabric-sweep --cross-check``,
``obs check``, the ``spans`` coverage gate, ``bench-report`` schema
conformance), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.export import write_csv, write_json
from .analysis.report import format_table
from .oracle.fuzz import FAMILIES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Real-Time Communication for Industrial "
            "Embedded Systems Using Switched Ethernet' (Hoang & Jonsson, "
            "2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--trials", type=int, default=10,
                       help="trials per randomized point (default 10)")
        p.add_argument("--seed", type=int, default=2004)
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for the sweep (1 = serial, "
                            "0 = all CPUs; results are identical at any "
                            "worker count)")
        p.add_argument("--csv", metavar="PATH",
                       help="export the series as CSV")
        p.add_argument("--json", metavar="PATH",
                       help="export the series as JSON")
        return p

    fig = common(sub.add_parser("fig18-5", help="reproduce Figure 18.5"))
    fig.add_argument(
        "--telemetry-out", metavar="DIR",
        help="emit a telemetry bundle (metrics + traces) into DIR",
    )

    validate = sub.add_parser(
        "validate", help="check the Eq. 18.1 guarantee by simulation"
    )
    validate.add_argument("--masters", type=int, default=6)
    validate.add_argument("--slaves", type=int, default=18)
    validate.add_argument("--requests", type=int, default=80)
    validate.add_argument("--hyperperiods", type=int, default=3)
    validate.add_argument("--seed", type=int, default=55)
    validate.add_argument(
        "--trials", type=int, default=1,
        help="independent validation runs (trial 0 uses --seed, trial i "
             "forks seed i); exit 0 only when every run holds",
    )
    validate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --trials > 1 (1 = serial, 0 = all "
             "CPUs; reports are identical at any worker count)",
    )
    validate.add_argument(
        "--scheme", choices=["sdps", "adps"], default="adps"
    )
    validate.add_argument(
        "--decompose", action="store_true",
        help="additionally print the per-channel per-hop budget table "
             "(EXP-V2)",
    )
    validate.add_argument(
        "--telemetry-out", metavar="DIR",
        help="emit a telemetry bundle (metrics + probes + traces) into DIR",
    )
    validate.add_argument(
        "--profile", action="store_true",
        help="with --telemetry-out: time every kernel event callback "
             "and include the per-label profile in the metrics snapshot",
    )

    audit = sub.add_parser(
        "audit",
        help="admit a master-slave workload and print the operator's "
             "view: admission history + per-link occupancy/headroom",
    )
    audit.add_argument("--masters", type=int, default=10)
    audit.add_argument("--slaves", type=int, default=50)
    audit.add_argument("--requests", type=int, default=120)
    audit.add_argument("--seed", type=int, default=2004)
    audit.add_argument(
        "--scheme", choices=["sdps", "adps"], default="adps"
    )

    coexist = sub.add_parser(
        "coexist", help="RT + saturating best-effort coexistence"
    )
    coexist.add_argument("--masters", type=int, default=4)
    coexist.add_argument("--slaves", type=int, default=12)
    coexist.add_argument("--requests", type=int, default=40)
    coexist.add_argument("--messages", type=int, default=8)
    coexist.add_argument("--seed", type=int, default=77)

    perf = sub.add_parser("perf", help="feasibility-test cost sweep")
    perf.add_argument("--sizes", type=int, nargs="+",
                      default=[4, 8, 12, 16, 20])
    perf.add_argument("--homogeneous", action="store_true",
                      help="use the paper's fixed channel parameters")
    perf.add_argument("--seed", type=int, default=99)

    ablation = common(sub.add_parser("ablation", help="parameter sweeps"))
    ablation.add_argument(
        "axis", choices=["deadline", "capacity", "masters", "symmetric"]
    )

    common(sub.add_parser("dps", help="compare all five DPS schemes"))

    multiswitch = common(
        sub.add_parser("multiswitch", help="switch-tree extension")
    )
    multiswitch.add_argument("--switches", type=int, default=3)

    fabric = common(sub.add_parser(
        "fabric-sweep",
        help="graph-fabric acceptance curves (EXP-X3): msym vs mprop "
             "over a fat-tree/chain/tree/star at 100+ end nodes",
    ))
    fabric.set_defaults(trials=5)
    fabric.add_argument(
        "--topology", default="fat-tree:4", metavar="SPEC",
        help="fat-tree:K, chain:N, tree:DEPTH:FANOUT or star:N "
             "(default fat-tree:4)",
    )
    fabric.add_argument(
        "--hosts-per-edge", type=int, default=None, metavar="N",
        help="hosts per edge/leaf switch (default: topology-specific; "
             "the fat-tree default scales to >= 100 end nodes)",
    )
    fabric.add_argument(
        "--requests", type=int, default=400,
        help="channel requests offered per trial (default 400)",
    )
    fabric.add_argument(
        "--checkpoints", type=int, default=10,
        help="evenly spaced acceptance checkpoints (default 10)",
    )
    fabric.add_argument(
        "--routing-seed", type=int, default=0,
        help="seed of the equal-cost multipath tie-break (default 0)",
    )
    fabric.add_argument(
        "--cross-check", action="store_true",
        help="replay trial 0 serially and run the three-way netcalc / "
             "demand-test / EDF-replay oracle on every occupied link "
             "(exit 1 on any disagreement)",
    )

    robustness = sub.add_parser(
        "robustness", help="fault injection outside the paper's model"
    )
    robustness.add_argument(
        "mode", nargs="?", choices=["phase", "loss", "signal"], default=None,
        help="phase/loss = EXP-R1, signal = EXP-R2 (may be omitted when "
             "--signal-loss is given)",
    )
    robustness.add_argument("--loss-rate", type=float, default=0.01)
    robustness.add_argument(
        "--signal-loss", type=float, default=None, metavar="RATE",
        help="EXP-R2: drop this fraction of every signalling frame class "
             "and check that no reservation leaks (implies mode "
             "'signal'; default rate 0.2)",
    )
    robustness.add_argument(
        "--requests", type=int, default=40,
        help="channel requests for the signal mode (default 40)",
    )
    robustness.add_argument("--seed", type=int, default=808)
    robustness.add_argument(
        "--telemetry-out", metavar="DIR",
        help="signal mode: emit a telemetry bundle (retry/lease/stale "
             "counters + traces) into DIR",
    )

    oracle = sub.add_parser(
        "oracle",
        help="differential fuzz campaign: analytical feasibility vs "
             "EDF timeline replay",
    )
    oracle.add_argument("--trials", type=int, default=1000,
                        help="random task sets to cross-check "
                             "(default 1000)")
    oracle.add_argument("--seed", type=int, default=0)
    oracle.add_argument(
        "--families", nargs="+", metavar="NAME", default=None,
        choices=FAMILIES,
        help="task-set families to draw from, space-separated "
             "(default: all; see repro.oracle.fuzz.FAMILIES)",
    )
    oracle.add_argument(
        "--skip-naive", action="store_true",
        help="skip the every-integer reference scan (faster; the "
             "timeline leg still runs)",
    )
    oracle.add_argument(
        "--max-horizon", type=int, default=None,
        help="cap on replay/scan horizons in slots (longer sets are "
             "counted as horizon-capped, not failed)",
    )
    oracle.add_argument("--json", metavar="PATH",
                        help="export the campaign report as JSON")

    bench = sub.add_parser(
        "bench-admission",
        help="time the Fig. 18.5 admission sweep cached vs from-scratch "
             "(EXP-P2)",
    )
    bench.add_argument("--requests", type=int, default=200,
                       help="channel requests per trial (default 200)")
    bench.add_argument("--trials", type=int, default=5,
                       help="request sequences per timing run (default 5)")
    bench.add_argument("--seed", type=int, default=2004)
    bench.add_argument(
        "--scheme", choices=["sdps", "adps"], default="sdps",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per side; the minimum is reported "
             "(default 3)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="quick CI variant: reduced workload, asserts decision "
             "parity but no speedup floor (shared-runner timing is "
             "too noisy for ratios)",
    )
    bench.add_argument("--json", metavar="PATH",
                       help="export the timing report as JSON")
    bench.add_argument(
        "--metrics", action="store_true",
        help="add an untimed instrumented pass and report the registry "
             "snapshot (verdict counters + cache hit/miss metrics)",
    )
    bench.add_argument(
        "--batch", action="store_true",
        help="EXP-P7 variant: time the batched admit_many engine "
             "(cold burst + saturated storm) against the cached "
             "scalar path instead of cached-vs-naive",
    )

    ncdiff = sub.add_parser(
        "netcalc-diff",
        help="second-oracle fuzz campaign: measured per-frame delays "
             "vs network-calculus and paper bounds, plus per-link "
             "three-way admission checks",
    )
    ncdiff.add_argument("--trials", type=int, default=1000,
                        help="seeded simulation trials (default 1000)")
    ncdiff.add_argument("--seed", type=int, default=0)
    ncdiff.add_argument(
        "--topologies", nargs="+", metavar="NAME", default=None,
        choices=["star", "fabric", "fat-tree"],
        help="topologies to cycle through "
             "(default: star fabric fat-tree)",
    )
    ncdiff.add_argument("--json", metavar="PATH",
                        help="export the campaign report as JSON")

    ncbounds = sub.add_parser(
        "netcalc-bounds",
        help="per-channel network-calculus bound table for the "
             "Fig. 18.5 workload (regenerates the checked-in CSV)",
    )
    ncbounds.add_argument(
        "--checkpoints", type=int, nargs="+", default=None,
        help="offered-request checkpoints (default: 20 100 200)",
    )
    ncbounds.add_argument("--csv", metavar="PATH",
                          help="write the CSV (default: print the table)")

    obs = sub.add_parser(
        "obs",
        help="telemetry bundles: capture an instrumented run or "
             "schema-check an emitted bundle",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    capture = obs_sub.add_parser(
        "capture",
        help="run a fully instrumented validation simulation and write "
             "the telemetry bundle (open trace.chrome.json in Perfetto)",
    )
    capture.add_argument("out", metavar="DIR",
                         help="directory for the bundle files")
    capture.add_argument("--masters", type=int, default=4)
    capture.add_argument("--slaves", type=int, default=12)
    capture.add_argument("--requests", type=int, default=40)
    capture.add_argument("--hyperperiods", type=int, default=2)
    capture.add_argument("--seed", type=int, default=55)
    capture.add_argument("--profile", action="store_true",
                         help="also profile kernel event callbacks")
    check = obs_sub.add_parser(
        "check", help="validate a bundle directory against the schemas"
    )
    check.add_argument("bundle", metavar="DIR",
                       help="bundle directory to validate")
    obs_report = obs_sub.add_parser(
        "report",
        help="summarize an emitted bundle: span phases, per-request "
             "latency attribution, anomalies and flight dumps",
    )
    obs_report.add_argument("bundle", metavar="DIR",
                            help="bundle directory to summarize")

    spans_cmd = sub.add_parser(
        "spans",
        help="causal span capture: run an instrumented handshake "
             "workload and attribute every request's end-to-end latency "
             "to queue/wire/processing/backoff phases",
    )
    spans_cmd.add_argument(
        "--summary", action="store_true",
        help="print the per-request attribution table",
    )
    spans_cmd.add_argument(
        "--signal-loss", type=float, default=None, metavar="RATE",
        help="run the EXP-R2 signalling-loss workload at RATE instead "
             "of the clean validation run (exercises backoff "
             "attribution)",
    )
    spans_cmd.add_argument("--masters", type=int, default=4)
    spans_cmd.add_argument("--slaves", type=int, default=12)
    spans_cmd.add_argument("--requests", type=int, default=40)
    spans_cmd.add_argument("--hyperperiods", type=int, default=2)
    spans_cmd.add_argument("--seed", type=int, default=55)
    spans_cmd.add_argument(
        "--out", metavar="DIR",
        help="write the telemetry bundle (spans.jsonl, anomalies.jsonl, "
             "flight dumps) into DIR",
    )
    spans_cmd.add_argument(
        "--min-coverage", type=float, default=0.99,
        help="fail (exit 1) when any resolved request attributes less "
             "than this fraction of its latency to named phases "
             "(default 0.99)",
    )

    breport = sub.add_parser(
        "bench-report",
        help="summarize BENCH_*.json artifacts emitted by the benchmark "
             "suite; optionally compare wall times against a baseline "
             "directory",
    )
    breport.add_argument("dir", metavar="DIR",
                         help="directory holding BENCH_*.json files")
    breport.add_argument(
        "--baseline", metavar="DIR", default=None,
        help="earlier BENCH_*.json directory to diff against",
    )

    adiff = sub.add_parser(
        "admission-diff",
        help="differential campaign: cached vs from-scratch admission "
             "decisions under interleaved releases",
    )
    adiff.add_argument("--trials", type=int, default=200,
                       help="seeded trials to compare (default 200)")
    adiff.add_argument("--seed", type=int, default=0)
    adiff.add_argument("--ops", type=int, default=40,
                       help="request/release operations per trial "
                            "(default 40)")
    adiff.add_argument(
        "--batch", action="store_true",
        help="three-way mode: additionally replay every trial's "
             "request bursts through admit_many() on a third "
             "controller and require the identical decision stream",
    )
    adiff.add_argument(
        "--churn", action="store_true",
        help="churn mode: interleave snapshot/resume ops into every "
             "trial and byte-compare each persistence round-trip "
             "(exclusive with --batch)",
    )
    adiff.add_argument("--json", metavar="PATH",
                       help="export the campaign report as JSON")

    soak = sub.add_parser(
        "service-soak",
        help="long-lived admission service soak (EXP-X4): churn "
             "workload, kill-and-resume determinism, two-switch "
             "intent-lock fabric under control-frame loss",
    )
    soak.add_argument(
        "--duration-ns", type=int, default=120_000_000,
        help="soak horizon in simulated nanoseconds "
             "(default 120000000 = 120 ms)",
    )
    soak.add_argument("--seed", type=int, default=2004)
    soak.add_argument(
        "--loss", type=float, default=0.2,
        help="control-frame (intent/gossip/signalling) loss rate on the "
             "fabric's inter-switch wire (default 0.2)",
    )
    soak.add_argument(
        "--kill-at", type=int, default=None, metavar="NS",
        help="simulated instant to kill the victim run and resume from "
             "its latest checkpoint (default: half the horizon)",
    )
    soak.add_argument(
        "--checkpoint-every-ns", type=int, default=10_000_000,
        help="checkpoint period (default 10000000 = 10 ms)",
    )
    soak.add_argument("--json", metavar="PATH",
                      help="export the soak report as JSON")
    soak.add_argument(
        "--telemetry-out", metavar="DIR", default=None,
        help="write the soak report plus a schema-checked "
             "anomalies.jsonl into DIR",
    )

    return parser


def _export(args, x_label, x_values, series, metadata):
    if getattr(args, "csv", None):
        path = write_csv(args.csv, x_label, x_values, series)
        print(f"wrote {path}")
    if getattr(args, "json", None):
        path = write_json(
            args.json, x_label, x_values, series, metadata
        )
        print(f"wrote {path}")


def _telemetry_for(args, **config_kwargs):
    """Build a Telemetry bundle when ``--telemetry-out`` was given."""
    out = getattr(args, "telemetry_out", None)
    if out is None:
        return None
    from .obs import Telemetry, TelemetryConfig

    return Telemetry(TelemetryConfig(**config_kwargs))


def _write_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    written = telemetry.write(args.telemetry_out)
    for path in written.values():
        print(f"wrote {path}")


def _cmd_fig18_5(args) -> int:
    from .experiments.fig18_5 import Fig185Config, run_fig18_5

    # no simulator in the analytic sweep -> no probes to schedule
    telemetry = _telemetry_for(args, probe_cadence_ns=None)
    result = run_fig18_5(
        Fig185Config(
            trials=args.trials, seed=args.seed, workers=args.workers
        ),
        telemetry=telemetry,
    )
    _write_telemetry(telemetry, args)
    print(result.to_table())
    print(f"\nADPS/SDPS advantage at saturation: "
          f"{result.adps_advantage:.2f}x")
    series = {
        curve.scheme: curve.means for curve in result.curve.curves
    }
    _export(
        args, "requested", list(result.curve.requested), series,
        {"trials": args.trials, "seed": args.seed,
         "experiment": "fig18_5"},
    )
    return 0


def _cmd_validate(args) -> int:
    from .core.partitioning import AsymmetricDPS, SymmetricDPS
    from .experiments.validation import run_validation

    scheme = SymmetricDPS() if args.scheme == "sdps" else AsymmetricDPS()
    if args.trials > 1 and getattr(args, "telemetry_out", None):
        print(
            "repro validate: --telemetry-out needs a single run "
            "(--trials 1); per-worker simulator bundles cannot be "
            "merged into one timeline", file=sys.stderr,
        )
        return 2
    run_kwargs = dict(
        n_masters=args.masters,
        n_slaves=args.slaves,
        n_requests=args.requests,
        hyperperiods=args.hyperperiods,
        dps=scheme,
        use_wire_handshake=False,
    )
    if args.trials > 1:
        from .experiments.validation import run_validation_sweep

        reports = run_validation_sweep(
            args.trials, args.workers, seed=args.seed, **run_kwargs
        )
        for trial, trial_report in enumerate(reports):
            print(f"trial {trial}: {trial_report.summary()}")
        holding = sum(1 for r in reports if r.holds)
        print(f"{holding}/{len(reports)} trials hold")
        report_ok = holding == len(reports)
    else:
        telemetry = _telemetry_for(args, profile=args.profile)
        report = run_validation(
            seed=args.seed, telemetry=telemetry, **run_kwargs
        )
        _write_telemetry(telemetry, args)
        print(report.summary())
        report_ok = report.holds
    if args.decompose:
        from .experiments.validation import run_decomposition

        rows = run_decomposition(
            n_masters=args.masters,
            n_slaves=args.slaves,
            n_requests=args.requests,
            dps=scheme,
            seed=args.seed,
        )
        table = [
            [r.channel_id, r.uplink_budget_slots,
             round(r.uplink_worst_slots, 1), r.total_budget_slots,
             round(r.total_worst_slots, 1)]
            for r in sorted(
                rows,
                key=lambda r: -(r.uplink_worst_slots / r.uplink_budget_slots),
            )
        ]
        print()
        print(format_table(
            ["channel", "d_iu budget", "uplink worst", "d budget",
             "e2e worst"],
            table,
            title="per-hop delay decomposition (slots, worst first)",
        ))
    return 0 if report_ok else 1


def _cmd_audit(args) -> int:
    from .analysis.audit import system_summary
    from .core.admission import AdmissionController, SystemState
    from .core.channel import ChannelSpec
    from .core.partitioning import AsymmetricDPS, SymmetricDPS
    from .sim.rng import RngRegistry
    from .traffic.patterns import (
        master_slave_names,
        master_slave_requests,
    )
    from .traffic.spec import FixedSpecSampler

    masters, slaves = master_slave_names(args.masters, args.slaves)
    scheme = SymmetricDPS() if args.scheme == "sdps" else AsymmetricDPS()
    controller = AdmissionController(
        SystemState(masters + slaves), scheme
    )
    spec = ChannelSpec(period=100, capacity=3, deadline=40)
    rng = RngRegistry(args.seed).stream("audit-requests")
    for request in master_slave_requests(
        masters, slaves, args.requests, FixedSpecSampler(spec), rng
    ):
        controller.request(request.source, request.destination, request.spec)
    print(system_summary(controller, reference=spec))
    return 0


def _cmd_coexist(args) -> int:
    from .experiments.coexistence import run_coexistence

    report = run_coexistence(
        n_masters=args.masters,
        n_slaves=args.slaves,
        n_requests=args.requests,
        messages=args.messages,
        seed=args.seed,
    )
    print(report.summary())
    return 0 if report.rt_unharmed else 1


def _cmd_perf(args) -> int:
    from .experiments.perf import feasibility_cost_sweep

    points = feasibility_cost_sweep(
        sizes=tuple(args.sizes),
        heterogeneous=not args.homogeneous,
        seed=args.seed,
    )
    rows = [
        [p.n_tasks, p.fast_points_checked, p.naive_points_checked,
         "yes" if p.feasible else "no"]
        for p in points
    ]
    print(format_table(
        ["tasks", "control points", "naive instants", "feasible"],
        rows,
        title="EXP-P1 -- feasibility-test work",
    ))
    return 0


def _cmd_ablation(args) -> int:
    from .experiments.ablations import (
        capacity_sweep,
        deadline_sweep,
        master_ratio_sweep,
        symmetric_traffic_curve,
    )

    if args.axis == "symmetric":
        curve = symmetric_traffic_curve(
            trials=args.trials, seed=args.seed, workers=args.workers
        )
        print(curve.to_table("EXP-A2 -- uniform all-to-all traffic"))
        series = {c.scheme: c.means for c in curve.curves}
        _export(args, "requested", list(curve.requested), series,
                {"experiment": "ablation-symmetric"})
        return 0
    sweep = {
        "deadline": deadline_sweep,
        "capacity": capacity_sweep,
        "masters": master_ratio_sweep,
    }[args.axis]
    points = sweep(trials=args.trials, seed=args.seed, workers=args.workers)
    rows = [
        [p.value, round(p.sdps_mean, 1), round(p.adps_mean, 1),
         round(p.advantage, 2)]
        for p in points
    ]
    print(format_table(
        [args.axis, "sdps", "adps", "adps/sdps"], rows,
        title=f"ablation sweep over {args.axis}",
    ))
    _export(
        args, args.axis, [p.value for p in points],
        {"sdps": [p.sdps_mean for p in points],
         "adps": [p.adps_mean for p in points]},
        {"experiment": f"ablation-{args.axis}"},
    )
    return 0


def _cmd_dps(args) -> int:
    from .experiments.dps_comparison import run_dps_comparison

    curve = run_dps_comparison(
        trials=args.trials, seed=args.seed, workers=args.workers
    )
    print(curve.to_table("EXP-D1 -- DPS design space"))
    series = {c.scheme: c.means for c in curve.curves}
    _export(args, "requested", list(curve.requested), series,
            {"experiment": "dps-comparison"})
    return 0


def _cmd_multiswitch(args) -> int:
    from .experiments.multiswitch_exp import run_multiswitch_comparison

    points = run_multiswitch_comparison(
        n_switches=args.switches, trials=args.trials, seed=args.seed,
        workers=args.workers,
    )
    rows = [
        [p.requested, round(p.symmetric_mean, 1),
         round(p.proportional_mean, 1), round(p.advantage, 2)]
        for p in points
    ]
    print(format_table(
        ["requested", "k-way SDPS", "k-way ADPS", "ratio"], rows,
        title=f"EXP-X1 -- {args.switches}-switch chain",
    ))
    _export(
        args, "requested", [p.requested for p in points],
        {"sym": [p.symmetric_mean for p in points],
         "prop": [p.proportional_mean for p in points]},
        {"experiment": "multiswitch", "switches": args.switches},
    )
    return 0


def _cmd_fabric_sweep(args) -> int:
    from .errors import ConfigurationError
    from .experiments.fabric_sweep import FabricSweepConfig, run_fabric_sweep

    try:
        result = _run_fabric_sweep_checked(args, FabricSweepConfig,
                                           run_fabric_sweep)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        [p.requested, round(p.symmetric_mean, 1),
         round(p.proportional_mean, 1), round(p.advantage, 2)]
        for p in result.points
    ]
    print(format_table(
        ["requested", "msym", "mprop", "ratio"], rows,
        title=(
            f"EXP-X3 -- {result.topology}: {result.n_nodes} nodes / "
            f"{result.n_switches} switches / max {result.max_hops} hops"
        ),
    ))
    _export(
        args, "requested", [p.requested for p in result.points],
        {"msym": [p.symmetric_mean for p in result.points],
         "mprop": [p.proportional_mean for p in result.points]},
        {"experiment": "fabric_sweep", "topology": result.topology,
         "nodes": result.n_nodes, "switches": result.n_switches,
         "max_hops": result.max_hops, "trials": args.trials,
         "seed": args.seed, "routing_seed": args.routing_seed},
    )
    if args.cross_check:
        for scheme, check in zip(sorted(("msym", "mprop")),
                                 result.cross_checks):
            status = "clean" if check.ok else "DISAGREEMENTS"
            print(
                f"cross-check [{scheme}]: {check.links_checked} links, "
                f"{check.capped} horizon-capped -- {status}"
            )
            for line in check.disagreements:
                print(f"  {line}")
        if not result.cross_check_ok:
            return 1
    return 0


def _run_fabric_sweep_checked(args, FabricSweepConfig, run_fabric_sweep):
    return run_fabric_sweep(FabricSweepConfig(
        topology=args.topology,
        hosts_per_edge=args.hosts_per_edge,
        requests=args.requests,
        checkpoints=args.checkpoints,
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        routing_seed=args.routing_seed,
        cross_check=args.cross_check,
    ))


def _cmd_robustness(args) -> int:
    from .experiments.robustness import (
        run_loss_robustness,
        run_phase_robustness,
        run_signal_loss_robustness,
    )

    if args.mode == "signal" or args.signal_loss is not None:
        rate = 0.2 if args.signal_loss is None else args.signal_loss
        telemetry = _telemetry_for(args)
        report = run_signal_loss_robustness(
            loss_rate=rate,
            n_requests=args.requests,
            seed=args.seed,
            telemetry=telemetry,
        )
        _write_telemetry(telemetry, args)
        print(report.summary())
        return 0 if report.ok else 1
    if args.mode is None:
        print(
            "repro robustness: pass a mode (phase|loss|signal) or "
            "--signal-loss RATE", file=sys.stderr,
        )
        return 2
    if args.mode == "phase":
        report = run_phase_robustness(seed=args.seed)
        print(
            f"phase robustness: {report.channels_admitted} channels, "
            f"misses sync={report.synchronous_misses} "
            f"random={report.random_misses}; worst delay "
            f"{report.synchronous_worst_delay_ns} ns (sync) vs "
            f"{report.random_worst_delay_ns} ns (random)"
        )
        return 0 if (report.holds and report.critical_instant_is_worst) else 1
    report = run_loss_robustness(loss_rate=args.loss_rate, seed=args.seed)
    print(
        f"loss robustness at {report.loss_rate:.1%}: "
        f"{report.frames_delivered}/{report.frames_sent} frames delivered "
        f"({report.delivery_ratio:.1%}), "
        f"{report.messages_completed}/{report.messages_expected} messages "
        f"complete, late frames: {report.deadline_misses}"
    )
    return 0 if report.timeliness_preserved else 1


def _cmd_oracle(args) -> int:
    from .oracle.differential import DEFAULT_MAX_HORIZON
    from .oracle.fuzz import run_campaign

    report = run_campaign(
        trials=args.trials,
        seed=args.seed,
        families=tuple(args.families) if args.families else FAMILIES,
        check_naive=not args.skip_naive,
        max_horizon=args.max_horizon or DEFAULT_MAX_HORIZON,
    )
    print(report.summary())
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_json_dict(), indent=2))
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_bench_admission(args) -> int:
    from .experiments.admission_perf import (
        AdmissionPerfConfig,
        run_admission_perf,
        run_batch_perf,
    )

    if args.smoke:
        config = AdmissionPerfConfig(
            requests=min(args.requests, 60),
            trials=min(args.trials, 2),
            seed=args.seed,
            scheme=args.scheme,
            repeats=1,
            collect_metrics=args.metrics,
        )
    else:
        config = AdmissionPerfConfig(
            requests=args.requests,
            trials=args.trials,
            seed=args.seed,
            scheme=args.scheme,
            repeats=args.repeats,
            collect_metrics=args.metrics,
        )
    if args.batch:
        result = run_batch_perf(config)
        ok = result.batch_parity and result.storm_parity
    else:
        result = run_admission_perf(config)
        ok = result.parity
    print(result.summary())
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(result.to_json_dict(), indent=2))
        print(f"wrote {path}")
    return 0 if ok else 1


def _cmd_admission_diff(args) -> int:
    from .oracle.admission_diff import run_admission_campaign

    report = run_admission_campaign(
        args.trials, args.seed, ops_per_trial=args.ops,
        batch=getattr(args, "batch", False),
        churn=getattr(args, "churn", False),
    )
    print(report.summary())
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_json_dict(), indent=2))
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_service_soak(args) -> int:
    import json
    from pathlib import Path

    from .experiments.service_soak import run_service_soak

    result = run_service_soak(
        args.duration_ns,
        args.seed,
        loss=args.loss,
        kill_at_ns=args.kill_at,
        checkpoint_every_ns=args.checkpoint_every_ns,
    )
    print(result.summary())
    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(result.to_json_dict(), indent=2))
        print(f"wrote {path}")
    if args.telemetry_out:
        from .obs.schema import ANOMALY_SCHEMA, validate

        out = Path(args.telemetry_out)
        out.mkdir(parents=True, exist_ok=True)
        report_path = out / "service_soak.json"
        report_path.write_text(
            json.dumps(result.to_json_dict(), indent=2)
        )
        lines = []
        for anomaly in result.anomalies:
            errors = validate(anomaly, ANOMALY_SCHEMA)
            if errors:
                print(f"telemetry schema violation: {errors}")
                return 1
            lines.append(json.dumps(anomaly, sort_keys=True))
        anomalies_path = out / "anomalies.jsonl"
        anomalies_path.write_text(
            "".join(line + "\n" for line in lines)
        )
        print(f"wrote {report_path} and {anomalies_path}")
    return 0 if result.ok else 1


def _cmd_netcalc_diff(args) -> int:
    from .oracle.netcalc import TOPOLOGIES, run_netcalc_campaign

    report = run_netcalc_campaign(
        args.trials,
        args.seed,
        tuple(args.topologies) if args.topologies else TOPOLOGIES,
    )
    print(report.summary())
    if args.json:
        import json
        from pathlib import Path

        path = Path(args.json)
        path.write_text(json.dumps(report.to_json_dict(), indent=2))
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_netcalc_bounds(args) -> int:
    from .experiments.netcalc_bounds import (
        DEFAULT_CHECKPOINTS,
        netcalc_bound_rows,
        render_bounds_csv,
    )

    rows = netcalc_bound_rows(
        checkpoints=(
            tuple(args.checkpoints) if args.checkpoints
            else DEFAULT_CHECKPOINTS
        ),
    )
    if args.csv:
        from pathlib import Path

        path = Path(args.csv)
        path.write_text(render_bounds_csv(rows))
        print(f"wrote {path} ({len(rows)} rows)")
        return 0
    table = [
        [r.scheme, r.checkpoint, r.channel_id,
         f"{r.source}->{r.destination}", str(r.bound_slots),
         r.bound_ns, r.paper_bound_ns]
        for r in rows
    ]
    print(format_table(
        ["scheme", "offered", "channel", "path", "bound (slots)",
         "bound (ns)", "paper bound (ns)"],
        table,
        title="network-calculus bounds, Fig. 18.5 workload (trial 0)",
    ))
    return 0


def _format_attribution_table(attrs) -> str:
    rows = [
        [a.trace_id, a.subject, a.status, a.total_ns, a.queue_ns,
         a.wire_ns, a.processing_ns, a.backoff_ns, a.retries,
         f"{a.coverage:.3f}"]
        for a in attrs
    ]
    return format_table(
        ["trace", "source", "status", "total ns", "queue", "wire",
         "processing", "backoff", "retries", "coverage"],
        rows,
        title="per-request latency attribution",
    )


def _cmd_obs(args) -> int:
    if args.obs_command == "check":
        from .obs import validate_bundle

        errors = validate_bundle(args.bundle)
        if errors:
            for error in errors:
                print(f"SCHEMA ERROR: {error}")
            print(f"{len(errors)} schema error(s) in {args.bundle}")
            return 1
        print(f"bundle {args.bundle} conforms to the telemetry schemas")
        return 0

    if args.obs_command == "report":
        import json
        from pathlib import Path

        from .obs import span_from_dict, summarize_requests

        bundle = Path(args.bundle)
        spans_path = bundle / "spans.jsonl"
        if not spans_path.exists():
            print(f"repro obs report: no spans.jsonl in {bundle} "
                  "(capture with 'repro spans --out DIR')",
                  file=sys.stderr)
            return 2
        spans = [
            span_from_dict(json.loads(line))
            for line in spans_path.read_text().splitlines()
            if line
        ]
        by_name: dict[str, int] = {}
        for span in spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        print(f"{len(spans)} spans in {spans_path}")
        for name in sorted(by_name):
            print(f"  {name}: {by_name[name]}")
        attrs = summarize_requests(spans)
        if attrs:
            print()
            print(_format_attribution_table(attrs))
        anomalies_path = bundle / "anomalies.jsonl"
        if anomalies_path.exists():
            by_invariant: dict[str, int] = {}
            for line in anomalies_path.read_text().splitlines():
                if line:
                    record = json.loads(line)
                    key = record.get("invariant", "?")
                    by_invariant[key] = by_invariant.get(key, 0) + 1
            total = sum(by_invariant.values())
            print(f"\n{total} anomalies")
            for name in sorted(by_invariant):
                print(f"  {name}: {by_invariant[name]}")
        dumps = sorted(bundle.glob("flight*.json"))
        for dump in dumps:
            reason = json.loads(dump.read_text()).get("reason", "?")
            print(f"flight dump {dump.name}: {reason}")
        return 0

    # capture: one fully instrumented validation run
    from .experiments.validation import run_validation
    from .obs import Telemetry, TelemetryConfig

    telemetry = Telemetry(TelemetryConfig(profile=args.profile))
    report = run_validation(
        n_masters=args.masters,
        n_slaves=args.slaves,
        n_requests=args.requests,
        hyperperiods=args.hyperperiods,
        seed=args.seed,
        use_wire_handshake=True,
        telemetry=telemetry,
    )
    written = telemetry.write(args.out)
    print(report.summary())
    for path in written.values():
        print(f"wrote {path}")
    print(
        "open trace.chrome.json at https://ui.perfetto.dev "
        "(or chrome://tracing) to browse the timeline"
    )
    return 0


def _cmd_spans(args) -> int:
    from .obs import Telemetry, TelemetryConfig, summarize_requests

    telemetry = Telemetry(TelemetryConfig(
        spans=True,
        monitor=True,
        measure_compute=True,
        flight_dir=args.out,
    ))
    if args.signal_loss is not None:
        from .experiments.robustness import run_signal_loss_robustness

        report = run_signal_loss_robustness(
            loss_rate=args.signal_loss,
            n_requests=args.requests,
            seed=args.seed,
            telemetry=telemetry,
        )
        print(report.summary())
    else:
        from .experiments.validation import run_validation

        report = run_validation(
            n_masters=args.masters,
            n_slaves=args.slaves,
            n_requests=args.requests,
            hyperperiods=args.hyperperiods,
            seed=args.seed,
            use_wire_handshake=True,
            telemetry=telemetry,
        )
        print(report.summary())
    attrs = summarize_requests(telemetry.spans)
    if args.summary and attrs:
        print()
        print(_format_attribution_table(attrs))
    anomalies = 0 if telemetry.monitor is None else len(
        telemetry.monitor.anomalies
    )
    worst = min((a.coverage for a in attrs), default=1.0)
    compute = sum(a.admission_compute_ns for a in attrs)
    print(
        f"\n{len(telemetry.spans)} spans, {len(attrs)} requests "
        f"attributed, worst coverage {worst:.3f}, admission compute "
        f"{compute} ns, {anomalies} anomalies"
    )
    if args.out:
        written = telemetry.write(args.out)
        for path in written.values():
            print(f"wrote {path}")
    if worst < args.min_coverage:
        print(
            f"ATTRIBUTION GAP: worst coverage {worst:.3f} < "
            f"--min-coverage {args.min_coverage}", file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_report(args) -> int:
    import json
    from pathlib import Path

    from .obs import BENCH_SCHEMA, validate

    directory = Path(args.dir)
    paths = sorted(directory.glob("BENCH_*.json"))
    if not paths:
        print(f"repro bench-report: no BENCH_*.json in {directory}",
              file=sys.stderr)
        return 2
    baseline: dict[str, dict] = {}
    if args.baseline:
        for path in sorted(Path(args.baseline).glob("BENCH_*.json")):
            record = json.loads(path.read_text())
            baseline[record.get("name", path.stem)] = record
    errors = 0
    rows = []
    for path in paths:
        record = json.loads(path.read_text())
        for error in validate(record, BENCH_SCHEMA, str(path.name)):
            print(f"SCHEMA ERROR: {error}")
            errors += 1
        name = record.get("name", path.stem)
        wall = record.get("wall_s", 0.0)
        row = [
            name,
            len(record.get("tests", [])),
            f"{wall:.3f}",
            ("-" if record.get("throughput") is None
             else f"{record['throughput']:.0f}"),
            ("-" if record.get("overhead_pct") is None
             else f"{record['overhead_pct']:.1f}%"),
        ]
        if baseline:
            base = baseline.get(name)
            if base is None or not base.get("wall_s"):
                row.append("-")
            else:
                row.append(f"{wall / base['wall_s']:.2f}x")
        rows.append(row)
    headers = ["bench", "tests", "wall s", "throughput", "overhead"]
    if baseline:
        headers.append("vs baseline")
    print(format_table(headers, rows, title="benchmark artifacts"))
    return 1 if errors else 0


_COMMANDS = {
    "fig18-5": _cmd_fig18_5,
    "validate": _cmd_validate,
    "audit": _cmd_audit,
    "coexist": _cmd_coexist,
    "perf": _cmd_perf,
    "ablation": _cmd_ablation,
    "dps": _cmd_dps,
    "multiswitch": _cmd_multiswitch,
    "fabric-sweep": _cmd_fabric_sweep,
    "robustness": _cmd_robustness,
    "oracle": _cmd_oracle,
    "bench-admission": _cmd_bench_admission,
    "admission-diff": _cmd_admission_diff,
    "service-soak": _cmd_service_soak,
    "netcalc-diff": _cmd_netcalc_diff,
    "netcalc-bounds": _cmd_netcalc_bounds,
    "obs": _cmd_obs,
    "spans": _cmd_spans,
    "bench-report": _cmd_bench_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
