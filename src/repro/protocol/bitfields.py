"""MSB-first bit packing and unpacking.

The signalling frames of Figures 18.3/18.4 use field widths that are not
byte-aligned (a 1-bit response flag, a 16-bit channel ID next to 48-bit
MAC addresses), so the codecs need sub-byte precision. These two small
classes provide it:

* :class:`BitPacker` appends unsigned integer fields most-significant-
  bit first and renders the result as bytes, padding the final partial
  byte with zero bits (the padding is on the wire but carries no
  information).
* :class:`BitUnpacker` reads fields back in the same order and can
  verify that any trailing padding is all-zero.

Both validate widths and ranges eagerly: a value that does not fit its
declared width raises :class:`~repro.errors.FieldRangeError` instead of
being silently truncated -- the paper's field widths are protocol
invariants, not suggestions.
"""

from __future__ import annotations

from ..errors import CodecError, FieldRangeError

__all__ = ["BitPacker", "BitUnpacker"]


class BitPacker:
    """Accumulate unsigned fields MSB-first and serialize to bytes."""

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def put(self, value: int, width: int) -> "BitPacker":
        """Append ``value`` as a ``width``-bit big-endian field.

        Returns ``self`` so calls can be chained.
        """
        if width <= 0:
            raise FieldRangeError(f"field width must be positive, got {width}")
        if not isinstance(value, int):
            raise FieldRangeError(
                f"field value must be an int, got {type(value).__name__}"
            )
        if value < 0 or value >= (1 << width):
            raise FieldRangeError(
                f"value {value} does not fit in {width} bits "
                f"(range 0..{(1 << width) - 1})"
            )
        self._value = (self._value << width) | value
        self._bits += width
        return self

    @property
    def bit_length(self) -> int:
        """Total number of bits appended so far."""
        return self._bits

    def to_bytes(self) -> bytes:
        """Render as bytes, zero-padding the last partial byte on the right."""
        if self._bits == 0:
            return b""
        pad = (-self._bits) % 8
        return (self._value << pad).to_bytes((self._bits + pad) // 8, "big")


class BitUnpacker:
    """Read MSB-first unsigned fields out of a byte string."""

    def __init__(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise CodecError(
                f"BitUnpacker needs bytes, got {type(data).__name__}"
            )
        self._data = bytes(data)
        self._value = int.from_bytes(self._data, "big") if self._data else 0
        self._total_bits = 8 * len(self._data)
        self._consumed = 0

    def take(self, width: int) -> int:
        """Read the next ``width``-bit field.

        Raises :class:`~repro.errors.CodecError` when the input is too
        short -- a truncated frame must never decode successfully.
        """
        if width <= 0:
            raise FieldRangeError(f"field width must be positive, got {width}")
        if self._consumed + width > self._total_bits:
            raise CodecError(
                f"frame truncated: wanted {width} more bits but only "
                f"{self._total_bits - self._consumed} remain"
            )
        shift = self._total_bits - self._consumed - width
        self._consumed += width
        return (self._value >> shift) & ((1 << width) - 1)

    @property
    def remaining_bits(self) -> int:
        return self._total_bits - self._consumed

    def expect_zero_padding(self) -> None:
        """Assert that all unread bits are zero (trailing pad check)."""
        if self.remaining_bits == 0:
            return
        tail = self._value & ((1 << self.remaining_bits) - 1)
        if tail != 0:
            raise CodecError(
                f"nonzero trailing padding ({self.remaining_bits} bits, "
                f"value {tail:#x}); frame is corrupt or misframed"
            )
