"""Wire-format layer: frame codecs and RT header mangling.

This subpackage implements the paper's on-the-wire artifacts:

* :mod:`~repro.protocol.bitfields` -- MSB-first bit packing primitives.
* :mod:`~repro.protocol.frames` -- the RequestFrame and ResponseFrame of
  Figures 18.3/18.4, bit-exact field widths.
* :mod:`~repro.protocol.headers` -- the RT layer's repurposing of the IP
  source/destination address fields for the 48-bit absolute deadline and
  the 16-bit channel ID (Section 18.2.2, ToS = 255 convention).
* :mod:`~repro.protocol.ethernet` -- the logical Ethernet frame model the
  simulator transports, with exact wire-size accounting.
* :mod:`~repro.protocol.signaling` -- per-role state machines for the
  channel-establishment handshake.
"""

from .bitfields import BitPacker, BitUnpacker
from .frames import (
    FrameType,
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
    REQUEST_FRAME_BYTES,
    RESPONSE_FRAME_BYTES,
)
from .headers import (
    RT_TOS,
    RTHeader,
    decode_rt_header,
    encode_rt_header,
    MAX_ABSOLUTE_DEADLINE,
    MAX_CHANNEL_ID,
)
from .ethernet import EthernetFrame, FrameKind, reset_frame_ids
from .signaling import (
    ConnectionRequestState,
    DestinationPolicy,
    PendingRequest,
    SourceSignaling,
    accept_all,
    destination_response,
)

__all__ = [
    "BitPacker",
    "BitUnpacker",
    "FrameType",
    "RequestFrame",
    "ResponseFrame",
    "TeardownFrame",
    "decode_signaling",
    "REQUEST_FRAME_BYTES",
    "RESPONSE_FRAME_BYTES",
    "RT_TOS",
    "RTHeader",
    "decode_rt_header",
    "encode_rt_header",
    "MAX_ABSOLUTE_DEADLINE",
    "MAX_CHANNEL_ID",
    "EthernetFrame",
    "FrameKind",
    "reset_frame_ids",
    "ConnectionRequestState",
    "DestinationPolicy",
    "PendingRequest",
    "SourceSignaling",
    "accept_all",
    "destination_response",
]
