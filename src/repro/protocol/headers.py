"""RT datagram header mangling (Section 18.2.2).

The RT layer in an end node rewrites the IP header of every outgoing
real-time datagram before handing it to the Ethernet layers:

* the **IP source address** (32 bits) and the **16 most significant
  bits of the IP destination address** together carry the frame's
  48-bit **absolute deadline**;
* the **16 least significant bits of the IP destination address** carry
  the **RT channel ID**;
* the **Type of Service** field is set to **255**, marking the datagram
  as real-time (other ToS values are reserved for future services).

The switch's RT layer recognizes RT datagrams by ToS = 255, reads the
absolute deadline straight out of the address fields for its EDF queue,
and uses the channel ID to route the frame to the destination recorded
at establishment time (the real destination address is no longer in the
header -- the channel *is* the addressing).

This module provides the pure encode/decode functions plus a validated
:class:`RTHeader` view. Deadlines are in simulator time units; 48 bits
of nanoseconds covers ~3.26 days of absolute time, which bounds how long
one simulation may run -- the codec refuses larger values rather than
wrapping silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CodecError, FieldRangeError

__all__ = [
    "RT_TOS",
    "MAX_ABSOLUTE_DEADLINE",
    "MAX_CHANNEL_ID",
    "RTHeader",
    "encode_rt_header",
    "decode_rt_header",
]

#: The Type-of-Service value that marks a datagram as real-time.
RT_TOS = 255

#: Largest encodable absolute deadline (48 bits).
MAX_ABSOLUTE_DEADLINE = (1 << 48) - 1

#: Largest encodable RT channel ID (16 bits).
MAX_CHANNEL_ID = (1 << 16) - 1


@dataclass(frozen=True, slots=True)
class RTHeader:
    """The three IP header fields the RT layer owns, as one value.

    Attributes
    ----------
    ip_source:
        The 32-bit IP source address field (upper 32 bits of the
        absolute deadline).
    ip_destination:
        The 32-bit IP destination address field (lower 16 bits of the
        deadline, then the 16-bit channel ID).
    tos:
        The Type-of-Service byte; 255 for every RT datagram.
    """

    ip_source: int
    ip_destination: int
    tos: int = RT_TOS

    def __post_init__(self) -> None:
        for name, value in (
            ("ip_source", self.ip_source),
            ("ip_destination", self.ip_destination),
        ):
            if not isinstance(value, int) or value < 0 or value >= (1 << 32):
                raise FieldRangeError(
                    f"{name} must fit in 32 bits, got {value!r}"
                )
        if not isinstance(self.tos, int) or self.tos < 0 or self.tos > 255:
            raise FieldRangeError(f"tos must be one byte, got {self.tos!r}")

    @property
    def is_realtime(self) -> bool:
        """True when the ToS marks this as an RT datagram."""
        return self.tos == RT_TOS

    @property
    def absolute_deadline(self) -> int:
        """The 48-bit absolute deadline (RT datagrams only)."""
        if not self.is_realtime:
            raise CodecError(
                f"header with ToS {self.tos} is not an RT datagram; its "
                "address fields are real addresses, not a deadline"
            )
        return (self.ip_source << 16) | (self.ip_destination >> 16)

    @property
    def channel_id(self) -> int:
        """The 16-bit RT channel ID (RT datagrams only)."""
        if not self.is_realtime:
            raise CodecError(
                f"header with ToS {self.tos} is not an RT datagram"
            )
        return self.ip_destination & 0xFFFF


def encode_rt_header(absolute_deadline: int, channel_id: int) -> RTHeader:
    """Build the mangled IP header for an outgoing RT frame.

    Splits the 48-bit ``absolute_deadline`` across the IP source address
    (upper 32 bits) and the top half of the IP destination address
    (lower 16 bits), and stores ``channel_id`` in the bottom half of the
    destination address, exactly as Section 18.2.2 prescribes.
    """
    if not isinstance(absolute_deadline, int) or absolute_deadline < 0:
        raise FieldRangeError(
            f"absolute deadline must be a non-negative int, got "
            f"{absolute_deadline!r}"
        )
    if absolute_deadline > MAX_ABSOLUTE_DEADLINE:
        raise FieldRangeError(
            f"absolute deadline {absolute_deadline} exceeds the 48-bit "
            f"encoding limit {MAX_ABSOLUTE_DEADLINE}; the simulation clock "
            "has outrun the header format"
        )
    if (
        not isinstance(channel_id, int)
        or channel_id < 0
        or channel_id > MAX_CHANNEL_ID
    ):
        raise FieldRangeError(
            f"channel ID {channel_id!r} does not fit in 16 bits"
        )
    ip_source = absolute_deadline >> 16
    ip_destination = ((absolute_deadline & 0xFFFF) << 16) | channel_id
    return RTHeader(ip_source=ip_source, ip_destination=ip_destination)


def decode_rt_header(header: RTHeader) -> tuple[int, int]:
    """Extract ``(absolute_deadline, channel_id)`` from an RT header.

    Raises :class:`~repro.errors.CodecError` for non-RT headers (ToS
    other than 255) -- the switch must never EDF-schedule a best-effort
    datagram by misreading its real addresses as a deadline.
    """
    return header.absolute_deadline, header.channel_id
