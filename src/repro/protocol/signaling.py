"""Channel-establishment signalling state machines (Section 18.2.2).

The establishment handshake involves three roles:

1. the **source** node sends a RequestFrame to the switch and waits for
   a ResponseFrame matching its connection-request ID;
2. the **switch** runs admission control; on failure it answers the
   source directly with a negative ResponseFrame, on success it stamps
   the network-unique RT channel ID into the request and forwards it to
   the destination (the switch side lives in
   :mod:`repro.core.channel_manager` because it needs the admission
   controller);
3. the **destination** node answers the offered channel with a
   ResponseFrame (accept or decline).

This module provides the two end-node state machines as pure, simulator-
agnostic objects: the network layer feeds them decoded frames and they
return what to send next. Keeping them pure makes the protocol's corner
cases (duplicate responses, unknown request IDs, request-ID exhaustion)
unit-testable without any event loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..errors import ProtocolError
from .frames import RequestFrame, ResponseFrame

__all__ = [
    "ConnectionRequestState",
    "PendingRequest",
    "SourceSignaling",
    "DestinationPolicy",
    "accept_all",
]


class ConnectionRequestState(enum.Enum):
    """Lifecycle of one outstanding connection request at the source."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    #: The source gave up waiting (lost request or lost response). A
    #: response arriving after the timeout is surfaced so the caller can
    #: release the switch's orphaned reservation.
    TIMED_OUT = "timed-out"


@dataclass(slots=True)
class PendingRequest:
    """Bookkeeping for one in-flight connection request at the source."""

    connect_request_id: int
    destination: str
    period: int
    capacity: int
    deadline: int
    state: ConnectionRequestState = ConnectionRequestState.PENDING
    rt_channel_id: int = -1


class SourceSignaling:
    """Source-node half of the establishment handshake.

    The 8-bit *connection request ID* field exists so a node can tell
    apart responses to several concurrent requests (Section 18.2.2);
    this class allocates those IDs, refuses to exceed 256 concurrent
    outstanding requests (the field cannot express more), and pairs each
    ResponseFrame with its request.

    Parameters
    ----------
    node_mac:
        This node's 48-bit MAC address, placed in the source MAC field.
    switch_mac:
        The switch's MAC address (destination of every RequestFrame).
    node_ip:
        This node's 32-bit IP address.
    """

    MAX_OUTSTANDING = 256  # 8-bit connection request ID space

    def __init__(self, node_mac: int, switch_mac: int, node_ip: int) -> None:
        self._node_mac = node_mac
        self._switch_mac = switch_mac
        self._node_ip = node_ip
        self._pending: dict[int, PendingRequest] = {}
        #: requests that timed out locally; a late response must still be
        #: recognizable so the orphaned switch reservation can be freed.
        self._timed_out: dict[int, PendingRequest] = {}
        self._next_hint = 0
        self.completed: list[PendingRequest] = []

    @property
    def outstanding(self) -> int:
        """Number of requests still awaiting a response."""
        return len(self._pending)

    def _allocate_request_id(self) -> int:
        # Timed-out IDs stay reserved until their late response arrives
        # (or forever, if it was truly lost) -- reusing one would pair a
        # new request with a stale response.
        in_use = len(self._pending) + len(self._timed_out)
        if in_use >= self.MAX_OUTSTANDING:
            raise ProtocolError(
                "all 256 connection-request IDs are outstanding; wait for "
                "responses before issuing more requests"
            )
        for offset in range(self.MAX_OUTSTANDING):
            candidate = (self._next_hint + offset) % self.MAX_OUTSTANDING
            if candidate not in self._pending and candidate not in self._timed_out:
                self._next_hint = (candidate + 1) % self.MAX_OUTSTANDING
                return candidate
        raise ProtocolError("request ID space exhausted")  # pragma: no cover

    def build_request(
        self,
        destination: str,
        destination_mac: int,
        destination_ip: int,
        period: int,
        capacity: int,
        deadline: int,
    ) -> RequestFrame:
        """Create and register a RequestFrame for a new RT channel.

        The *RT channel ID* field is sent as 0 -- "not set with a valid
        value yet" per the paper; the switch assigns the real ID.
        """
        request_id = self._allocate_request_id()
        self._pending[request_id] = PendingRequest(
            connect_request_id=request_id,
            destination=destination,
            period=period,
            capacity=capacity,
            deadline=deadline,
        )
        return RequestFrame(
            connect_request_id=request_id,
            rt_channel_id=0,
            source_mac=self._node_mac,
            destination_mac=destination_mac,
            source_ip=self._node_ip,
            destination_ip=destination_ip,
            period=period,
            capacity=capacity,
            deadline=deadline,
        )

    def handle_response(self, response: ResponseFrame) -> PendingRequest:
        """Consume the switch's final ResponseFrame for one request.

        Returns the completed request record (state ``ACCEPTED`` with the
        assigned channel ID, or ``REJECTED``). Raises
        :class:`~repro.errors.ProtocolError` for responses that match no
        outstanding request -- duplicates and strays must be surfaced,
        not silently absorbed, because in a real deployment they indicate
        switch or network misbehaviour.
        """
        stale = self._timed_out.pop(response.connect_request_id, None)
        if stale is not None:
            # Late response for a locally abandoned request. Record the
            # channel ID so the caller can tear down the orphaned switch
            # reservation; the state stays TIMED_OUT.
            if response.ok:
                stale.rt_channel_id = response.rt_channel_id
            return stale
        request = self._pending.pop(response.connect_request_id, None)
        if request is None:
            raise ProtocolError(
                f"response for unknown connection request ID "
                f"{response.connect_request_id}"
            )
        if response.ok:
            request.state = ConnectionRequestState.ACCEPTED
            request.rt_channel_id = response.rt_channel_id
        else:
            request.state = ConnectionRequestState.REJECTED
        self.completed.append(request)
        return request

    def timeout_request(self, connect_request_id: int) -> PendingRequest:
        """Abandon a pending request that received no response in time.

        The record transitions to ``TIMED_OUT`` and the ID stays
        reserved (see :meth:`_allocate_request_id`) so a late response
        can still be matched. Raises for unknown IDs.
        """
        request = self._pending.pop(connect_request_id, None)
        if request is None:
            raise ProtocolError(
                f"cannot time out unknown connection request "
                f"{connect_request_id}"
            )
        request.state = ConnectionRequestState.TIMED_OUT
        self._timed_out[connect_request_id] = request
        self.completed.append(request)
        return request


#: Decision function a destination node applies to an offered channel:
#: given the (switch-stamped) RequestFrame, return True to accept.
DestinationPolicy = Callable[[RequestFrame], bool]


def accept_all(request: RequestFrame) -> bool:
    """The default destination policy: accept every offered channel.

    The paper's destination nodes may decline (the ResponseFrame exists
    for that purpose) but its evaluation never exercises a decline; real
    deployments would plug in resource checks here (CPU budget for the
    receiving task, buffer space, application-level authorization).
    """
    del request
    return True


def destination_response(
    request: RequestFrame, switch_mac: int, policy: DestinationPolicy
) -> ResponseFrame:
    """Build the destination node's ResponseFrame for an offered channel.

    The response's source MAC is the *switch* address per Figure 18.4 --
    the ResponseFrame format is shared by the destination->switch and
    switch->source messages, and carries the switch MAC as the stable
    addressing anchor.
    """
    if request.rt_channel_id == 0:
        raise ProtocolError(
            "offered channel carries no RT channel ID; the switch must "
            "stamp the ID before forwarding a request to the destination"
        )
    return ResponseFrame(
        connect_request_id=request.connect_request_id,
        rt_channel_id=request.rt_channel_id,
        switch_mac=switch_mac,
        ok=bool(policy(request)),
    )
