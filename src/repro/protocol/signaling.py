"""Channel-establishment signalling state machines (Section 18.2.2).

The establishment handshake involves three roles:

1. the **source** node sends a RequestFrame to the switch and waits for
   a ResponseFrame matching its connection-request ID;
2. the **switch** runs admission control; on failure it answers the
   source directly with a negative ResponseFrame, on success it stamps
   the network-unique RT channel ID into the request and forwards it to
   the destination (the switch side lives in
   :mod:`repro.core.channel_manager` because it needs the admission
   controller);
3. the **destination** node answers the offered channel with a
   ResponseFrame (accept or decline).

This module provides the two end-node state machines as pure, simulator-
agnostic objects: the network layer feeds them decoded frames and they
return what to send next. Keeping them pure makes the protocol's corner
cases (duplicate responses, unknown request IDs, request-ID exhaustion)
unit-testable without any event loop.

Loss tolerance
--------------
The paper's handshake assumes error-free wires. On lossy wires a source
must *retransmit* its RequestFrame, which means the switch can see the
same logical request twice and the source can see the same final
response twice (once for the original, once for a retransmission the
switch re-answered). :meth:`SourceSignaling.handle_response` therefore
classifies every response (:class:`ResponseKind`) instead of raising on
anything unexpected, and :class:`RetryPolicy` describes the
deterministic exponential-backoff schedule the network layer drives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, NamedTuple

from ..errors import ConfigurationError, ProtocolError
from .frames import RequestFrame, ResponseFrame

__all__ = [
    "EXPLICIT_TEARDOWN_ID",
    "ConnectionRequestState",
    "PendingRequest",
    "ResponseKind",
    "ResponseOutcome",
    "RetryPolicy",
    "SourceSignaling",
    "DestinationPolicy",
    "accept_all",
]

#: Connection-request ID reserved for *explicit* (application-driven)
#: TeardownFrames. The 8-bit field must carry something; 0 used to
#: collide with a legal request ID, so the ID allocator now never hands
#: out 0 and traces can tell an explicit teardown (ID 0) from the
#: late-response teardown path (which echoes the request's real ID).
EXPLICIT_TEARDOWN_ID = 0


class ConnectionRequestState(enum.Enum):
    """Lifecycle of one outstanding connection request at the source."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    #: The source gave up waiting (lost request or lost response). A
    #: response arriving after the timeout is surfaced so the caller can
    #: release the switch's orphaned reservation.
    TIMED_OUT = "timed-out"


@dataclass(slots=True)
class PendingRequest:
    """Bookkeeping for one in-flight connection request at the source."""

    connect_request_id: int
    destination: str
    period: int
    capacity: int
    deadline: int
    state: ConnectionRequestState = ConnectionRequestState.PENDING
    rt_channel_id: int = -1
    #: RequestFrame retransmissions performed for this request.
    retries: int = 0


class ResponseKind(enum.Enum):
    """Classification of one incoming ResponseFrame at the source."""

    #: First response for a pending request: the handshake is complete.
    COMPLETED = "completed"
    #: First response for a locally timed-out request; if positive, the
    #: switch's reservation is orphaned and must be torn down.
    LATE = "late"
    #: Repeat of a verdict already delivered (retransmitted request made
    #: the switch answer twice, or the original and re-answer both got
    #: through). Safe to absorb.
    DUPLICATE = "duplicate"
    #: Matches nothing this node knows about -- absorbed and counted,
    #: never installed.
    STALE = "stale"


class ResponseOutcome(NamedTuple):
    """What :meth:`SourceSignaling.handle_response` concluded."""

    kind: ResponseKind
    #: The matched request record (None only for ``STALE``).
    request: PendingRequest | None


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deterministic exponential backoff for RequestFrame retransmission.

    Attempt ``k`` (0-based; attempt 0 is the initial send) waits
    ``timeout_ns * backoff**k`` before retransmitting, clamped to
    ``max_timeout_ns``, with a symmetric multiplicative jitter of
    ``+/- jitter`` drawn from the caller-supplied RNG stream so
    simultaneous requesters decorrelate without losing reproducibility.

    ``max_retries`` counts *retransmissions*: a request is sent at most
    ``1 + max_retries`` times before the source gives up (TIMED_OUT).
    ``max_retries=0`` reproduces the old one-shot give-up timer.
    """

    timeout_ns: int
    max_retries: int = 0
    backoff: float = 2.0
    jitter: float = 0.0
    max_timeout_ns: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ConfigurationError(
                f"timeout_ns must be positive, got {self.timeout_ns}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1 (delays must not shrink), "
                f"got {self.backoff}"
            )
        if not (0.0 <= self.jitter < 1.0):
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.max_timeout_ns is not None and self.max_timeout_ns < self.timeout_ns:
            raise ConfigurationError(
                f"max_timeout_ns ({self.max_timeout_ns}) must be >= "
                f"timeout_ns ({self.timeout_ns})"
            )

    def delay_ns(self, attempt: int, rng=None) -> int:
        """Wait before declaring attempt ``attempt`` lost (integer ns)."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        delay = self.timeout_ns * (self.backoff ** attempt)
        if self.max_timeout_ns is not None:
            delay = min(delay, float(self.max_timeout_ns))
        if self.jitter > 0.0:
            if rng is None:
                raise ConfigurationError(
                    "a jittered RetryPolicy needs an rng stream "
                    "(retransmission must stay reproducible)"
                )
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(1, int(delay))


class SourceSignaling:
    """Source-node half of the establishment handshake.

    The 8-bit *connection request ID* field exists so a node can tell
    apart responses to several concurrent requests (Section 18.2.2);
    this class allocates those IDs, refuses to exceed 255 concurrent
    outstanding requests (ID 0 is reserved for explicit teardowns, see
    :data:`EXPLICIT_TEARDOWN_ID`), and pairs each ResponseFrame with its
    request.

    Parameters
    ----------
    node_mac:
        This node's 48-bit MAC address, placed in the source MAC field.
    switch_mac:
        The switch's MAC address (destination of every RequestFrame).
    node_ip:
        This node's 32-bit IP address.
    """

    #: 8-bit connection request ID space minus the reserved teardown ID.
    MAX_OUTSTANDING = 255
    _ID_SPACE = 256  # width of the wire field

    def __init__(self, node_mac: int, switch_mac: int, node_ip: int) -> None:
        self._node_mac = node_mac
        self._switch_mac = switch_mac
        self._node_ip = node_ip
        self._pending: dict[int, PendingRequest] = {}
        #: requests that timed out locally; a late response must still be
        #: recognizable so the orphaned switch reservation can be freed.
        self._timed_out: dict[int, PendingRequest] = {}
        #: last delivered verdict per ID, so a duplicated final response
        #: (the switch re-answers retransmitted requests) is recognized
        #: instead of treated as a protocol violation. Entries are
        #: dropped when their ID is reallocated to a fresh request.
        self._completed_recent: dict[int, PendingRequest] = {}
        #: request IDs whose channel is still *established* (rid -> RT
        #: channel ID). The switch's verdict dedup cache is keyed on
        #: (source MAC, request ID); reusing the ID of a live channel
        #: would let that cache re-answer the new request with the old
        #: channel's verdict, so live IDs stay reserved until their
        #: channel is torn down (:meth:`channel_torn_down`).
        self._live: dict[int, int] = {}
        self._next_hint = 1
        self.completed: list[PendingRequest] = []

    @property
    def outstanding(self) -> int:
        """Number of requests still awaiting a response."""
        return len(self._pending)

    def is_pending(self, connect_request_id: int) -> bool:
        """True while ``connect_request_id`` still awaits its response."""
        return connect_request_id in self._pending

    def pending_request(self, connect_request_id: int) -> PendingRequest:
        """The live record for a pending request (raises if not pending)."""
        request = self._pending.get(connect_request_id)
        if request is None:
            raise ProtocolError(
                f"connection request {connect_request_id} is not pending"
            )
        return request

    def _allocate_request_id(self) -> int:
        # Timed-out IDs stay reserved until their late response arrives
        # (or forever, if it was truly lost) -- reusing one would pair a
        # new request with a stale response. IDs of still-established
        # channels stay reserved too: the switch's verdict cache keyed
        # (source MAC, request ID) could otherwise re-answer a new
        # request with the live channel's old verdict. ID 0 is never
        # allocated (EXPLICIT_TEARDOWN_ID).
        in_use = len(self._pending) + len(self._timed_out) + len(self._live)
        if in_use >= self.MAX_OUTSTANDING:
            raise ProtocolError(
                "all 255 connection-request IDs are outstanding or bound "
                "to established channels; wait for responses or tear down "
                "channels before issuing more requests"
            )
        for offset in range(self.MAX_OUTSTANDING):
            candidate = 1 + (self._next_hint - 1 + offset) % self.MAX_OUTSTANDING
            if (
                candidate not in self._pending
                and candidate not in self._timed_out
                and candidate not in self._live
            ):
                self._next_hint = 1 + candidate % self.MAX_OUTSTANDING
                # the ID is being reused for a new logical request: a
                # duplicate of the *old* verdict must no longer match.
                self._completed_recent.pop(candidate, None)
                return candidate
        raise ProtocolError("request ID space exhausted")  # pragma: no cover

    def build_request(
        self,
        destination: str,
        destination_mac: int,
        destination_ip: int,
        period: int,
        capacity: int,
        deadline: int,
    ) -> RequestFrame:
        """Create and register a RequestFrame for a new RT channel.

        The *RT channel ID* field is sent as 0 -- "not set with a valid
        value yet" per the paper; the switch assigns the real ID.
        """
        request_id = self._allocate_request_id()
        self._pending[request_id] = PendingRequest(
            connect_request_id=request_id,
            destination=destination,
            period=period,
            capacity=capacity,
            deadline=deadline,
        )
        return RequestFrame(
            connect_request_id=request_id,
            rt_channel_id=0,
            source_mac=self._node_mac,
            destination_mac=destination_mac,
            source_ip=self._node_ip,
            destination_ip=destination_ip,
            period=period,
            capacity=capacity,
            deadline=deadline,
        )

    def handle_response(self, response: ResponseFrame) -> ResponseOutcome:
        """Classify and consume one ResponseFrame from the switch.

        Never raises for unexpected responses: on lossy wires with
        retransmission, duplicated and stale responses are *expected*
        network behaviour, so they are classified
        (:class:`ResponseKind`) for the caller to count rather than
        treated as protocol violations.
        """
        rid = response.connect_request_id
        stale = self._timed_out.pop(rid, None)
        if stale is not None:
            # Late response for a locally abandoned request. Record the
            # channel ID so the caller can tear down the orphaned switch
            # reservation; the state stays TIMED_OUT.
            if response.ok:
                stale.rt_channel_id = response.rt_channel_id
            self._completed_recent[rid] = stale
            return ResponseOutcome(ResponseKind.LATE, stale)
        request = self._pending.pop(rid, None)
        if request is None:
            last = self._completed_recent.get(rid)
            if last is not None and self._matches_verdict(last, response):
                return ResponseOutcome(ResponseKind.DUPLICATE, last)
            return ResponseOutcome(ResponseKind.STALE, None)
        if response.ok:
            request.state = ConnectionRequestState.ACCEPTED
            request.rt_channel_id = response.rt_channel_id
            self._live[rid] = response.rt_channel_id
        else:
            request.state = ConnectionRequestState.REJECTED
        self.completed.append(request)
        self._completed_recent[rid] = request
        return ResponseOutcome(ResponseKind.COMPLETED, request)

    @staticmethod
    def _matches_verdict(last: PendingRequest, response: ResponseFrame) -> bool:
        """Is ``response`` a repeat of the verdict already recorded?"""
        if response.ok:
            return last.rt_channel_id == response.rt_channel_id
        return last.state in (
            ConnectionRequestState.REJECTED,
            ConnectionRequestState.TIMED_OUT,
        )

    def channel_torn_down(self, rt_channel_id: int) -> None:
        """Release the request ID bound to a now-torn-down channel.

        Called by the network layer when this node explicitly tears a
        channel down (or learns it is gone). The ID becomes eligible
        for reallocation; its cached verdict is dropped at reallocation
        time so a straggling duplicate of the old response cannot be
        paired with a future request.
        """
        for rid, channel_id in list(self._live.items()):
            if channel_id == rt_channel_id:
                del self._live[rid]

    def timeout_request(self, connect_request_id: int) -> PendingRequest:
        """Abandon a pending request that received no response in time.

        The record transitions to ``TIMED_OUT`` and the ID stays
        reserved (see :meth:`_allocate_request_id`) so a late response
        can still be matched. Raises for unknown IDs.
        """
        request = self._pending.pop(connect_request_id, None)
        if request is None:
            raise ProtocolError(
                f"cannot time out unknown connection request "
                f"{connect_request_id}"
            )
        request.state = ConnectionRequestState.TIMED_OUT
        self._timed_out[connect_request_id] = request
        self.completed.append(request)
        return request


#: Decision function a destination node applies to an offered channel:
#: given the (switch-stamped) RequestFrame, return True to accept.
DestinationPolicy = Callable[[RequestFrame], bool]


def accept_all(request: RequestFrame) -> bool:
    """The default destination policy: accept every offered channel.

    The paper's destination nodes may decline (the ResponseFrame exists
    for that purpose) but its evaluation never exercises a decline; real
    deployments would plug in resource checks here (CPU budget for the
    receiving task, buffer space, application-level authorization).
    """
    del request
    return True


def destination_response(
    request: RequestFrame, switch_mac: int, policy: DestinationPolicy
) -> ResponseFrame:
    """Build the destination node's ResponseFrame for an offered channel.

    The response's source MAC is the *switch* address per Figure 18.4 --
    the ResponseFrame format is shared by the destination->switch and
    switch->source messages, and carries the switch MAC as the stable
    addressing anchor.
    """
    if request.rt_channel_id == 0:
        raise ProtocolError(
            "offered channel carries no RT channel ID; the switch must "
            "stamp the ID before forwarding a request to the destination"
        )
    return ResponseFrame(
        connect_request_id=request.connect_request_id,
        rt_channel_id=request.rt_channel_id,
        switch_mac=switch_mac,
        ok=bool(policy(request)),
    )
