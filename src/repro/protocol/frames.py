"""Bit-exact RequestFrame / ResponseFrame codecs (Figures 18.3 and 18.4).

The RT-channel establishment handshake uses two signalling frames whose
data fields the paper specifies down to the bit:

**RequestFrame** (Figure 18.3), carried in an Ethernet frame addressed
to the switch:

======================================  =====
field                                   bits
======================================  =====
Type (= Connect packet)                 8
Connection request ID                   8
RT channel ID (not yet valid)           16
Source MAC address                      48
Destination MAC address                 48
IP source address                       32
IP destination address                  32
T_period                                32
C (capacity)                            32
T_deadline                              32
======================================  =====

Total 288 bits = 36 bytes.

**ResponseFrame** (Figure 18.4):

======================================  =====
field                                   bits
======================================  =====
Type (= Response packet)                8
Connection request ID                   8
RT channel ID                           16
Switch (source) MAC address             48
Response (0 = Not OK, 1 = OK)           1
======================================  =====

Total 81 bits, padded with 7 zero bits to 11 bytes.

Field *widths* are taken verbatim from the figures. The *serialization
order* within the data field is not fully recoverable from the published
figure text, so this implementation fixes the canonical order above
(type tag first, then identifiers, addresses, parameters) and documents
it; any order-preserving permutation would interoperate only with
itself, and the paper's own prototype is not available to match against.

A :class:`TeardownFrame` (type 3) is added as a natural extension -- the
paper establishes channels dynamically but does not give a release
frame; a real deployment needs one, and the admission controller
supports release.

Two further extension frames support multi-switch coordination on
shared links (the paper's switch is alone; a fabric is not):

* :class:`IntentFrame` (type 4) implements the announce-wait-commit
  intent lock: a switch announces its intention to reserve capacity on
  a link it does not own, waits a hold period listening for conflicting
  announcements, and commits (or aborts) -- ``kind`` carries the
  :class:`IntentKind` leg, and conflicts are broken by the
  deterministic ``(priority, switch_mac, intent_seq)`` order carried in
  the frame.
* :class:`GossipFrame` (type 5) carries a per-link occupancy digest
  (load, reserved utilization as an exact fraction, view version) for
  threshold-triggered anti-entropy between the switches' views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CodecError, FieldRangeError
from .bitfields import BitPacker, BitUnpacker

__all__ = [
    "FrameType",
    "IntentKind",
    "RequestFrame",
    "ResponseFrame",
    "TeardownFrame",
    "IntentFrame",
    "GossipFrame",
    "decode_signaling",
    "REQUEST_FRAME_BYTES",
    "RESPONSE_FRAME_BYTES",
    "TEARDOWN_FRAME_BYTES",
    "INTENT_FRAME_BYTES",
    "GOSSIP_FRAME_BYTES",
]

#: Encoded size of a RequestFrame data field (288 bits).
REQUEST_FRAME_BYTES = 36
#: Encoded size of a ResponseFrame data field (81 bits, padded).
RESPONSE_FRAME_BYTES = 11
#: Encoded size of a TeardownFrame data field (32 bits).
TEARDOWN_FRAME_BYTES = 4
#: Encoded size of an IntentFrame data field (280 bits).
INTENT_FRAME_BYTES = 35
#: Encoded size of a GossipFrame data field (184 bits).
GOSSIP_FRAME_BYTES = 23

_MAC_BITS = 48
_IP_BITS = 32
_PARAM_BITS = 32
_CHANNEL_ID_BITS = 16
_REQUEST_ID_BITS = 8
_TYPE_BITS = 8


class FrameType(enum.IntEnum):
    """The 8-bit Type field of the signalling frames."""

    CONNECT = 1
    RESPONSE = 2
    TEARDOWN = 3  # extension, see module docstring
    INTENT = 4  # extension: multi-switch intent lock
    GOSSIP = 5  # extension: multi-switch occupancy anti-entropy


class IntentKind(enum.IntEnum):
    """The 8-bit sub-kind field of an :class:`IntentFrame`."""

    ANNOUNCE = 0
    ACK = 1
    COMMIT = 2
    ABORT = 3
    RELEASE = 4


@dataclass(frozen=True, slots=True)
class RequestFrame:
    """Decoded form of the Figure 18.3 connection request.

    ``rt_channel_id`` is 0 (not yet valid) when the source emits the
    request; the switch overwrites it with the network-unique ID before
    forwarding the request to the destination (Section 18.2.2).
    """

    connect_request_id: int
    rt_channel_id: int
    source_mac: int
    destination_mac: int
    source_ip: int
    destination_ip: int
    period: int
    capacity: int
    deadline: int

    def __post_init__(self) -> None:
        _check_width("connect_request_id", self.connect_request_id, _REQUEST_ID_BITS)
        _check_width("rt_channel_id", self.rt_channel_id, _CHANNEL_ID_BITS)
        _check_width("source_mac", self.source_mac, _MAC_BITS)
        _check_width("destination_mac", self.destination_mac, _MAC_BITS)
        _check_width("source_ip", self.source_ip, _IP_BITS)
        _check_width("destination_ip", self.destination_ip, _IP_BITS)
        _check_width("period", self.period, _PARAM_BITS)
        _check_width("capacity", self.capacity, _PARAM_BITS)
        _check_width("deadline", self.deadline, _PARAM_BITS)

    def encode(self) -> bytes:
        """Serialize to the 36-byte wire form."""
        packer = (
            BitPacker()
            .put(FrameType.CONNECT, _TYPE_BITS)
            .put(self.connect_request_id, _REQUEST_ID_BITS)
            .put(self.rt_channel_id, _CHANNEL_ID_BITS)
            .put(self.source_mac, _MAC_BITS)
            .put(self.destination_mac, _MAC_BITS)
            .put(self.source_ip, _IP_BITS)
            .put(self.destination_ip, _IP_BITS)
            .put(self.period, _PARAM_BITS)
            .put(self.capacity, _PARAM_BITS)
            .put(self.deadline, _PARAM_BITS)
        )
        return packer.to_bytes()

    @classmethod
    def decode_body(cls, unpacker: BitUnpacker) -> "RequestFrame":
        """Decode the fields after the type tag (already consumed)."""
        frame = cls(
            connect_request_id=unpacker.take(_REQUEST_ID_BITS),
            rt_channel_id=unpacker.take(_CHANNEL_ID_BITS),
            source_mac=unpacker.take(_MAC_BITS),
            destination_mac=unpacker.take(_MAC_BITS),
            source_ip=unpacker.take(_IP_BITS),
            destination_ip=unpacker.take(_IP_BITS),
            period=unpacker.take(_PARAM_BITS),
            capacity=unpacker.take(_PARAM_BITS),
            deadline=unpacker.take(_PARAM_BITS),
        )
        unpacker.expect_zero_padding()
        return frame

    def with_channel_id(self, rt_channel_id: int) -> "RequestFrame":
        """The switch's rewrite before forwarding to the destination."""
        return RequestFrame(
            connect_request_id=self.connect_request_id,
            rt_channel_id=rt_channel_id,
            source_mac=self.source_mac,
            destination_mac=self.destination_mac,
            source_ip=self.source_ip,
            destination_ip=self.destination_ip,
            period=self.period,
            capacity=self.capacity,
            deadline=self.deadline,
        )


@dataclass(frozen=True, slots=True)
class ResponseFrame:
    """Decoded form of the Figure 18.4 connection response.

    Sent by the destination node to the switch (accept/decline), and by
    the switch to the source node (final verdict, also used for direct
    rejection when the feasibility test fails).
    """

    connect_request_id: int
    rt_channel_id: int
    switch_mac: int
    ok: bool

    def __post_init__(self) -> None:
        _check_width("connect_request_id", self.connect_request_id, _REQUEST_ID_BITS)
        _check_width("rt_channel_id", self.rt_channel_id, _CHANNEL_ID_BITS)
        _check_width("switch_mac", self.switch_mac, _MAC_BITS)
        if not isinstance(self.ok, bool):
            raise FieldRangeError(
                f"response flag must be a bool, got {self.ok!r}"
            )

    def encode(self) -> bytes:
        packer = (
            BitPacker()
            .put(FrameType.RESPONSE, _TYPE_BITS)
            .put(self.connect_request_id, _REQUEST_ID_BITS)
            .put(self.rt_channel_id, _CHANNEL_ID_BITS)
            .put(self.switch_mac, _MAC_BITS)
            .put(1 if self.ok else 0, 1)
        )
        return packer.to_bytes()

    @classmethod
    def decode_body(cls, unpacker: BitUnpacker) -> "ResponseFrame":
        frame = cls(
            connect_request_id=unpacker.take(_REQUEST_ID_BITS),
            rt_channel_id=unpacker.take(_CHANNEL_ID_BITS),
            switch_mac=unpacker.take(_MAC_BITS),
            ok=bool(unpacker.take(1)),
        )
        unpacker.expect_zero_padding()
        return frame


@dataclass(frozen=True, slots=True)
class TeardownFrame:
    """Release an active RT channel (extension frame, type 3)."""

    connect_request_id: int
    rt_channel_id: int

    def __post_init__(self) -> None:
        _check_width("connect_request_id", self.connect_request_id, _REQUEST_ID_BITS)
        _check_width("rt_channel_id", self.rt_channel_id, _CHANNEL_ID_BITS)

    def encode(self) -> bytes:
        packer = (
            BitPacker()
            .put(FrameType.TEARDOWN, _TYPE_BITS)
            .put(self.connect_request_id, _REQUEST_ID_BITS)
            .put(self.rt_channel_id, _CHANNEL_ID_BITS)
        )
        return packer.to_bytes()

    @classmethod
    def decode_body(cls, unpacker: BitUnpacker) -> "TeardownFrame":
        frame = cls(
            connect_request_id=unpacker.take(_REQUEST_ID_BITS),
            rt_channel_id=unpacker.take(_CHANNEL_ID_BITS),
        )
        unpacker.expect_zero_padding()
        return frame


@dataclass(frozen=True, slots=True)
class IntentFrame:
    """One leg of the announce-wait-commit intent lock (type 4).

    ``intent_seq`` is the announcing switch's per-switch monotone
    sequence number; together with ``switch_mac`` it names the intent
    network-uniquely. ``priority`` and the ``(priority, switch_mac,
    intent_seq)`` triple give the deterministic conflict order (lower
    wins). ``ack_mac`` is the acknowledging switch on ACK legs (0
    otherwise). ``channel_id`` is the channel the intent is for -- the
    announcing switch pre-allocates it from its stride-partitioned ID
    space, so ANNOUNCE/COMMIT/ABORT legs of one intent all name the
    same channel and RELEASE needs no extra lookup.
    """

    kind: IntentKind
    intent_seq: int
    switch_mac: int
    ack_mac: int
    link_id: int
    channel_id: int
    priority: int
    period: int
    capacity: int
    deadline: int

    def __post_init__(self) -> None:
        if not isinstance(self.kind, IntentKind):
            raise FieldRangeError(
                f"kind must be an IntentKind, got {self.kind!r}"
            )
        _check_width("intent_seq", self.intent_seq, _PARAM_BITS)
        _check_width("switch_mac", self.switch_mac, _MAC_BITS)
        _check_width("ack_mac", self.ack_mac, _MAC_BITS)
        _check_width("link_id", self.link_id, _CHANNEL_ID_BITS)
        _check_width("channel_id", self.channel_id, _CHANNEL_ID_BITS)
        _check_width("priority", self.priority, _TYPE_BITS)
        _check_width("period", self.period, _PARAM_BITS)
        _check_width("capacity", self.capacity, _PARAM_BITS)
        _check_width("deadline", self.deadline, _PARAM_BITS)

    @property
    def precedence(self) -> tuple[int, int, int]:
        """Deterministic conflict order: lowest triple wins the link."""
        return (self.priority, self.switch_mac, self.intent_seq)

    def encode(self) -> bytes:
        packer = (
            BitPacker()
            .put(FrameType.INTENT, _TYPE_BITS)
            .put(self.kind, _TYPE_BITS)
            .put(self.intent_seq, _PARAM_BITS)
            .put(self.switch_mac, _MAC_BITS)
            .put(self.ack_mac, _MAC_BITS)
            .put(self.link_id, _CHANNEL_ID_BITS)
            .put(self.channel_id, _CHANNEL_ID_BITS)
            .put(self.priority, _TYPE_BITS)
            .put(self.period, _PARAM_BITS)
            .put(self.capacity, _PARAM_BITS)
            .put(self.deadline, _PARAM_BITS)
        )
        return packer.to_bytes()

    @classmethod
    def decode_body(cls, unpacker: BitUnpacker) -> "IntentFrame":
        kind_tag = unpacker.take(_TYPE_BITS)
        try:
            kind = IntentKind(kind_tag)
        except ValueError:
            raise CodecError(
                f"unknown intent kind {kind_tag:#04x}"
            ) from None
        frame = cls(
            kind=kind,
            intent_seq=unpacker.take(_PARAM_BITS),
            switch_mac=unpacker.take(_MAC_BITS),
            ack_mac=unpacker.take(_MAC_BITS),
            link_id=unpacker.take(_CHANNEL_ID_BITS),
            channel_id=unpacker.take(_CHANNEL_ID_BITS),
            priority=unpacker.take(_TYPE_BITS),
            period=unpacker.take(_PARAM_BITS),
            capacity=unpacker.take(_PARAM_BITS),
            deadline=unpacker.take(_PARAM_BITS),
        )
        unpacker.expect_zero_padding()
        return frame


@dataclass(frozen=True, slots=True)
class GossipFrame:
    """Per-link occupancy digest for view anti-entropy (type 5).

    ``version`` is the sending switch's per-link view version (bumped
    on every local commit/release affecting the link); a receiver whose
    recorded version for ``(switch_mac, link_id)`` is older adopts the
    digest and, on mismatch with its own bookkeeping, triggers a
    re-broadcast of its committed intents for the link. The reserved
    utilization travels as an exact fraction (numerator/denominator).
    """

    switch_mac: int
    link_id: int
    version: int
    load: int
    util_num: int
    util_den: int

    def __post_init__(self) -> None:
        _check_width("switch_mac", self.switch_mac, _MAC_BITS)
        _check_width("link_id", self.link_id, _CHANNEL_ID_BITS)
        _check_width("version", self.version, _PARAM_BITS)
        _check_width("load", self.load, _CHANNEL_ID_BITS)
        _check_width("util_num", self.util_num, _PARAM_BITS)
        _check_width("util_den", self.util_den, _PARAM_BITS)
        if self.util_den == 0:
            raise FieldRangeError("util_den must be non-zero")

    def encode(self) -> bytes:
        packer = (
            BitPacker()
            .put(FrameType.GOSSIP, _TYPE_BITS)
            .put(self.switch_mac, _MAC_BITS)
            .put(self.link_id, _CHANNEL_ID_BITS)
            .put(self.version, _PARAM_BITS)
            .put(self.load, _CHANNEL_ID_BITS)
            .put(self.util_num, _PARAM_BITS)
            .put(self.util_den, _PARAM_BITS)
        )
        return packer.to_bytes()

    @classmethod
    def decode_body(cls, unpacker: BitUnpacker) -> "GossipFrame":
        frame = cls(
            switch_mac=unpacker.take(_MAC_BITS),
            link_id=unpacker.take(_CHANNEL_ID_BITS),
            version=unpacker.take(_PARAM_BITS),
            load=unpacker.take(_CHANNEL_ID_BITS),
            util_num=unpacker.take(_PARAM_BITS),
            util_den=unpacker.take(_PARAM_BITS),
        )
        unpacker.expect_zero_padding()
        return frame


def decode_signaling(
    data: bytes,
) -> RequestFrame | ResponseFrame | TeardownFrame | IntentFrame | GossipFrame:
    """Decode any signalling frame, dispatching on the 8-bit type tag."""
    unpacker = BitUnpacker(data)
    tag = unpacker.take(_TYPE_BITS)
    try:
        frame_type = FrameType(tag)
    except ValueError:
        raise CodecError(f"unknown signalling frame type {tag:#04x}") from None
    if frame_type is FrameType.CONNECT:
        return RequestFrame.decode_body(unpacker)
    if frame_type is FrameType.RESPONSE:
        return ResponseFrame.decode_body(unpacker)
    if frame_type is FrameType.INTENT:
        return IntentFrame.decode_body(unpacker)
    if frame_type is FrameType.GOSSIP:
        return GossipFrame.decode_body(unpacker)
    return TeardownFrame.decode_body(unpacker)


def _check_width(name: str, value: int, width: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise FieldRangeError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value < 0 or value >= (1 << width):
        raise FieldRangeError(
            f"{name} = {value} does not fit in the {width}-bit field "
            f"declared by the paper (range 0..{(1 << width) - 1})"
        )
