"""Differential validation oracle for the admission-control analysis.

The paper's central guarantee -- demand criterion passes ⇒ per-link EDF
never misses -- is checked here by *execution*, not by trust:

* :mod:`~repro.oracle.edf_timeline` -- a standalone brute-force EDF
  dispatcher replaying the synchronous schedule slot by slot over the
  first busy period, reporting per-job responses and the first miss.
* :mod:`~repro.oracle.differential` -- a three-way cross-check of
  ``is_feasible``, ``is_feasible_naive`` and the timeline replay, with
  a structured :class:`~repro.oracle.differential.OracleVerdict`.
* :mod:`~repro.oracle.fuzz` -- seeded random task-set families (uniform,
  harmonic, paper-style, adversarial near-``U=1``) driving N-trial
  campaigns: ``repro oracle --trials 10000 --seed 0``.

Any future optimization of the admission hot path must keep a fuzz
campaign green; see "Validating a change" in README.md.
"""

from .edf_timeline import (
    DeadlineMiss,
    JobRecord,
    TaskTimelineStats,
    TimelineResult,
    default_release_horizon,
    simulate_edf,
)
from .differential import (
    Agreement,
    OracleVerdict,
    cross_check,
    first_demand_violation,
)
from .fuzz import (
    FAMILIES,
    CampaignReport,
    Disagreement,
    generate_task_set,
    run_campaign,
)
from .admission_diff import (
    AdmissionDiffReport,
    AdmissionDisagreement,
    run_admission_campaign,
    run_trial,
)

__all__ = [
    "DeadlineMiss",
    "JobRecord",
    "TaskTimelineStats",
    "TimelineResult",
    "default_release_horizon",
    "simulate_edf",
    "Agreement",
    "OracleVerdict",
    "cross_check",
    "first_demand_violation",
    "FAMILIES",
    "CampaignReport",
    "Disagreement",
    "generate_task_set",
    "run_campaign",
    "AdmissionDiffReport",
    "AdmissionDisagreement",
    "run_admission_campaign",
    "run_trial",
]
