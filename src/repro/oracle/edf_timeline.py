"""Brute-force EDF timeline replay: the executable ground truth.

The analytical admission test (:mod:`repro.core.feasibility`) *claims*
that ``h(n, t) <= t`` at every control point implies no deadline miss
under per-link EDF. This module checks that claim the hard way: it
dispatches the synchronous task set slot by slot under preemptive EDF
and reports exactly what happens -- per-job response times, and the
first missed deadline if any.

Why this is a sufficient witness (see THEORY.md section 6 for the full
argument):

* For a synchronous periodic task set with ``U <= 1``, if EDF misses a
  deadline at all, the **first** miss occurs no later than the end of
  the first busy period ``L`` (Eq. 18.4). The schedule on ``[0, L)``
  depends only on jobs released before ``L``, so replaying releases in
  ``[0, L)`` and draining the backlog observes that first miss exactly.
* Conversely, dropping the jobs released at or after ``L`` can never
  *create* a miss: removing work from an EDF schedule only decreases
  response times. Hence: miss in the replay ⇔ the full infinite
  schedule misses.

The dispatcher is deliberately naive -- one slot of work per iteration,
a heap ordered by absolute deadline, ties broken by task index --
because its value is being *trivially auditable*, not fast. It shares
no code with :func:`repro.core.feasibility.is_feasible`, with
:func:`repro.core.schedule.build_schedule` (which refuses ``U > 1`` and
always runs a full hyperperiod), or with the event-driven port
simulator, so agreement between them is meaningful evidence.

Unlike ``build_schedule`` this replay also handles over-utilized sets
(``U > 1``): backlog then grows without bound, and the replay runs
until the first miss (guaranteed to exist) or a safety cap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..core.feasibility import busy_period, hyperperiod, utilization
from ..core.task import LinkTask
from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_MAX_SLOTS",
    "JobRecord",
    "DeadlineMiss",
    "TaskTimelineStats",
    "TimelineResult",
    "default_release_horizon",
    "simulate_edf",
]

#: Safety cap on executed (busy) slots per replay. Busy periods of the
#: workloads this repo studies are a few thousand slots; the cap only
#: guards against runaway horizons on pathological fuzz inputs.
DEFAULT_MAX_SLOTS = 5_000_000


@dataclass(frozen=True, slots=True)
class JobRecord:
    """One job's complete lifecycle in the replay."""

    task_index: int
    channel_id: int
    release: int
    #: absolute deadline (release + relative deadline).
    deadline: int
    #: slot boundary at which the last unit of work finished.
    completion: int

    @property
    def response(self) -> int:
        return self.completion - self.release

    @property
    def missed(self) -> bool:
        return self.completion > self.deadline


@dataclass(frozen=True, slots=True)
class DeadlineMiss:
    """The first instant at which a job's deadline passed unfinished.

    ``time`` equals the missed *absolute deadline* -- under EDF the job
    at the top of the ready heap when a miss is first observed is
    exactly the job whose deadline is the earliest one missed, so this
    is the true first-miss instant of the schedule.
    """

    time: int
    task_index: int
    channel_id: int
    release: int
    #: units of work the job still owed when its deadline passed.
    remaining: int


@dataclass(frozen=True, slots=True)
class TaskTimelineStats:
    """Aggregate response statistics for one task over the replay."""

    task_index: int
    channel_id: int
    deadline: int
    jobs_released: int
    jobs_completed: int
    #: worst completion-minus-release over completed jobs (0 if none).
    worst_response: int
    #: completed jobs whose completion exceeded their absolute deadline.
    overruns: int


@dataclass(frozen=True, slots=True)
class TimelineResult:
    """Everything the replay observed.

    Attributes
    ----------
    release_horizon:
        Jobs were released at every ``m * P_i < release_horizon``.
    makespan:
        Time at which the replay stopped: the first idle instant after
        the last release when no miss occurred (for a feasible set this
        equals the busy period when replaying exactly the first busy
        period), or the miss instant when ``stop_on_miss`` fired.
    slots_executed:
        Busy slots actually dispatched.
    first_miss:
        The earliest deadline miss, or ``None`` if every job that
        completed did so in time.
    task_stats:
        Per-task aggregates, index-aligned with the input sequence.
    jobs:
        Per-job records (only populated when ``record_jobs=True``).
    """

    release_horizon: int
    makespan: int
    slots_executed: int
    jobs_released: int
    jobs_completed: int
    first_miss: DeadlineMiss | None
    task_stats: tuple[TaskTimelineStats, ...]
    jobs: tuple[JobRecord, ...] = ()

    @property
    def schedulable(self) -> bool:
        """True when the replay finished with zero misses or overruns."""
        return self.first_miss is None and all(
            s.overruns == 0 for s in self.task_stats
        )

    def worst_response_of(self, task_index: int) -> int:
        return self.task_stats[task_index].worst_response


def default_release_horizon(tasks: Sequence[LinkTask]) -> int:
    """The analysis horizon of ``is_feasible``: min(busy period, hyperperiod).

    Only defined for ``U <= 1`` (the busy period diverges otherwise);
    over-utilized sets need an explicit horizon, usually the first
    demand-violation instant (see
    :func:`repro.oracle.differential.first_demand_violation`).
    """
    return min(busy_period(tasks), hyperperiod(tasks))


def simulate_edf(
    tasks: Sequence[LinkTask],
    release_horizon: int | None = None,
    *,
    stop_on_miss: bool = True,
    record_jobs: bool = False,
    max_slots: int = DEFAULT_MAX_SLOTS,
) -> TimelineResult:
    """Replay the synchronous EDF schedule of ``tasks`` on one link.

    Every task releases a job at ``t = 0, P_i, 2 P_i, ...`` for all
    release instants strictly below ``release_horizon``; the replay then
    drains the remaining backlog so every released job runs to
    completion (late jobs keep executing -- EDF does not abandon work --
    and are counted as overruns), unless ``stop_on_miss`` ends the
    replay at the first observed miss.

    Parameters
    ----------
    tasks:
        The per-link task set; order defines tie-breaking and indexing.
    release_horizon:
        Release window bound (default: the first busy period, the exact
        window the analytical test reasons about). Must be given
        explicitly for over-utilized sets.
    stop_on_miss:
        Return at the first miss (the oracle's usual mode) instead of
        accounting the full window.
    record_jobs:
        Keep a :class:`JobRecord` per job (memory proportional to the
        job count; off by default for fuzz campaigns).
    max_slots:
        Safety cap on dispatched slots.

    Raises
    ------
    ConfigurationError
        for a negative horizon, a missing horizon on an over-utilized
        set, or a replay exceeding ``max_slots``.
    """
    tasks = list(tasks)
    if release_horizon is None:
        if tasks and utilization(tasks) > 1:
            raise ConfigurationError(
                "an over-utilized set (U > 1) has no busy period; pass an "
                "explicit release_horizon (e.g. the first demand violation)"
            )
        release_horizon = default_release_horizon(tasks)
    if release_horizon < 0:
        raise ConfigurationError(
            f"release_horizon must be non-negative, got {release_horizon}"
        )

    # releases: heap of (next_release, task_index); ready: heap of
    # [abs_deadline, task_index, release, remaining] -- the list is
    # mutated in place while the job is at the top.
    releases: list[tuple[int, int]] = [
        (0, index) for index in range(len(tasks)) if release_horizon > 0
    ]
    heapq.heapify(releases)
    ready: list[list[int]] = []

    worst = [0] * len(tasks)
    released = [0] * len(tasks)
    completed = [0] * len(tasks)
    overruns = [0] * len(tasks)
    jobs: list[JobRecord] = []
    first_miss: DeadlineMiss | None = None

    time = 0
    slots = 0
    while releases or ready:
        while releases and releases[0][0] <= time:
            release, index = heapq.heappop(releases)
            task = tasks[index]
            heapq.heappush(
                ready,
                [release + task.deadline, index, release, task.capacity],
            )
            released[index] += 1
            nxt = release + task.period
            if nxt < release_horizon:
                heapq.heappush(releases, (nxt, index))
        if not ready:
            # idle gap: jump straight to the next release.
            time = releases[0][0]
            continue
        job = ready[0]
        deadline_abs, index, release, remaining = job
        if first_miss is None and deadline_abs <= time:
            # The top of the heap has the earliest pending deadline, so
            # this is the schedule's first miss (see DeadlineMiss).
            first_miss = DeadlineMiss(
                time=deadline_abs,
                task_index=index,
                channel_id=tasks[index].channel_id,
                release=release,
                remaining=remaining,
            )
            if stop_on_miss:
                break
        job[3] -= 1
        slots += 1
        if slots > max_slots:
            raise ConfigurationError(
                f"EDF replay exceeded {max_slots} slots "
                f"(horizon {release_horizon}, {len(tasks)} tasks); the set "
                "is pathologically long -- raise max_slots or shrink it"
            )
        if job[3] == 0:
            heapq.heappop(ready)
            completion = time + 1
            completed[index] += 1
            response = completion - release
            if response > worst[index]:
                worst[index] = response
            if completion > deadline_abs:
                overruns[index] += 1
            if record_jobs:
                jobs.append(
                    JobRecord(
                        task_index=index,
                        channel_id=tasks[index].channel_id,
                        release=release,
                        deadline=deadline_abs,
                        completion=completion,
                    )
                )
        time += 1

    stats = tuple(
        TaskTimelineStats(
            task_index=index,
            channel_id=task.channel_id,
            deadline=task.deadline,
            jobs_released=released[index],
            jobs_completed=completed[index],
            worst_response=worst[index],
            overruns=overruns[index],
        )
        for index, task in enumerate(tasks)
    )
    return TimelineResult(
        release_horizon=release_horizon,
        makespan=time,
        slots_executed=slots,
        jobs_released=sum(released),
        jobs_completed=sum(completed),
        first_miss=first_miss,
        task_stats=stats,
        jobs=tuple(jobs),
    )
