"""Differential cross-check: analytical admission vs executed timeline.

Runs three independent EDF-feasibility oracles on the same task set --

1. :func:`repro.core.feasibility.is_feasible` (control points within the
   busy period; the production admission path),
2. :func:`repro.core.feasibility.is_feasible_naive` (every integer
   instant; no reductions),
3. :func:`repro.oracle.edf_timeline.simulate_edf` (the executed
   schedule itself)

-- and classifies their agreement. Any mismatch is a bug in one of
them, and since the three share no code, a fuzz campaign over this
check (:mod:`repro.oracle.fuzz`) is the repo's strongest defense
against silently breaking admission control during a refactor.

The timeline leg is direction-aware:

* analytically **feasible** ⇒ the replay over the first busy period
  must finish with zero misses;
* analytically **infeasible** with a demand violation at control point
  ``t*`` ⇒ the replay restricted to releases before ``t*`` must witness
  a miss at some absolute deadline ``<= t*`` (the violation *is* the
  statement that jobs due by ``t*`` carry more than ``t*`` slots of
  work, so no policy can finish them);
* analytically **infeasible** by utilization (``U > 1``) ⇒ the demand
  criterion has no finite certificate from ``is_feasible`` (it reports
  the utilization test only), so the checker first locates the earliest
  demand violation itself and then replays to it.

Pathological task sets whose horizon explodes (huge ``lcm`` of periods
near ``U = 1``) are classified ``HORIZON_CAPPED`` rather than silently
skipped, and campaigns report how many were capped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.feasibility import (
    FeasibilityReport,
    control_points,
    demand_many,
    hyperperiod,
    is_feasible,
    is_feasible_naive,
    utilization,
)
from ..core.task import LinkTask
from ..errors import ConfigurationError
from .edf_timeline import TimelineResult, default_release_horizon, simulate_edf

__all__ = [
    "Agreement",
    "OracleVerdict",
    "first_demand_violation",
    "cross_check",
]

#: Default bound on the replayed / scanned horizon, in slots. Fuzz
#: families are tuned so that almost no draw exceeds it; the verdict
#: records the ones that do.
DEFAULT_MAX_HORIZON = 200_000

#: Skip the naive every-integer scan above this horizon (it is the only
#: quadratic-ish leg; the other two stay).
DEFAULT_NAIVE_HORIZON_CAP = 50_000


class Agreement(enum.Enum):
    """Outcome classes of one differential check."""

    #: all oracles agree the set is schedulable.
    AGREE_FEASIBLE = "agree-feasible"
    #: all oracles agree the set is not schedulable.
    AGREE_INFEASIBLE = "agree-infeasible"
    #: ``is_feasible`` and ``is_feasible_naive`` returned different
    #: verdicts -- a reduction (busy period / control points) is broken.
    FAST_NAIVE_MISMATCH = "fast-naive-mismatch"
    #: the executed timeline contradicts the analytical verdict -- the
    #: admission test itself (or the dispatcher) is broken.
    ANALYTIC_TIMELINE_MISMATCH = "analytic-timeline-mismatch"
    #: the horizon needed to decide exceeded the configured cap; the
    #: check was not completed (not a disagreement).
    HORIZON_CAPPED = "horizon-capped"

    @property
    def is_disagreement(self) -> bool:
        return self in (
            Agreement.FAST_NAIVE_MISMATCH,
            Agreement.ANALYTIC_TIMELINE_MISMATCH,
        )


@dataclass(frozen=True, slots=True)
class OracleVerdict:
    """Structured result of one cross-check, with full provenance."""

    tasks: tuple[LinkTask, ...]
    fast: FeasibilityReport
    #: ``None`` when the naive scan was skipped (horizon above its cap).
    naive: FeasibilityReport | None
    #: ``None`` when the replay was skipped (``HORIZON_CAPPED``).
    timeline: TimelineResult | None
    agreement: Agreement
    detail: str

    @property
    def ok(self) -> bool:
        """True unless two oracles actually contradicted each other."""
        return not self.agreement.is_disagreement

    def summary(self) -> str:
        return (
            f"{self.agreement.value}: {len(self.tasks)} tasks, "
            f"U={float(self.fast.link_utilization):.3f} -- {self.detail}"
        )


def first_demand_violation(
    tasks: Sequence[LinkTask], max_horizon: int
) -> tuple[int, int] | None:
    """Earliest control point ``t`` with ``h(n, t) > t``, or ``None``.

    Unlike :func:`repro.core.feasibility.is_feasible` this also works
    for over-utilized sets, where no busy-period bound exists: it scans
    control points over doubling horizons until a violation appears or
    ``max_horizon`` is reached. For ``U > 1`` a violation always exists
    (demand grows like ``U * t``), so ``None`` only means "beyond the
    cap".
    """
    if not tasks:
        return None
    horizon = max(task.deadline for task in tasks)
    while True:
        horizon = min(horizon, max_horizon)
        points = control_points(tasks, horizon)
        demands = demand_many(tasks, points)
        bad = np.nonzero(demands > points)[0]
        if bad.size:
            first = int(bad[0])
            return int(points[first]), int(demands[first])
        if horizon >= max_horizon:
            return None
        horizon *= 2


def cross_check(
    tasks: Sequence[LinkTask],
    *,
    check_naive: bool = True,
    max_horizon: int = DEFAULT_MAX_HORIZON,
    naive_horizon_cap: int = DEFAULT_NAIVE_HORIZON_CAP,
) -> OracleVerdict:
    """Run all three oracles on one task set and classify agreement.

    Parameters
    ----------
    tasks:
        The per-link task set under test.
    check_naive:
        Include the every-integer reference scan (skipped automatically
        above ``naive_horizon_cap`` regardless).
    max_horizon:
        Bound on the replay horizon and on the violation search for
        over-utilized sets; longer needs are ``HORIZON_CAPPED``.
    """
    tasks = tuple(tasks)
    if max_horizon <= 0:
        raise ConfigurationError(
            f"max_horizon must be positive, got {max_horizon}"
        )
    fast = is_feasible(tasks)
    over_utilized = fast.link_utilization > 1

    # --- leg 1: fast vs naive -------------------------------------------
    naive: FeasibilityReport | None = None
    if check_naive:
        naive_horizon = (
            0 if over_utilized else default_release_horizon(tasks)
        )
        if naive_horizon <= naive_horizon_cap:
            naive = is_feasible_naive(tasks)
            if naive.feasible != fast.feasible:
                return OracleVerdict(
                    tasks=tasks,
                    fast=fast,
                    naive=naive,
                    timeline=None,
                    agreement=Agreement.FAST_NAIVE_MISMATCH,
                    detail=(
                        f"is_feasible says {fast.feasible}, "
                        f"is_feasible_naive says {naive.feasible} "
                        f"(violations {fast.violation} vs {naive.violation})"
                    ),
                )

    # --- leg 2: analytical vs executed timeline -------------------------
    if fast.feasible:
        horizon = default_release_horizon(tasks)
        if horizon > max_horizon:
            return OracleVerdict(
                tasks=tasks,
                fast=fast,
                naive=naive,
                timeline=None,
                agreement=Agreement.HORIZON_CAPPED,
                detail=f"busy-period horizon {horizon} > cap {max_horizon}",
            )
        timeline = simulate_edf(tasks, horizon, stop_on_miss=True)
        if timeline.first_miss is not None:
            miss = timeline.first_miss
            return OracleVerdict(
                tasks=tasks,
                fast=fast,
                naive=naive,
                timeline=timeline,
                agreement=Agreement.ANALYTIC_TIMELINE_MISMATCH,
                detail=(
                    "analytically feasible but the replay missed the "
                    f"deadline of task {miss.task_index} at t={miss.time}"
                ),
            )
        return OracleVerdict(
            tasks=tasks,
            fast=fast,
            naive=naive,
            timeline=timeline,
            agreement=Agreement.AGREE_FEASIBLE,
            detail=(
                f"no miss in {timeline.jobs_released} jobs over "
                f"horizon {horizon}"
            ),
        )

    # Infeasible: obtain a finite certificate t* with h(t*) > t*.
    if fast.violation is not None:
        violation = fast.violation
    else:  # rejected by the utilization test alone (U > 1)
        violation = first_demand_violation(tasks, max_horizon)
        if violation is None:
            return OracleVerdict(
                tasks=tasks,
                fast=fast,
                naive=naive,
                timeline=None,
                agreement=Agreement.HORIZON_CAPPED,
                detail=(
                    f"U={float(fast.link_utilization):.3f} > 1 but no "
                    f"demand violation within cap {max_horizon}"
                ),
            )
    t_star, h_star = violation
    timeline = simulate_edf(
        tasks, t_star, stop_on_miss=True,
        # h(t*) slots of work released before t*; generous margin.
        max_slots=max(4 * h_star, 1024),
    )
    miss = timeline.first_miss
    if miss is None or miss.time > t_star:
        observed = "no miss" if miss is None else f"first miss at {miss.time}"
        return OracleVerdict(
            tasks=tasks,
            fast=fast,
            naive=naive,
            timeline=timeline,
            agreement=Agreement.ANALYTIC_TIMELINE_MISMATCH,
            detail=(
                f"analytical violation h({t_star})={h_star} predicts a miss "
                f"by t={t_star}, but the replay observed {observed}"
            ),
        )
    return OracleVerdict(
        tasks=tasks,
        fast=fast,
        naive=naive,
        timeline=timeline,
        agreement=Agreement.AGREE_INFEASIBLE,
        detail=(
            f"replay missed task {miss.task_index} at t={miss.time} <= "
            f"control point {t_star} (h={h_star})"
        ),
    )
