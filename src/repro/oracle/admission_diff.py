"""Differential campaign: cached vs from-scratch admission control.

The :class:`~repro.core.feasibility_cache.FeasibilityCache` is the
admission hot path's fast lane; this module is the proof that it changed
*nothing* about the decisions. Every trial builds two controllers over
identical (but separate) system states -- one with ``use_cache=True``,
one with ``use_cache=False`` -- and drives both through the same seeded
sequence of ``request()`` and ``release()`` operations, comparing after
every single operation:

* the decision stream: ``accepted``, ``reason`` and assigned
  ``channel_id`` must match exactly,
* the per-link reservation state: ``link_load`` and exact
  ``link_utilization`` (as :class:`~fractions.Fraction`) on every
  occupied link,
* the cached controller's own :class:`FeasibilityCache` view against its
  shared state (the cache must never drift from the bookkeeping).

Trials cycle through partitioning schemes -- SDPS, ADPS, utilization-
and laxity-weighted, and a strict :class:`~repro.core.partitioning_ext.SearchDPS`
(whose probes exercise the cache once per candidate split) -- and mix
workload shapes: the Figure 18.5 paper workload, uniform random specs
(including non-partitionable ones and unknown nodes, to cover every
rejection reason) and adversarial near-saturation specs. Release
operations interleave randomly, which is exactly where an incremental
cache can rot (stale busy periods, un-evicted memo entries).

Everything is a pure function of ``(seed, trial)`` via
:class:`~repro.sim.rng.RngRegistry`, so any reported disagreement can be
replayed in isolation with :func:`run_trial`.

The ``churn`` mode (``repro admission-diff --churn``) extends the op
alphabet with **snapshot/resume**: at random points mid-trial the cached
controller is serialized through :mod:`repro.core.persistence`, the
round-trip is byte-compared (``dumps(original) == dumps(restored)``),
and the *restored* controller replaces the original for the rest of the
trial -- so every later decision also proves the restored
:class:`FeasibilityCache` behaves identically to one that never crossed
a snapshot. This is the campaign shape that originally exposed the
cache's insertion-order drift after restore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.admission import AdmissionController, SystemState
from ..core.channel import ChannelSpec
from ..core.partitioning import (
    AsymmetricDPS,
    DeadlinePartitioningScheme,
    SymmetricDPS,
)
from ..core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from ..core.task import LinkRef
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry

__all__ = [
    "AdmissionDisagreement",
    "AdmissionDiffReport",
    "run_trial",
    "run_churn_trial",
    "run_admission_campaign",
]

#: Node population per trial; small enough that links saturate and
#: rejections actually occur, large enough for link diversity.
_NODES = tuple(f"n{i}" for i in range(6))

#: One name that is never registered, to exercise UNKNOWN_NODE.
_GHOST_NODE = "ghost"


def _schemes() -> tuple[DeadlinePartitioningScheme, ...]:
    """Fresh scheme instances (schemes are stateless, but cheap to make)."""
    return (
        SymmetricDPS(),
        AsymmetricDPS(),
        UtilizationDPS(),
        LaxityDPS(),
        SearchDPS(max_probes=12, strict=True),
    )


def _draw_spec(rng: np.random.Generator) -> ChannelSpec:
    """One channel spec; mixes paper-shaped, uniform and adversarial."""
    shape = int(rng.integers(0, 10))
    if shape < 4:
        # Figure 18.5 workload: C=3, P=100, d in the paper's menu.
        deadline = int(rng.choice((20, 40, 100)))
        return ChannelSpec(period=100, capacity=3, deadline=deadline)
    if shape < 8:
        period = int(rng.integers(4, 81))
        capacity = int(rng.integers(1, max(2, period // 3)))
        deadline = int(rng.integers(1, 2 * period))
        return ChannelSpec(period=period, capacity=capacity, deadline=deadline)
    # Adversarial: fat capacity, tight deadline -- often only feasible
    # under one particular split, sometimes under none.
    period = int(rng.integers(10, 41))
    capacity = int(rng.integers(period // 4 + 1, period // 2 + 1))
    deadline = int(rng.integers(capacity, period + 1))
    return ChannelSpec(period=period, capacity=capacity, deadline=deadline)


@dataclass(frozen=True, slots=True)
class AdmissionDisagreement:
    """First divergence of one trial, with replay coordinates."""

    trial: int
    op_index: int
    dps: str
    detail: str

    def reproduce_hint(self, seed: int) -> str:
        return f"run_trial(seed={seed}, trial={self.trial})"


@dataclass(frozen=True, slots=True)
class AdmissionDiffReport:
    """Outcome of one cached-vs-naive admission campaign."""

    trials: int
    seed: int
    ops_per_trial: int
    decisions: int
    accepts: int
    rejects: int
    releases: int
    disagreements: tuple[AdmissionDisagreement, ...]
    disagreement_count: int
    #: True when the trials additionally replayed every burst through
    #: admit_many() on a third controller (three-way mode).
    batch: bool = False
    #: True when the trials interleaved snapshot/resume ops (churn mode);
    #: ``snapshots`` counts the round-trips byte-compared.
    churn: bool = False
    snapshots: int = 0

    @property
    def ok(self) -> bool:
        """True when cached and from-scratch admission never diverged."""
        return self.disagreement_count == 0

    def summary(self) -> str:
        status = "OK" if self.ok else "DISAGREEMENTS FOUND"
        mode = " [three-way: cached vs naive vs batched]" if self.batch else ""
        if self.churn:
            mode += (
                f" [churn: {self.snapshots} snapshot/resume round-trips]"
            )
        lines = [
            f"admission diff campaign {status}: {self.trials} trials, "
            f"seed {self.seed}, {self.ops_per_trial} ops/trial{mode}",
            f"  {self.decisions} decisions compared "
            f"({self.accepts} accepts, {self.rejects} rejects, "
            f"{self.releases} releases)",
        ]
        for disagreement in self.disagreements:
            lines.append(
                f"  MISMATCH trial={disagreement.trial} "
                f"op={disagreement.op_index} dps={disagreement.dps}: "
                f"{disagreement.detail}"
            )
            lines.append(
                f"    reproduce: {disagreement.reproduce_hint(self.seed)}"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "ops_per_trial": self.ops_per_trial,
            "batch": self.batch,
            "churn": self.churn,
            "snapshots": self.snapshots,
            "decisions": self.decisions,
            "accepts": self.accepts,
            "rejects": self.rejects,
            "releases": self.releases,
            "disagreement_count": self.disagreement_count,
            "disagreements": [
                {
                    "trial": d.trial,
                    "op_index": d.op_index,
                    "dps": d.dps,
                    "detail": d.detail,
                }
                for d in self.disagreements
            ],
            "ok": self.ok,
        }


def _links_of(source: str, destination: str) -> tuple[LinkRef, LinkRef]:
    return LinkRef.uplink(source), LinkRef.downlink(destination)


def _compare_links(
    cached: AdmissionController,
    naive: AdmissionController,
    links: tuple[LinkRef, ...],
) -> str | None:
    """Per-link parity of the two states *and* the cache itself."""
    for link in links:
        load_c = cached.state.link_load(link)
        load_n = naive.state.link_load(link)
        if load_c != load_n:
            return f"link_load({link}) cached={load_c} naive={load_n}"
        util_c = cached.state.link_utilization(link)
        util_n = naive.state.link_utilization(link)
        if util_c != util_n:
            return f"link_utilization({link}) cached={util_c} naive={util_n}"
        cache = cached.cache
        assert cache is not None
        if cache.link_load(link) != load_c:
            return (
                f"cache drift on {link}: cache load "
                f"{cache.link_load(link)} != state load {load_c}"
            )
        if cache.link_utilization(link) != util_c:
            return (
                f"cache drift on {link}: cache util "
                f"{cache.link_utilization(link)} != state util {util_c}"
            )
    return None


def _check_batch_flush(
    batched: AdmissionController,
    burst: list[tuple[str, str, ChannelSpec]],
    expected: list,
    trial: int,
    op_index: int,
    dps: DeadlinePartitioningScheme,
) -> AdmissionDisagreement | None:
    """Feed the pending burst to admit_many and diff the streams."""
    if not burst:
        return None
    decided = batched.admit_many(list(burst))
    burst.clear()
    want = list(expected)
    expected.clear()
    for index, (got, ref) in enumerate(zip(decided, want)):
        if (
            got.accepted != ref.accepted
            or got.reason != ref.reason
            or got.channel.channel_id != ref.channel.channel_id
            or got.partition != ref.partition
        ):
            return AdmissionDisagreement(
                trial=trial,
                op_index=op_index,
                dps=dps.name,
                detail=(
                    f"batched burst element {index}: batched "
                    f"(accepted={got.accepted}, reason={got.reason}, "
                    f"id={got.channel.channel_id}, "
                    f"partition={got.partition}) vs cached "
                    f"(accepted={ref.accepted}, reason={ref.reason}, "
                    f"id={ref.channel.channel_id}, "
                    f"partition={ref.partition})"
                ),
            )
    return None


def _compare_batched_links(
    cached: AdmissionController,
    batched: AdmissionController,
    links: tuple[LinkRef, ...],
) -> str | None:
    """Per-link parity of the batched controller against the cached one."""
    for link in links:
        if batched.state.link_load(link) != cached.state.link_load(link):
            return (
                f"batched link_load({link}) "
                f"{batched.state.link_load(link)} != "
                f"{cached.state.link_load(link)}"
            )
        if (
            batched.state.link_utilization(link)
            != cached.state.link_utilization(link)
        ):
            return (
                f"batched link_utilization({link}) "
                f"{batched.state.link_utilization(link)} != "
                f"{cached.state.link_utilization(link)}"
            )
    return None


def run_trial(
    seed: int, trial: int, ops: int = 40, *, batch: bool = False
) -> tuple[AdmissionDisagreement | None, dict[str, int]]:
    """Replay one trial; returns (first disagreement or None, op counts).

    Pure in ``(seed, trial, ops)``: the coordinates recorded in an
    :class:`AdmissionDisagreement` reproduce the exact divergence.

    With ``batch=True`` a *third* controller replays the identical
    operation sequence through :meth:`AdmissionController.admit_many`:
    consecutive request ops accumulate into a burst that is flushed
    (and diffed element by element against the cached decisions)
    whenever a release interrupts it and at trial end, so the batched
    engine is exercised against bursts of every length the op mix
    produces, interleaved with releases.
    """
    rng = RngRegistry(seed).fork(trial).stream("admission-diff")
    dps = _schemes()[trial % len(_schemes())]
    cached = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=True
    )
    naive = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=False
    )
    batched = (
        AdmissionController(SystemState(nodes=_NODES), dps, use_cache=True)
        if batch
        else None
    )
    burst: list[tuple[str, str, ChannelSpec]] = []
    burst_expected: list = []
    counts = {"decisions": 0, "accepts": 0, "rejects": 0, "releases": 0}
    touched: set[LinkRef] = set()
    for op_index in range(ops):
        roll = int(rng.integers(0, 10))
        active = sorted(cached.state.channels)
        if roll < 3 and active:
            victim = int(active[int(rng.integers(0, len(active)))])
            if batched is not None:
                disagreement = _check_batch_flush(
                    batched, burst, burst_expected, trial, op_index, dps
                )
                if disagreement is not None:
                    return disagreement, counts
                batched.release(victim)
            cached.release(victim)
            naive.release(victim)
            counts["releases"] += 1
        else:
            source = str(rng.choice(_NODES))
            if roll == 9:
                destination = _GHOST_NODE
            else:
                others = [n for n in _NODES if n != source]
                destination = str(rng.choice(others))
            spec = _draw_spec(rng)
            decision_c = cached.request(source, destination, spec)
            decision_n = naive.request(source, destination, spec)
            if batched is not None:
                burst.append((source, destination, spec))
                burst_expected.append(decision_c)
            counts["decisions"] += 1
            if decision_c.accepted != decision_n.accepted:
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            f"{source}->{destination} {spec}: cached "
                            f"accepted={decision_c.accepted} naive "
                            f"accepted={decision_n.accepted}"
                        ),
                    ),
                    counts,
                )
            if decision_c.reason != decision_n.reason:
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            f"{source}->{destination} {spec}: cached "
                            f"reason={decision_c.reason} naive "
                            f"reason={decision_n.reason}"
                        ),
                    ),
                    counts,
                )
            if decision_c.accepted:
                counts["accepts"] += 1
                if (
                    decision_c.channel.channel_id
                    != decision_n.channel.channel_id
                ):
                    return (
                        AdmissionDisagreement(
                            trial=trial,
                            op_index=op_index,
                            dps=dps.name,
                            detail=(
                                "channel_id cached="
                                f"{decision_c.channel.channel_id} naive="
                                f"{decision_n.channel.channel_id}"
                            ),
                        ),
                        counts,
                    )
                touched.update(_links_of(source, destination))
            else:
                counts["rejects"] += 1
        mismatch = _compare_links(cached, naive, tuple(sorted(touched)))
        if mismatch is not None:
            return (
                AdmissionDisagreement(
                    trial=trial,
                    op_index=op_index,
                    dps=dps.name,
                    detail=mismatch,
                ),
                counts,
            )
    if batched is not None:
        disagreement = _check_batch_flush(
            batched, burst, burst_expected, trial, ops, dps
        )
        if disagreement is not None:
            return disagreement, counts
        mismatch = _compare_batched_links(
            cached, batched, tuple(sorted(touched))
        )
        if mismatch is None and (
            batched.accept_count != cached.accept_count
            or batched.reject_count != cached.reject_count
            or batched.rejections_by_reason != cached.rejections_by_reason
        ):
            mismatch = (
                f"batched counters ({batched.accept_count}, "
                f"{batched.reject_count}, {batched.rejections_by_reason}) "
                f"!= cached ({cached.accept_count}, "
                f"{cached.reject_count}, {cached.rejections_by_reason})"
            )
        if mismatch is not None:
            return (
                AdmissionDisagreement(
                    trial=trial, op_index=ops, dps=dps.name, detail=mismatch
                ),
                counts,
            )
    # End-of-trial: the rejection histograms must agree too.
    if (
        cached.accept_count != naive.accept_count
        or cached.reject_count != naive.reject_count
        or cached.rejections_by_reason != naive.rejections_by_reason
    ):
        return (
            AdmissionDisagreement(
                trial=trial,
                op_index=ops,
                dps=dps.name,
                detail=(
                    f"counters diverged: cached ({cached.accept_count}, "
                    f"{cached.reject_count}, {cached.rejections_by_reason}) "
                    f"naive ({naive.accept_count}, {naive.reject_count}, "
                    f"{naive.rejections_by_reason})"
                ),
            ),
            counts,
        )
    return None, counts


def run_churn_trial(
    seed: int, trial: int, ops: int = 60
) -> tuple[AdmissionDisagreement | None, dict[str, int]]:
    """One churn trial: requests, releases *and* snapshot/resume ops.

    Like :func:`run_trial`, but roughly one op in twelve serializes the
    cached controller through :mod:`repro.core.persistence`, asserts the
    round-trip is byte-identical (``dumps`` before == after), and swaps
    the restored controller in for the rest of the trial. Every
    subsequent decision therefore also diffs a *restored*
    :class:`FeasibilityCache` against the never-snapshotted naive
    controller -- the interleaving that exposed the cache's
    insertion-order drift across restore.
    """
    from ..core import persistence

    rng = RngRegistry(seed).fork(trial).stream("admission-churn")
    dps = _schemes()[trial % len(_schemes())]
    cached = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=True
    )
    naive = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=False
    )
    counts = {
        "decisions": 0,
        "accepts": 0,
        "rejects": 0,
        "releases": 0,
        "snapshots": 0,
    }
    touched: set[LinkRef] = set()
    for op_index in range(ops):
        roll = int(rng.integers(0, 12))
        active = sorted(cached.state.channels)
        if roll == 11:
            before = persistence.dumps(cached, indent=None)
            restored = persistence.restore(
                persistence.snapshot(cached), dps
            )
            after = persistence.dumps(restored, indent=None)
            counts["snapshots"] += 1
            if before != after:
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            "snapshot round-trip not byte-identical "
                            f"({len(before)} vs {len(after)} bytes)"
                        ),
                    ),
                    counts,
                )
            cached = restored
        elif roll < 3 and active:
            victim = int(active[int(rng.integers(0, len(active)))])
            cached.release(victim)
            naive.release(victim)
            counts["releases"] += 1
        else:
            source = str(rng.choice(_NODES))
            if roll == 10:
                destination = _GHOST_NODE
            else:
                others = [n for n in _NODES if n != source]
                destination = str(rng.choice(others))
            spec = _draw_spec(rng)
            decision_c = cached.request(source, destination, spec)
            decision_n = naive.request(source, destination, spec)
            counts["decisions"] += 1
            if (
                decision_c.accepted != decision_n.accepted
                or decision_c.reason != decision_n.reason
                or (
                    decision_c.accepted
                    and decision_c.channel.channel_id
                    != decision_n.channel.channel_id
                )
            ):
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            f"{source}->{destination} {spec} after "
                            f"{counts['snapshots']} resumes: cached "
                            f"(accepted={decision_c.accepted}, "
                            f"reason={decision_c.reason}) naive "
                            f"(accepted={decision_n.accepted}, "
                            f"reason={decision_n.reason})"
                        ),
                    ),
                    counts,
                )
            if decision_c.accepted:
                counts["accepts"] += 1
                touched.update(_links_of(source, destination))
            else:
                counts["rejects"] += 1
        mismatch = _compare_links(cached, naive, tuple(sorted(touched)))
        if mismatch is not None:
            return (
                AdmissionDisagreement(
                    trial=trial,
                    op_index=op_index,
                    dps=dps.name,
                    detail=(
                        f"after {counts['snapshots']} resumes: {mismatch}"
                    ),
                ),
                counts,
            )
    if (
        cached.accept_count != naive.accept_count
        or cached.reject_count != naive.reject_count
        or cached.rejections_by_reason != naive.rejections_by_reason
    ):
        return (
            AdmissionDisagreement(
                trial=trial,
                op_index=ops,
                dps=dps.name,
                detail=(
                    f"counters diverged after {counts['snapshots']} "
                    f"resumes: cached ({cached.accept_count}, "
                    f"{cached.reject_count}, "
                    f"{cached.rejections_by_reason}) naive "
                    f"({naive.accept_count}, {naive.reject_count}, "
                    f"{naive.rejections_by_reason})"
                ),
            ),
            counts,
        )
    return None, counts


def run_admission_campaign(
    trials: int,
    seed: int,
    *,
    ops_per_trial: int = 40,
    disagreement_limit: int = 20,
    batch: bool = False,
    churn: bool = False,
) -> AdmissionDiffReport:
    """Run an N-trial cached-vs-from-scratch admission campaign.

    ``batch=True`` turns every trial into a three-way diff: cached,
    from-scratch, and a third controller replaying the request bursts
    through :meth:`~repro.core.admission.AdmissionController.admit_many`.
    ``churn=True`` runs :func:`run_churn_trial` instead, interleaving
    snapshot/resume ops into every trial (exclusive with ``batch``).
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if ops_per_trial <= 0:
        raise ConfigurationError(
            f"ops_per_trial must be positive, got {ops_per_trial}"
        )
    if batch and churn:
        raise ConfigurationError(
            "batch and churn modes are mutually exclusive"
        )
    disagreements: list[AdmissionDisagreement] = []
    disagreement_count = 0
    totals = {
        "decisions": 0,
        "accepts": 0,
        "rejects": 0,
        "releases": 0,
        "snapshots": 0,
    }
    for trial in range(trials):
        if churn:
            disagreement, counts = run_churn_trial(
                seed, trial, ops=ops_per_trial
            )
        else:
            disagreement, counts = run_trial(
                seed, trial, ops=ops_per_trial, batch=batch
            )
        for key, value in counts.items():
            totals[key] += value
        if disagreement is not None:
            disagreement_count += 1
            if len(disagreements) < disagreement_limit:
                disagreements.append(disagreement)
    return AdmissionDiffReport(
        trials=trials,
        seed=seed,
        ops_per_trial=ops_per_trial,
        decisions=totals["decisions"],
        accepts=totals["accepts"],
        rejects=totals["rejects"],
        releases=totals["releases"],
        disagreements=tuple(disagreements),
        disagreement_count=disagreement_count,
        batch=batch,
        churn=churn,
        snapshots=totals["snapshots"],
    )
