"""Differential campaign: cached vs from-scratch admission control.

The :class:`~repro.core.feasibility_cache.FeasibilityCache` is the
admission hot path's fast lane; this module is the proof that it changed
*nothing* about the decisions. Every trial builds two controllers over
identical (but separate) system states -- one with ``use_cache=True``,
one with ``use_cache=False`` -- and drives both through the same seeded
sequence of ``request()`` and ``release()`` operations, comparing after
every single operation:

* the decision stream: ``accepted``, ``reason`` and assigned
  ``channel_id`` must match exactly,
* the per-link reservation state: ``link_load`` and exact
  ``link_utilization`` (as :class:`~fractions.Fraction`) on every
  occupied link,
* the cached controller's own :class:`FeasibilityCache` view against its
  shared state (the cache must never drift from the bookkeeping).

Trials cycle through partitioning schemes -- SDPS, ADPS, utilization-
and laxity-weighted, and a strict :class:`~repro.core.partitioning_ext.SearchDPS`
(whose probes exercise the cache once per candidate split) -- and mix
workload shapes: the Figure 18.5 paper workload, uniform random specs
(including non-partitionable ones and unknown nodes, to cover every
rejection reason) and adversarial near-saturation specs. Release
operations interleave randomly, which is exactly where an incremental
cache can rot (stale busy periods, un-evicted memo entries).

Everything is a pure function of ``(seed, trial)`` via
:class:`~repro.sim.rng.RngRegistry`, so any reported disagreement can be
replayed in isolation with :func:`run_trial`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.admission import AdmissionController, SystemState
from ..core.channel import ChannelSpec
from ..core.partitioning import (
    AsymmetricDPS,
    DeadlinePartitioningScheme,
    SymmetricDPS,
)
from ..core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from ..core.task import LinkRef
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry

__all__ = [
    "AdmissionDisagreement",
    "AdmissionDiffReport",
    "run_trial",
    "run_admission_campaign",
]

#: Node population per trial; small enough that links saturate and
#: rejections actually occur, large enough for link diversity.
_NODES = tuple(f"n{i}" for i in range(6))

#: One name that is never registered, to exercise UNKNOWN_NODE.
_GHOST_NODE = "ghost"


def _schemes() -> tuple[DeadlinePartitioningScheme, ...]:
    """Fresh scheme instances (schemes are stateless, but cheap to make)."""
    return (
        SymmetricDPS(),
        AsymmetricDPS(),
        UtilizationDPS(),
        LaxityDPS(),
        SearchDPS(max_probes=12, strict=True),
    )


def _draw_spec(rng: np.random.Generator) -> ChannelSpec:
    """One channel spec; mixes paper-shaped, uniform and adversarial."""
    shape = int(rng.integers(0, 10))
    if shape < 4:
        # Figure 18.5 workload: C=3, P=100, d in the paper's menu.
        deadline = int(rng.choice((20, 40, 100)))
        return ChannelSpec(period=100, capacity=3, deadline=deadline)
    if shape < 8:
        period = int(rng.integers(4, 81))
        capacity = int(rng.integers(1, max(2, period // 3)))
        deadline = int(rng.integers(1, 2 * period))
        return ChannelSpec(period=period, capacity=capacity, deadline=deadline)
    # Adversarial: fat capacity, tight deadline -- often only feasible
    # under one particular split, sometimes under none.
    period = int(rng.integers(10, 41))
    capacity = int(rng.integers(period // 4 + 1, period // 2 + 1))
    deadline = int(rng.integers(capacity, period + 1))
    return ChannelSpec(period=period, capacity=capacity, deadline=deadline)


@dataclass(frozen=True, slots=True)
class AdmissionDisagreement:
    """First divergence of one trial, with replay coordinates."""

    trial: int
    op_index: int
    dps: str
    detail: str

    def reproduce_hint(self, seed: int) -> str:
        return f"run_trial(seed={seed}, trial={self.trial})"


@dataclass(frozen=True, slots=True)
class AdmissionDiffReport:
    """Outcome of one cached-vs-naive admission campaign."""

    trials: int
    seed: int
    ops_per_trial: int
    decisions: int
    accepts: int
    rejects: int
    releases: int
    disagreements: tuple[AdmissionDisagreement, ...]
    disagreement_count: int

    @property
    def ok(self) -> bool:
        """True when cached and from-scratch admission never diverged."""
        return self.disagreement_count == 0

    def summary(self) -> str:
        status = "OK" if self.ok else "DISAGREEMENTS FOUND"
        lines = [
            f"admission diff campaign {status}: {self.trials} trials, "
            f"seed {self.seed}, {self.ops_per_trial} ops/trial",
            f"  {self.decisions} decisions compared "
            f"({self.accepts} accepts, {self.rejects} rejects, "
            f"{self.releases} releases)",
        ]
        for disagreement in self.disagreements:
            lines.append(
                f"  MISMATCH trial={disagreement.trial} "
                f"op={disagreement.op_index} dps={disagreement.dps}: "
                f"{disagreement.detail}"
            )
            lines.append(
                f"    reproduce: {disagreement.reproduce_hint(self.seed)}"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "ops_per_trial": self.ops_per_trial,
            "decisions": self.decisions,
            "accepts": self.accepts,
            "rejects": self.rejects,
            "releases": self.releases,
            "disagreement_count": self.disagreement_count,
            "disagreements": [
                {
                    "trial": d.trial,
                    "op_index": d.op_index,
                    "dps": d.dps,
                    "detail": d.detail,
                }
                for d in self.disagreements
            ],
            "ok": self.ok,
        }


def _links_of(source: str, destination: str) -> tuple[LinkRef, LinkRef]:
    return LinkRef.uplink(source), LinkRef.downlink(destination)


def _compare_links(
    cached: AdmissionController,
    naive: AdmissionController,
    links: tuple[LinkRef, ...],
) -> str | None:
    """Per-link parity of the two states *and* the cache itself."""
    for link in links:
        load_c = cached.state.link_load(link)
        load_n = naive.state.link_load(link)
        if load_c != load_n:
            return f"link_load({link}) cached={load_c} naive={load_n}"
        util_c = cached.state.link_utilization(link)
        util_n = naive.state.link_utilization(link)
        if util_c != util_n:
            return f"link_utilization({link}) cached={util_c} naive={util_n}"
        cache = cached.cache
        assert cache is not None
        if cache.link_load(link) != load_c:
            return (
                f"cache drift on {link}: cache load "
                f"{cache.link_load(link)} != state load {load_c}"
            )
        if cache.link_utilization(link) != util_c:
            return (
                f"cache drift on {link}: cache util "
                f"{cache.link_utilization(link)} != state util {util_c}"
            )
    return None


def run_trial(
    seed: int, trial: int, ops: int = 40
) -> tuple[AdmissionDisagreement | None, dict[str, int]]:
    """Replay one trial; returns (first disagreement or None, op counts).

    Pure in ``(seed, trial, ops)``: the coordinates recorded in an
    :class:`AdmissionDisagreement` reproduce the exact divergence.
    """
    rng = RngRegistry(seed).fork(trial).stream("admission-diff")
    dps = _schemes()[trial % len(_schemes())]
    cached = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=True
    )
    naive = AdmissionController(
        SystemState(nodes=_NODES), dps, use_cache=False
    )
    counts = {"decisions": 0, "accepts": 0, "rejects": 0, "releases": 0}
    touched: set[LinkRef] = set()
    for op_index in range(ops):
        roll = int(rng.integers(0, 10))
        active = sorted(cached.state.channels)
        if roll < 3 and active:
            victim = int(active[int(rng.integers(0, len(active)))])
            cached.release(victim)
            naive.release(victim)
            counts["releases"] += 1
        else:
            source = str(rng.choice(_NODES))
            if roll == 9:
                destination = _GHOST_NODE
            else:
                others = [n for n in _NODES if n != source]
                destination = str(rng.choice(others))
            spec = _draw_spec(rng)
            decision_c = cached.request(source, destination, spec)
            decision_n = naive.request(source, destination, spec)
            counts["decisions"] += 1
            if decision_c.accepted != decision_n.accepted:
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            f"{source}->{destination} {spec}: cached "
                            f"accepted={decision_c.accepted} naive "
                            f"accepted={decision_n.accepted}"
                        ),
                    ),
                    counts,
                )
            if decision_c.reason != decision_n.reason:
                return (
                    AdmissionDisagreement(
                        trial=trial,
                        op_index=op_index,
                        dps=dps.name,
                        detail=(
                            f"{source}->{destination} {spec}: cached "
                            f"reason={decision_c.reason} naive "
                            f"reason={decision_n.reason}"
                        ),
                    ),
                    counts,
                )
            if decision_c.accepted:
                counts["accepts"] += 1
                if (
                    decision_c.channel.channel_id
                    != decision_n.channel.channel_id
                ):
                    return (
                        AdmissionDisagreement(
                            trial=trial,
                            op_index=op_index,
                            dps=dps.name,
                            detail=(
                                "channel_id cached="
                                f"{decision_c.channel.channel_id} naive="
                                f"{decision_n.channel.channel_id}"
                            ),
                        ),
                        counts,
                    )
                touched.update(_links_of(source, destination))
            else:
                counts["rejects"] += 1
        mismatch = _compare_links(cached, naive, tuple(sorted(touched)))
        if mismatch is not None:
            return (
                AdmissionDisagreement(
                    trial=trial,
                    op_index=op_index,
                    dps=dps.name,
                    detail=mismatch,
                ),
                counts,
            )
    # End-of-trial: the rejection histograms must agree too.
    if (
        cached.accept_count != naive.accept_count
        or cached.reject_count != naive.reject_count
        or cached.rejections_by_reason != naive.rejections_by_reason
    ):
        return (
            AdmissionDisagreement(
                trial=trial,
                op_index=ops,
                dps=dps.name,
                detail=(
                    f"counters diverged: cached ({cached.accept_count}, "
                    f"{cached.reject_count}, {cached.rejections_by_reason}) "
                    f"naive ({naive.accept_count}, {naive.reject_count}, "
                    f"{naive.rejections_by_reason})"
                ),
            ),
            counts,
        )
    return None, counts


def run_admission_campaign(
    trials: int,
    seed: int,
    *,
    ops_per_trial: int = 40,
    disagreement_limit: int = 20,
) -> AdmissionDiffReport:
    """Run an N-trial cached-vs-from-scratch admission campaign."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if ops_per_trial <= 0:
        raise ConfigurationError(
            f"ops_per_trial must be positive, got {ops_per_trial}"
        )
    disagreements: list[AdmissionDisagreement] = []
    disagreement_count = 0
    totals = {"decisions": 0, "accepts": 0, "rejects": 0, "releases": 0}
    for trial in range(trials):
        disagreement, counts = run_trial(seed, trial, ops=ops_per_trial)
        for key in totals:
            totals[key] += counts[key]
        if disagreement is not None:
            disagreement_count += 1
            if len(disagreements) < disagreement_limit:
                disagreements.append(disagreement)
    return AdmissionDiffReport(
        trials=trials,
        seed=seed,
        ops_per_trial=ops_per_trial,
        decisions=totals["decisions"],
        accepts=totals["accepts"],
        rejects=totals["rejects"],
        releases=totals["releases"],
        disagreements=tuple(disagreements),
        disagreement_count=disagreement_count,
    )
