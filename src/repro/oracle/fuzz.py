"""Seeded random task-set families driving differential campaigns.

A campaign draws task sets from several *families* -- each stressing a
different region of the admission test's input space -- and runs the
three-way :func:`repro.oracle.differential.cross_check` on every draw:

``uniform``
    independent uniform draws of ``(P, C, d)``; the broad sweep. Mixes
    feasible, infeasible and over-utilized sets.
``harmonic``
    harmonic periods (divisor chains), where busy periods stay short
    and verdicts flip on single-slot margins.
``paper``
    the Figure 18.5 workload shape (``C=3, P=100``) with the paper's
    deadline-partition values (``d in {20, 40, 100}``), sized to
    straddle the exact per-link saturation boundaries (6 channels fit
    at ``d=20``, 13 at ``d=40``).
``adversarial``
    utilization forced into ``[0.9, 1.1]`` with tight deadlines
    (``d <= P``) -- the band where every oracle works hardest and where
    the naive/fast/timeline verdicts are most likely to diverge if a
    reduction is subtly wrong.

Every draw is a pure function of ``(family, root seed, trial index)``
via :class:`repro.sim.rng.RngRegistry`, so any disagreement a campaign
reports can be reproduced in isolation with
:func:`generate_task_set` and the recorded coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.task import LinkRef, LinkTask
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from .differential import (
    DEFAULT_MAX_HORIZON,
    Agreement,
    OracleVerdict,
    cross_check,
)

__all__ = [
    "FAMILIES",
    "generate_task_set",
    "Disagreement",
    "CampaignReport",
    "run_campaign",
]

#: All known family names, in the order campaigns cycle through them.
FAMILIES: tuple[str, ...] = ("uniform", "harmonic", "paper", "adversarial")

_LINK = LinkRef.uplink("oracle-fuzz")

#: Harmonic period menu: every value divides 120, keeping hyperperiods
#: (and therefore replay horizons) tightly bounded.
_HARMONIC_PERIODS = (5, 10, 15, 30, 60, 120)


def _make(period: int, capacity: int, deadline: int, index: int) -> LinkTask:
    return LinkTask(
        link=_LINK,
        period=period,
        capacity=capacity,
        deadline=deadline,
        channel_id=index,
    )


def _uniform(rng: np.random.Generator) -> list[LinkTask]:
    n = int(rng.integers(1, 9))
    tasks = []
    for index in range(n):
        period = int(rng.integers(2, 61))
        capacity = int(rng.integers(1, period + 1))
        deadline = int(rng.integers(capacity, 121))
        tasks.append(_make(period, capacity, deadline, index))
    return tasks


def _harmonic(rng: np.random.Generator) -> list[LinkTask]:
    n = int(rng.integers(1, 7))
    tasks = []
    for index in range(n):
        period = int(rng.choice(_HARMONIC_PERIODS))
        capacity = int(rng.integers(1, max(2, period // 2)))
        deadline = int(rng.integers(capacity, 2 * period + 1))
        tasks.append(_make(period, capacity, deadline, index))
    return tasks


def _paper(rng: np.random.Generator) -> list[LinkTask]:
    # One switch-port's view of the Figure 18.5 workload: n identical
    # C=3, P=100 channels whose per-link deadline came out of SDPS
    # (d=40 halved -> 20), ADPS, or an unpartitioned d=P fallback.
    n = int(rng.integers(1, 15))
    deadlines = rng.choice((20, 40, 100), size=n)
    return [
        _make(100, 3, int(deadlines[index]), index) for index in range(n)
    ]


def _adversarial(rng: np.random.Generator) -> list[LinkTask]:
    n = int(rng.integers(2, 7))
    periods = [int(rng.choice(_HARMONIC_PERIODS)) for _ in range(n)]
    capacities = [1] * n
    target = float(rng.uniform(0.9, 1.1))
    # Greedily pour capacity into random tasks until the target band.
    for _ in range(1000):
        utilization = sum(c / p for c, p in zip(capacities, periods))
        if utilization >= target:
            break
        index = int(rng.integers(0, n))
        if capacities[index] < periods[index]:
            capacities[index] += 1
    tasks = []
    for index in range(n):
        deadline = int(rng.integers(capacities[index], periods[index] + 1))
        tasks.append(
            _make(periods[index], capacities[index], deadline, index)
        )
    return tasks


_GENERATORS = {
    "uniform": _uniform,
    "harmonic": _harmonic,
    "paper": _paper,
    "adversarial": _adversarial,
}


def generate_task_set(family: str, seed: int, trial: int) -> list[LinkTask]:
    """The exact task set campaign trial ``trial`` drew from ``family``.

    Pure in ``(family, seed, trial)``: use the coordinates recorded in a
    :class:`Disagreement` to replay a single failing draw under a
    debugger without rerunning the campaign.
    """
    if family not in _GENERATORS:
        raise ConfigurationError(
            f"unknown fuzz family {family!r} (have {sorted(_GENERATORS)})"
        )
    rng = RngRegistry(seed).fork(trial).stream(f"oracle-{family}")
    return _GENERATORS[family](rng)


@dataclass(frozen=True, slots=True)
class Disagreement:
    """Reproduction coordinates plus the verdict for one failed trial."""

    family: str
    trial: int
    verdict: OracleVerdict

    def reproduce_hint(self, seed: int) -> str:
        return (
            f"generate_task_set({self.family!r}, seed={seed}, "
            f"trial={self.trial})"
        )


@dataclass(frozen=True, slots=True)
class CampaignReport:
    """Outcome of one differential fuzz campaign."""

    trials: int
    seed: int
    families: tuple[str, ...]
    #: trial counts per agreement class (keys: Agreement values).
    counts: dict[str, int]
    #: recorded mismatches (capped at ``disagreement_limit``).
    disagreements: tuple[Disagreement, ...]
    #: total mismatching trials, even beyond the recording cap.
    disagreement_count: int

    @property
    def ok(self) -> bool:
        """True when no trial produced an oracle contradiction."""
        return self.disagreement_count == 0

    @property
    def capped(self) -> int:
        return self.counts.get(Agreement.HORIZON_CAPPED.value, 0)

    def summary(self) -> str:
        status = "OK" if self.ok else "DISAGREEMENTS FOUND"
        parts = ", ".join(
            f"{name}={count}" for name, count in sorted(self.counts.items())
        )
        lines = [
            f"oracle campaign {status}: {self.trials} trials, "
            f"seed {self.seed}, families {'/'.join(self.families)}",
            f"  {parts}",
        ]
        for disagreement in self.disagreements:
            lines.append(
                f"  MISMATCH family={disagreement.family} "
                f"trial={disagreement.trial}: "
                f"{disagreement.verdict.summary()}"
            )
            lines.append(
                f"    reproduce: {disagreement.reproduce_hint(self.seed)}"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "families": list(self.families),
            "counts": dict(sorted(self.counts.items())),
            "disagreement_count": self.disagreement_count,
            "disagreements": [
                {
                    "family": d.family,
                    "trial": d.trial,
                    "detail": d.verdict.detail,
                    "tasks": [
                        {
                            "period": t.period,
                            "capacity": t.capacity,
                            "deadline": t.deadline,
                        }
                        for t in d.verdict.tasks
                    ],
                }
                for d in self.disagreements
            ],
            "ok": self.ok,
        }


def run_campaign(
    trials: int,
    seed: int,
    families: Sequence[str] = FAMILIES,
    *,
    check_naive: bool = True,
    max_horizon: int = DEFAULT_MAX_HORIZON,
    disagreement_limit: int = 20,
) -> CampaignReport:
    """Run an N-trial differential campaign.

    Trials cycle round-robin through ``families``; trial ``i`` draws
    :func:`generate_task_set(families[i % len], seed, i) <generate_task_set>`
    and cross-checks it. The report is a pure function of the arguments.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    families = tuple(families)
    for family in families:
        if family not in _GENERATORS:
            raise ConfigurationError(
                f"unknown fuzz family {family!r} (have {sorted(_GENERATORS)})"
            )
    counts: dict[str, int] = {}
    disagreements: list[Disagreement] = []
    disagreement_count = 0
    for trial in range(trials):
        family = families[trial % len(families)]
        tasks = generate_task_set(family, seed, trial)
        verdict = cross_check(
            tasks, check_naive=check_naive, max_horizon=max_horizon
        )
        key = verdict.agreement.value
        counts[key] = counts.get(key, 0) + 1
        if verdict.agreement.is_disagreement:
            disagreement_count += 1
            if len(disagreements) < disagreement_limit:
                disagreements.append(
                    Disagreement(family=family, trial=trial, verdict=verdict)
                )
    return CampaignReport(
        trials=trials,
        seed=seed,
        families=families,
        counts=counts,
        disagreements=tuple(disagreements),
        disagreement_count=disagreement_count,
    )
