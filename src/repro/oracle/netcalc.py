"""Second oracle: network-calculus bounds vs EDF analysis vs simulation.

The repo's first oracle (:mod:`repro.oracle.differential`) cross-checks
*admission verdicts*; this one cross-checks *delay bounds*. Three
independent answers to "how late can a frame be?" are compared:

1. the network-calculus bound -- token-bucket arrival curves against
   rate-latency residual service, horizontal deviation
   (:mod:`repro.netcalc`); valid for any work-conserving arbitration,
   so in particular for per-hop EDF;
2. the paper-style bound -- Eq. 18.1's ``d_i * slot + T_latency``
   promised by the admission test;
3. the *measured* per-frame delays of the actual discrete-event
   simulation, extracted from the trace
   (:func:`repro.analysis.timeline.extract_frame_delays`).

Every measured delay must sit below both analytical bounds; the two
frameworks share no code and no model assumptions beyond
work-conservation, so agreement across a fuzz campaign is strong
evidence that neither is silently wrong. The per-link leg
(:func:`netcalc_cross_check`) additionally replays the abstract EDF
schedule and checks (a) every worst response against the curve bound
and (b) the one-sided admission implication: the netcalc test is
*sufficient only* (it over-approximates interference), so
"netcalc-feasible" must imply the exact test and the replay agree
feasible -- the converse direction failing is expected conservatism,
never a bug.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..analysis.timeline import extract_frame_delays
from ..core.channel import ChannelSpec
from ..core.feasibility import FeasibilityReport, is_feasible, utilization
from ..core.partitioning import AsymmetricDPS, SymmetricDPS
from ..core.task import LinkTask
from ..errors import ConfigurationError
from ..netcalc.bounds import PathBound, link_delay_bound, path_bound_ns
from ..sim.rng import RngRegistry
from .differential import DEFAULT_MAX_HORIZON
from .edf_timeline import (
    TimelineResult,
    default_release_horizon,
    simulate_edf,
)

__all__ = [
    "TOPOLOGIES",
    "NetcalcAgreement",
    "NetcalcLinkVerdict",
    "netcalc_cross_check",
    "BoundViolation",
    "LinkDisagreement",
    "NetcalcTrialResult",
    "run_netcalc_trial",
    "NetcalcCampaignReport",
    "run_netcalc_campaign",
]

#: Topologies the simulation campaign cycles through.
TOPOLOGIES: tuple[str, ...] = ("star", "fabric", "fat-tree")

#: Period menu for campaign workloads: small lcm keeps hyperperiods
#: (and busy periods of the per-link replay leg) tightly bounded.
_PERIODS = (20, 25, 40, 50, 100)

#: Messages each source emits per simulation trial: the first message
#: is the critical instant the analysis reasons about; the rest
#: exercise steady state.
_MESSAGES_PER_TRIAL = 3


class NetcalcAgreement(enum.Enum):
    """Outcome classes of one per-link three-way check."""

    #: netcalc says feasible; the exact test and the replay agree.
    AGREE_FEASIBLE = "agree-feasible"
    #: neither framework certifies the set; the exact test rejects it.
    AGREE_INFEASIBLE = "agree-infeasible"
    #: netcalc cannot certify the set but the exact test admits it --
    #: expected one-sided conservatism, not a disagreement.
    NETCALC_CONSERVATIVE = "netcalc-conservative"
    #: a replayed worst response exceeded its curve bound: the curve
    #: algebra (or the replay) is wrong.
    BOUND_VIOLATED = "bound-violated"
    #: netcalc certified a set the exact test or the replay rejects:
    #: the sufficiency argument is broken.
    SOUNDNESS_MISMATCH = "soundness-mismatch"
    #: the replay horizon exceeded the cap; the check was not completed.
    HORIZON_CAPPED = "horizon-capped"

    @property
    def is_disagreement(self) -> bool:
        return self in (
            NetcalcAgreement.BOUND_VIOLATED,
            NetcalcAgreement.SOUNDNESS_MISMATCH,
        )


@dataclass(frozen=True, slots=True)
class NetcalcLinkVerdict:
    """Structured result of one per-link three-way check."""

    tasks: tuple[LinkTask, ...]
    #: per-task curve bounds in slots, index-aligned with ``tasks``
    #: (``None`` = unbounded, only possible when ``U > 1``).
    bounds_slots: tuple[Fraction | None, ...]
    #: netcalc's admission claim: every bound finite and <= deadline.
    netcalc_feasible: bool
    analytic: FeasibilityReport
    #: ``None`` when the replay was skipped (``U > 1`` or capped).
    replay: TimelineResult | None
    agreement: NetcalcAgreement
    detail: str

    @property
    def ok(self) -> bool:
        return not self.agreement.is_disagreement


def netcalc_cross_check(
    tasks: Sequence[LinkTask],
    *,
    max_horizon: int = DEFAULT_MAX_HORIZON,
) -> NetcalcLinkVerdict:
    """Three-way check of one link's task set.

    Legs: (1) curve bound per task vs the EDF replay's worst observed
    response (the bound holds for *any* work-conserving policy, so a
    violation convicts the algebra); (2) netcalc-feasible must imply
    both the exact demand test and the replay agree feasible (the
    sufficiency direction); the reverse gap is counted as
    ``NETCALC_CONSERVATIVE``.
    """
    tasks = tuple(tasks)
    if not tasks:
        raise ConfigurationError("netcalc_cross_check needs at least one task")
    if len({t.channel_id for t in tasks}) != len(tasks):
        raise ConfigurationError(
            "tasks must have unique channel IDs for per-channel bounds"
        )
    analytic = is_feasible(tasks)
    bounds = tuple(
        link_delay_bound(tasks, task.channel_id) for task in tasks
    )
    netcalc_feasible = all(
        bound is not None and bound <= task.deadline
        for bound, task in zip(bounds, tasks)
    )

    if utilization(tasks) > 1:
        # No finite curve bound exists for any flow and the exact test
        # rejects on utilization alone; nothing to replay.
        return NetcalcLinkVerdict(
            tasks=tasks,
            bounds_slots=bounds,
            netcalc_feasible=netcalc_feasible,
            analytic=analytic,
            replay=None,
            agreement=NetcalcAgreement.AGREE_INFEASIBLE,
            detail=f"U={float(analytic.link_utilization):.3f} > 1: "
            "both frameworks reject, no finite bounds",
        )

    horizon = default_release_horizon(tasks)
    if horizon > max_horizon:
        return NetcalcLinkVerdict(
            tasks=tasks,
            bounds_slots=bounds,
            netcalc_feasible=netcalc_feasible,
            analytic=analytic,
            replay=None,
            agreement=NetcalcAgreement.HORIZON_CAPPED,
            detail=f"busy-period horizon {horizon} > cap {max_horizon}",
        )
    replay = simulate_edf(tasks, horizon, stop_on_miss=False)

    for index, (bound, stats) in enumerate(zip(bounds, replay.task_stats)):
        if bound is not None and stats.worst_response > bound:
            return NetcalcLinkVerdict(
                tasks=tasks,
                bounds_slots=bounds,
                netcalc_feasible=netcalc_feasible,
                analytic=analytic,
                replay=replay,
                agreement=NetcalcAgreement.BOUND_VIOLATED,
                detail=(
                    f"task {index} (C={tasks[index].capacity}, "
                    f"P={tasks[index].period}): replayed worst response "
                    f"{stats.worst_response} > curve bound {bound} slots"
                ),
            )

    if netcalc_feasible and not (analytic.feasible and replay.schedulable):
        return NetcalcLinkVerdict(
            tasks=tasks,
            bounds_slots=bounds,
            netcalc_feasible=netcalc_feasible,
            analytic=analytic,
            replay=replay,
            agreement=NetcalcAgreement.SOUNDNESS_MISMATCH,
            detail=(
                "netcalc certifies the set but "
                f"is_feasible={analytic.feasible}, "
                f"replay schedulable={replay.schedulable}"
            ),
        )

    if netcalc_feasible:
        agreement = NetcalcAgreement.AGREE_FEASIBLE
        detail = "all bounds within deadlines; exact test and replay agree"
    elif analytic.feasible:
        agreement = NetcalcAgreement.NETCALC_CONSERVATIVE
        detail = (
            "netcalc cannot certify the set (expected one-sided gap); "
            "replayed responses still respect every finite bound"
        )
    else:
        agreement = NetcalcAgreement.AGREE_INFEASIBLE
        detail = "neither framework certifies the set"
    return NetcalcLinkVerdict(
        tasks=tasks,
        bounds_slots=bounds,
        netcalc_feasible=netcalc_feasible,
        analytic=analytic,
        replay=replay,
        agreement=agreement,
        detail=detail,
    )


# -- simulation trials -----------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoundViolation:
    """One measured frame delay exceeding an analytical bound."""

    topology: str
    trial: int
    channel_id: int
    #: which bound failed: "netcalc", "paper", or "extraction" (the
    #: trace-extracted samples diverged from the metrics collector's).
    oracle: str
    measured_ns: int
    bound_ns: int
    #: delivery time of the offending frame (ns), -1 for extraction.
    time_ns: int


@dataclass(frozen=True, slots=True)
class LinkDisagreement:
    """A per-link three-way check that failed during a trial."""

    topology: str
    trial: int
    link: str
    detail: str


@dataclass(frozen=True, slots=True)
class NetcalcTrialResult:
    """Everything one simulation trial checked."""

    topology: str
    trial: int
    channels_checked: int
    frames_checked: int
    links_checked: int
    violations: tuple[BoundViolation, ...]
    disagreements: tuple[LinkDisagreement, ...]
    capped: int

    @property
    def ok(self) -> bool:
        return not self.violations and not self.disagreements


def _paper_bound_ns(deadline_slots: int, hops: int, phy) -> int:
    """Generalized Eq. 18.1: ``d * slot + T_latency(hops)``."""
    t_latency = (
        hops * (phy.propagation_ns + phy.max_frame_ns)
        + (hops - 1) * phy.switch_processing_ns
    )
    return deadline_slots * phy.slot_ns + t_latency


def _check_run(
    topology: str,
    trial: int,
    phy,
    trace,
    metrics,
    bounds: dict[int, PathBound],
    channel_info: dict[int, tuple[int, int]],
) -> tuple[int, list[BoundViolation]]:
    """Compare every delivered frame against both analytical bounds.

    ``channel_info`` maps channel ID -> (end-to-end deadline in slots,
    hop count). Returns (frames checked, violations found).
    """
    violations: list[BoundViolation] = []
    deliveries = extract_frame_delays(trace)
    frames_checked = 0
    for channel_id, frames in sorted(deliveries.items()):
        bound = bounds.get(channel_id)
        if bound is None or channel_id not in channel_info:
            raise ConfigurationError(
                f"{topology} trial {trial}: delivered channel {channel_id} "
                "has no computed bound -- the admission plumbing is broken"
            )
        deadline_slots, hops = channel_info[channel_id]
        netcalc_ns = path_bound_ns(
            bound, phy.slot_ns, phy.propagation_ns, phy.switch_processing_ns
        )
        paper_ns = _paper_bound_ns(deadline_slots, hops, phy)
        for frame in frames:
            frames_checked += 1
            if frame.delay_ns > netcalc_ns:
                violations.append(
                    BoundViolation(
                        topology=topology,
                        trial=trial,
                        channel_id=channel_id,
                        oracle="netcalc",
                        measured_ns=frame.delay_ns,
                        bound_ns=netcalc_ns,
                        time_ns=frame.time_ns,
                    )
                )
            if frame.delay_ns > paper_ns:
                violations.append(
                    BoundViolation(
                        topology=topology,
                        trial=trial,
                        channel_id=channel_id,
                        oracle="paper",
                        measured_ns=frame.delay_ns,
                        bound_ns=paper_ns,
                        time_ns=frame.time_ns,
                    )
                )
        # Independent extraction paths must agree frame-for-frame: the
        # trace records and the metrics collector observed the same run.
        trace_delays = sorted(f.delay_ns for f in frames)
        metric_delays = sorted(metrics.delay_samples(channel_id))
        if trace_delays != metric_delays:
            violations.append(
                BoundViolation(
                    topology=topology,
                    trial=trial,
                    channel_id=channel_id,
                    oracle="extraction",
                    measured_ns=len(trace_delays),
                    bound_ns=len(metric_delays),
                    time_ns=-1,
                )
            )
    return frames_checked, violations


def _draw_pair(rng, names: list[str]) -> tuple[str, str]:
    source = names[int(rng.integers(0, len(names)))]
    destination = source
    while destination == source:
        destination = names[int(rng.integers(0, len(names)))]
    return source, destination


def _star_trial(seed: int, trial: int) -> NetcalcTrialResult:
    from ..network.topology import build_star

    rng = RngRegistry(seed).fork(trial).stream("netcalc-star")
    names = [f"n{i}" for i in range(int(rng.integers(4, 8)))]
    dps = SymmetricDPS() if trial % 2 == 0 else AsymmetricDPS()
    net = build_star(
        names, dps=dps, trace_enabled=True, record_delays=True
    )
    for _ in range(int(rng.integers(4, 13))):
        source, destination = _draw_pair(rng, names)
        capacity = int(rng.integers(1, 4))
        period = int(_PERIODS[int(rng.integers(0, len(_PERIODS)))])
        deadline = int(rng.integers(2 * capacity, period + 1))
        net.establish_analytically(
            source, destination, ChannelSpec(period, capacity, deadline)
        )
    state = net.admission.state
    bounds = state.channel_delay_bounds()
    channel_info = {
        channel_id: (channel.spec.deadline, 2)
        for channel_id, channel in state.channels.items()
    }
    net.start_all_sources(stop_after_messages=_MESSAGES_PER_TRIAL)
    net.sim.run()
    frames_checked, violations = _check_run(
        "star", trial, net.phy, net.trace, net.metrics, bounds, channel_info
    )
    disagreements, capped, links_checked = _check_links(
        "star",
        trial,
        [(str(link), state.tasks_on(link)) for link in state.occupied_links()],
    )
    return NetcalcTrialResult(
        topology="star",
        trial=trial,
        channels_checked=len(bounds),
        frames_checked=frames_checked,
        links_checked=links_checked,
        violations=tuple(violations),
        disagreements=tuple(disagreements),
        capped=capped,
    )


def _fabric_trial(seed: int, trial: int) -> NetcalcTrialResult:
    from ..multiswitch.fabric import SwitchFabric
    from ..multiswitch.partitioning import (
        MultiHopProportional,
        MultiHopSymmetric,
    )
    from ..multiswitch.simnet import build_fabric_network

    rng = RngRegistry(seed).fork(trial).stream("netcalc-fabric")
    fabric = SwitchFabric.chain(2, nodes_per_switch=3)
    dps = MultiHopSymmetric() if trial % 2 == 0 else MultiHopProportional()
    net = build_fabric_network(
        fabric, dps=dps, trace_enabled=True, record_delays=True
    )
    names = sorted(fabric.nodes)
    for _ in range(int(rng.integers(4, 13))):
        source, destination = _draw_pair(rng, names)
        capacity = int(rng.integers(1, 4))
        period = int(_PERIODS[int(rng.integers(0, len(_PERIODS)))])
        # three hops is the chain's worst case; d >= 3C keeps the k-way
        # split possible so rejections exercise load, not Eq. 18.9.
        deadline = int(rng.integers(3 * capacity, period + 1))
        net.establish(
            source, destination, ChannelSpec(period, capacity, deadline)
        )
    admission = net.admission
    bounds = admission.channel_delay_bounds()
    channel_info = {
        channel_id: (decision.spec.deadline, len(decision.links))
        for channel_id, decision in admission.decisions.items()
    }
    net.start_all_sources(stop_after_messages=_MESSAGES_PER_TRIAL)
    net.sim.run()
    frames_checked, violations = _check_run(
        "fabric", trial, net.phy, net.trace, net.metrics, bounds, channel_info
    )
    disagreements, capped, links_checked = _check_links(
        "fabric",
        trial,
        [
            (f"{link.tail}->{link.head}", admission.tasks_on(link))
            for link in admission.occupied_links()
        ],
    )
    return NetcalcTrialResult(
        topology="fabric",
        trial=trial,
        channels_checked=len(bounds),
        frames_checked=frames_checked,
        links_checked=links_checked,
        violations=tuple(violations),
        disagreements=tuple(disagreements),
        capped=capped,
    )


def _check_links(
    topology: str,
    trial: int,
    links: list[tuple[str, tuple[LinkTask, ...]]],
) -> tuple[list[LinkDisagreement], int, int]:
    """Per-link three-way checks over every occupied link of a trial."""
    disagreements: list[LinkDisagreement] = []
    capped = 0
    for name, tasks in links:
        verdict = netcalc_cross_check(tasks)
        if verdict.agreement is NetcalcAgreement.HORIZON_CAPPED:
            capped += 1
        elif verdict.agreement.is_disagreement:
            disagreements.append(
                LinkDisagreement(
                    topology=topology,
                    trial=trial,
                    link=name,
                    detail=f"{verdict.agreement.value}: {verdict.detail}",
                )
            )
    return disagreements, capped, len(links)


def _fat_tree_trial(seed: int, trial: int) -> NetcalcTrialResult:
    from ..multiswitch.graph import build_fat_tree
    from ..multiswitch.partitioning import (
        MultiHopProportional,
        MultiHopSymmetric,
    )
    from ..multiswitch.simnet import build_fabric_network

    rng = RngRegistry(seed).fork(trial).stream("netcalc-fat-tree")
    # Standard-density k=4 fat-tree: 20 switches, 16 hosts, inter-pod
    # paths cross 6 links through the seeded multipath tie-break.
    fabric = build_fat_tree(4, routing_seed=trial % 3)
    dps = MultiHopSymmetric() if trial % 2 == 0 else MultiHopProportional()
    net = build_fabric_network(
        fabric, dps=dps, trace_enabled=True, record_delays=True
    )
    names = sorted(fabric.nodes)
    for _ in range(int(rng.integers(4, 13))):
        source, destination = _draw_pair(rng, names)
        capacity = int(rng.integers(1, 4))
        period = int(_PERIODS[int(rng.integers(0, len(_PERIODS)))])
        # six hops is the fat-tree's worst case; d >= 6C keeps the
        # k-way split possible so rejections exercise load, not
        # Eq. 18.9 (6C <= 18 < min period 20, so the range is never
        # empty).
        deadline = int(rng.integers(6 * capacity, period + 1))
        net.establish(
            source, destination, ChannelSpec(period, capacity, deadline)
        )
    admission = net.admission
    bounds = admission.channel_delay_bounds()
    channel_info = {
        channel_id: (decision.spec.deadline, len(decision.links))
        for channel_id, decision in admission.decisions.items()
    }
    net.start_all_sources(stop_after_messages=_MESSAGES_PER_TRIAL)
    net.sim.run()
    frames_checked, violations = _check_run(
        "fat-tree", trial, net.phy, net.trace, net.metrics, bounds,
        channel_info,
    )
    disagreements, capped, links_checked = _check_links(
        "fat-tree",
        trial,
        [
            (f"{link.tail}->{link.head}", admission.tasks_on(link))
            for link in admission.occupied_links()
        ],
    )
    return NetcalcTrialResult(
        topology="fat-tree",
        trial=trial,
        channels_checked=len(bounds),
        frames_checked=frames_checked,
        links_checked=links_checked,
        violations=tuple(violations),
        disagreements=tuple(disagreements),
        capped=capped,
    )


_TRIALS = {
    "star": _star_trial,
    "fabric": _fabric_trial,
    "fat-tree": _fat_tree_trial,
}


def run_netcalc_trial(
    topology: str, seed: int, trial: int
) -> NetcalcTrialResult:
    """Run one simulation trial -- pure in ``(topology, seed, trial)``.

    The reproduction handle for campaign failures: a violation's
    recorded coordinates replay the exact network, workload and
    schedule that produced it.
    """
    runner = _TRIALS.get(topology)
    if runner is None:
        raise ConfigurationError(
            f"unknown topology {topology!r} (have {sorted(_TRIALS)})"
        )
    return runner(seed, trial)


@dataclass(frozen=True, slots=True)
class NetcalcCampaignReport:
    """Outcome of one measured-vs-bound fuzz campaign."""

    trials: int
    seed: int
    topologies: tuple[str, ...]
    channels_checked: int
    frames_checked: int
    links_checked: int
    #: recorded violations/disagreements (capped at the recording limit).
    violations: tuple[BoundViolation, ...]
    disagreements: tuple[LinkDisagreement, ...]
    #: totals, even beyond the recording cap.
    bound_violation_count: int
    admission_disagreement_count: int
    #: per-link checks skipped because their replay horizon was capped.
    capped: int

    @property
    def ok(self) -> bool:
        return (
            self.bound_violation_count == 0
            and self.admission_disagreement_count == 0
        )

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS FOUND"
        lines = [
            f"netcalc campaign {status}: {self.trials} trials, seed "
            f"{self.seed}, topologies {'/'.join(self.topologies)}",
            f"  {self.channels_checked} channels, {self.frames_checked} "
            f"frames measured <= bound, {self.links_checked} links "
            f"three-way checked ({self.capped} capped)",
        ]
        for violation in self.violations:
            lines.append(
                f"  VIOLATION [{violation.oracle}] {violation.topology} "
                f"trial={violation.trial} ch={violation.channel_id}: "
                f"measured {violation.measured_ns} ns > bound "
                f"{violation.bound_ns} ns"
            )
            lines.append(
                f"    reproduce: run_netcalc_trial({violation.topology!r}, "
                f"seed={self.seed}, trial={violation.trial})"
            )
        for disagreement in self.disagreements:
            lines.append(
                f"  MISMATCH {disagreement.topology} "
                f"trial={disagreement.trial} link={disagreement.link}: "
                f"{disagreement.detail}"
            )
            lines.append(
                f"    reproduce: run_netcalc_trial("
                f"{disagreement.topology!r}, seed={self.seed}, "
                f"trial={disagreement.trial})"
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "topologies": list(self.topologies),
            "channels_checked": self.channels_checked,
            "frames_checked": self.frames_checked,
            "links_checked": self.links_checked,
            "bound_violation_count": self.bound_violation_count,
            "admission_disagreement_count": (
                self.admission_disagreement_count
            ),
            "capped": self.capped,
            "violations": [
                {
                    "topology": v.topology,
                    "trial": v.trial,
                    "channel": v.channel_id,
                    "oracle": v.oracle,
                    "measured_ns": v.measured_ns,
                    "bound_ns": v.bound_ns,
                }
                for v in self.violations
            ],
            "disagreements": [
                {
                    "topology": d.topology,
                    "trial": d.trial,
                    "link": d.link,
                    "detail": d.detail,
                }
                for d in self.disagreements
            ],
            "ok": self.ok,
        }


def run_netcalc_campaign(
    trials: int,
    seed: int,
    topologies: Sequence[str] = TOPOLOGIES,
    *,
    record_limit: int = 20,
) -> NetcalcCampaignReport:
    """Run an N-trial measured-vs-bound campaign.

    Trial ``i`` simulates ``topologies[i % len]`` with the workload of
    :func:`run_netcalc_trial(topology, seed, i) <run_netcalc_trial>`;
    the report is a pure function of the arguments. Disagreement
    coordinates printed by :meth:`NetcalcCampaignReport.summary` replay
    a single failing trial in isolation.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    topologies = tuple(topologies)
    for topology in topologies:
        if topology not in _TRIALS:
            raise ConfigurationError(
                f"unknown topology {topology!r} (have {sorted(_TRIALS)})"
            )
    channels = frames = links = capped = 0
    violation_count = disagreement_count = 0
    violations: list[BoundViolation] = []
    disagreements: list[LinkDisagreement] = []
    for trial in range(trials):
        result = run_netcalc_trial(
            topologies[trial % len(topologies)], seed, trial
        )
        channels += result.channels_checked
        frames += result.frames_checked
        links += result.links_checked
        capped += result.capped
        violation_count += len(result.violations)
        disagreement_count += len(result.disagreements)
        room = record_limit - len(violations)
        if room > 0:
            violations.extend(result.violations[:room])
        room = record_limit - len(disagreements)
        if room > 0:
            disagreements.extend(result.disagreements[:room])
    return NetcalcCampaignReport(
        trials=trials,
        seed=seed,
        topologies=topologies,
        channels_checked=channels,
        frames_checked=frames,
        links_checked=links,
        violations=tuple(violations),
        disagreements=tuple(disagreements),
        bound_violation_count=violation_count,
        admission_disagreement_count=disagreement_count,
        capped=capped,
    )
