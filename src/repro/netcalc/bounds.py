"""Delay bounds for admitted channels, from curve algebra.

Per-link model
--------------
One output port is a work-conserving server at rate ``link_rate`` slots
of work per slot of time (nominal 1: one maximum-size frame per
timeslot) whose aggregate service curve is

    ``beta(t) = link_rate * (t - blocking_frames/link_rate)+``

-- the latency term is non-preemption blocking: a frame that just
started transmitting finishes before anything else is considered, so
any arrival can wait up to one frame time (``blocking_frames = 1``)
before the arbiter even looks at it. The service a *single* channel
receives is the blind-multiplexing residual after the token buckets of
every other channel on the link (:meth:`RateLatency.residual`), valid
for any work-conserving arbitration and therefore for the simulator's
per-hop EDF. On an admitted link (``U <= 1``) every channel's residual
has positive rate and its horizontal-deviation bound is finite.

Across hops
-----------
A channel crossing links ``L1 .. Lk`` receives the *convolution* of its
per-hop residuals (pay-bursts-only-once): latency adds, rate takes the
min, and the end-to-end bound is one horizontal deviation of the
*source* bucket against the convolved curve. The subtlety is cross
traffic: a competing channel that already crossed its own uplink
arrives at a shared downstream link *burstier* than at its source --
its burst grows by ``rate x latency`` of every server it crossed
(:meth:`RateLatency.output_burst`). :func:`network_delay_bounds`
propagates these output bursts along every flow's path (the directed
link graph of a switch tree is feed-forward, so the recursion is
well-founded) before forming residuals, keeping the bounds sound
network-wide, not just per-link.

All bounds are in slots (exact :class:`~fractions.Fraction`);
:func:`path_bound_ns` converts to wall-clock nanoseconds by adding the
fixed per-hop propagation and per-switch processing delays exactly as
Eq. 18.1's ``T_latency`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping, Sequence

from ..core.task import LinkTask
from ..errors import ConfigurationError
from .curves import RateLatency, TokenBucket, horizontal_deviation

__all__ = [
    "DEFAULT_BLOCKING_FRAMES",
    "PathBound",
    "link_residual_service",
    "link_delay_bound",
    "network_delay_bounds",
    "path_bound_ns",
]

#: Non-preemption blocking at each output port, in maximum-size frames:
#: a frame whose transmission already started cannot be interrupted.
DEFAULT_BLOCKING_FRAMES = 1


def _base_service(link_rate: Fraction, blocking_frames: int) -> RateLatency:
    if link_rate <= 0:
        raise ConfigurationError(
            f"link_rate must be positive, got {link_rate}"
        )
    if blocking_frames < 0:
        raise ConfigurationError(
            f"blocking_frames must be >= 0, got {blocking_frames}"
        )
    return RateLatency(
        rate=link_rate, latency=Fraction(blocking_frames) / link_rate
    )


def link_residual_service(
    tasks: Sequence[LinkTask],
    channel_id: int,
    *,
    link_rate: Fraction | int = 1,
    blocking_frames: int = DEFAULT_BLOCKING_FRAMES,
) -> RateLatency | None:
    """Residual service of ``channel_id`` on one isolated link.

    Cross traffic is every *other* task's source token bucket (burst
    ``C_j``), which is the per-link abstraction the EDF feasibility
    test and the replay oracle use (synchronous release of fresh
    bursts). Returns ``None`` when the cross rate saturates the link.
    """
    link_rate = Fraction(link_rate)
    service = _base_service(link_rate, blocking_frames)
    cross = TokenBucket(burst=Fraction(0), rate=Fraction(0))
    found = False
    for task in tasks:
        if task.channel_id == channel_id:
            found = True
            continue
        cross = cross + TokenBucket.from_task(task.capacity, task.period)
    if not found:
        raise ConfigurationError(
            f"no task of channel {channel_id} in the given set"
        )
    return service.residual(cross)


def link_delay_bound(
    tasks: Sequence[LinkTask],
    channel_id: int,
    *,
    link_rate: Fraction | int = 1,
    blocking_frames: int = DEFAULT_BLOCKING_FRAMES,
) -> Fraction | None:
    """Per-link delay bound (slots) of ``channel_id``, or ``None``.

    ``None`` means unbounded: the channel's own rate exceeds its
    residual rate (equivalently, total utilization exceeds 1 -- an
    admitted link never hits this).
    """
    residual = link_residual_service(
        tasks,
        channel_id,
        link_rate=link_rate,
        blocking_frames=blocking_frames,
    )
    if residual is None:
        return None
    own = next(t for t in tasks if t.channel_id == channel_id)
    return horizontal_deviation(
        TokenBucket.from_task(own.capacity, own.period), residual
    )


@dataclass(frozen=True, slots=True)
class PathBound:
    """End-to-end network-calculus delay bound of one admitted channel."""

    channel_id: int
    #: slots of work per message (the channel's C).
    capacity: int
    #: number of links traversed.
    hops: int
    #: residual latency ``T_i`` at each hop, in slot order.
    hop_latencies: tuple[Fraction, ...]
    #: residual rate ``R_i`` at each hop.
    hop_rates: tuple[Fraction, ...]
    #: horizontal deviation against the convolved residual (slots).
    bound_slots: Fraction

    def hop_bound_slots(self, index: int) -> Fraction:
        """Stand-alone bound of hop ``index`` (diagnostic; the e2e
        ``bound_slots`` is tighter than the sum of these)."""
        return self.hop_latencies[index] + Fraction(
            self.capacity
        ) / self.hop_rates[index]


def network_delay_bounds(
    flows: Mapping[int, Sequence[Hashable]],
    link_tasks: Mapping[Hashable, Sequence[LinkTask]],
    *,
    link_rate: Fraction | int = 1,
    blocking_frames: int = DEFAULT_BLOCKING_FRAMES,
) -> dict[int, PathBound]:
    """End-to-end bounds for every flow of a feed-forward network.

    Parameters
    ----------
    flows:
        channel ID -> ordered link keys of its routed path.
    link_tasks:
        link key -> the tasks reserved on that link (each task names
        its channel; channels absent from ``flows`` are rejected, since
        their upstream history would be unknown).

    Burstiness propagation makes this a joint computation: the residual
    a flow sees at a link depends on the cross flows' bursts *there*,
    which depend on the latencies those flows accumulated upstream. The
    recursion follows flow paths only (feed-forward), memoized per
    (channel, hop index).
    """
    link_rate = Fraction(link_rate)
    paths: dict[int, tuple[Hashable, ...]] = {
        channel: tuple(links) for channel, links in flows.items()
    }
    for channel, path in paths.items():
        if not path:
            raise ConfigurationError(f"channel {channel} has an empty path")
    rates: dict[int, Fraction] = {}
    capacities: dict[int, int] = {}
    for link, tasks in link_tasks.items():
        for task in tasks:
            if task.channel_id not in paths:
                raise ConfigurationError(
                    f"link {link!r} carries channel {task.channel_id}, "
                    "which is not in the flow map"
                )
            rates[task.channel_id] = Fraction(task.capacity, task.period)
            capacities[task.channel_id] = task.capacity

    #: (channel, hop index) -> residual RateLatency at that hop.
    residuals: dict[tuple[int, int], RateLatency | None] = {}
    in_progress: set[tuple[int, int]] = set()

    def burst_at(channel: int, hop: int) -> Fraction | None:
        """Burst of ``channel`` entering hop ``hop`` of its own path."""
        burst = Fraction(capacities[channel])
        for upstream in range(hop):
            residual = residual_at(channel, upstream)
            if residual is None:
                return None
            burst += rates[channel] * residual.latency
        return burst

    def residual_at(channel: int, hop: int) -> RateLatency | None:
        key = (channel, hop)
        if key in residuals:
            return residuals[key]
        if key in in_progress:  # pragma: no cover - trees are feed-forward
            raise ConfigurationError(
                f"cyclic flow dependency at channel {channel} hop {hop}"
            )
        in_progress.add(key)
        link = paths[channel][hop]
        cross = TokenBucket(burst=Fraction(0), rate=Fraction(0))
        saturated = False
        for task in link_tasks[link]:
            if task.channel_id == channel:
                continue
            their_hop = paths[task.channel_id].index(link)
            their_burst = burst_at(task.channel_id, their_hop)
            if their_burst is None:
                saturated = True
                break
            cross = cross + TokenBucket(
                burst=their_burst, rate=rates[task.channel_id]
            )
        if saturated:
            result = None
        else:
            result = _base_service(link_rate, blocking_frames).residual(
                cross
            )
        in_progress.discard(key)
        residuals[key] = result
        return result

    bounds: dict[int, PathBound] = {}
    for channel, path in paths.items():
        hop_curves: list[RateLatency] = []
        for hop in range(len(path)):
            residual = residual_at(channel, hop)
            if residual is None:
                break
            hop_curves.append(residual)
        if len(hop_curves) < len(path):
            continue  # unbounded (never happens for admitted channels)
        end_to_end = hop_curves[0]
        for curve in hop_curves[1:]:
            end_to_end = end_to_end.convolve(curve)
        bound = horizontal_deviation(
            TokenBucket(
                burst=Fraction(capacities[channel]), rate=rates[channel]
            ),
            end_to_end,
        )
        if bound is None:
            continue
        bounds[channel] = PathBound(
            channel_id=channel,
            capacity=capacities[channel],
            hops=len(path),
            hop_latencies=tuple(c.latency for c in hop_curves),
            hop_rates=tuple(c.rate for c in hop_curves),
            bound_slots=bound,
        )
    return bounds


def path_bound_ns(
    bound: PathBound,
    slot_ns: int,
    propagation_ns: int,
    switch_processing_ns: int,
) -> int:
    """Wall-clock bound: queueing/transmission slots + fixed path delays.

    The curve bound already covers queueing, blocking and transmission
    at every hop (all the variable parts); what remains is the fixed
    wire propagation per link and the store-and-forward processing per
    intermediate switch -- the same decomposition as Eq. 18.1's
    ``T_latency``. Rounded up to whole nanoseconds, so ``measured <=
    bound`` comparisons never fail on the integer conversion.
    """
    exact = (
        bound.bound_slots * slot_ns
        + bound.hops * propagation_ns
        + (bound.hops - 1) * switch_processing_ns
    )
    return -((-exact.numerator) // exact.denominator)
