"""Network-calculus curve algebra and delay bounds (second oracle).

An independent analytical framework for the same switched-Ethernet
system the paper analyzes with EDF processor-demand bounds: each
admitted channel becomes a token-bucket (or staircase) *arrival curve*,
each output port becomes a rate-latency *service curve*, and the
worst-case delay of a channel is the horizontal deviation between its
arrival curve and the (convolved, per-hop residual) service its frames
receive. Because the residual-service argument holds for *any*
work-conserving arbitration, the bounds are valid for the simulator's
per-hop EDF -- every measured frame delay must sit below them, which is
exactly what :mod:`repro.oracle.netcalc` fuzz-checks.

:mod:`repro.netcalc.curves`
    the min-plus algebra: arrival curves, service curves, residual
    service under blind multiplexing, convolution, horizontal deviation.
:mod:`repro.netcalc.bounds`
    per-link and per-path delay bounds for ``LinkTask`` sets, including
    burstiness propagation across hops (feed-forward, pay-bursts-only-
    once via service-curve concatenation).
"""

from .bounds import (
    DEFAULT_BLOCKING_FRAMES,
    PathBound,
    link_delay_bound,
    link_residual_service,
    network_delay_bounds,
    path_bound_ns,
)
from .curves import (
    RateLatency,
    Staircase,
    TokenBucket,
    horizontal_deviation,
)

__all__ = [
    "TokenBucket",
    "Staircase",
    "RateLatency",
    "horizontal_deviation",
    "DEFAULT_BLOCKING_FRAMES",
    "PathBound",
    "link_residual_service",
    "link_delay_bound",
    "network_delay_bounds",
    "path_bound_ns",
]
