"""Min-plus curve algebra: arrival curves, service curves, deviations.

Everything is exact: curve parameters are :class:`fractions.Fraction`
(integers are accepted and widened), matching the repo-wide convention
that feasibility boundaries are decided with rational arithmetic, never
floats. Work is measured in *slots* (one maximum-size frame = one slot
of work) and time in slots as well, so the nominal link service rate is
``1`` slot of work per slot of time.

The three shapes the oracle needs:

:class:`TokenBucket`
    the affine arrival curve ``alpha(t) = burst + rate * t`` (for
    ``t > 0``; ``alpha(0) = 0``). A periodic channel ``(C, P)`` conforms
    to ``TokenBucket(burst=C, rate=C/P)``: any window of length ``t``
    contains at most ``C * (1 + t/P)`` slots of arrivals.
:class:`Staircase`
    the exact envelope ``alpha(t) = C * ceil(t / P)`` of a periodic
    source that releases ``C`` frames at once. Tighter than its
    token-bucket hull at small ``t``; for rate-latency service with
    ``rate >= C/P`` both give the *same* horizontal deviation (proved in
    THEORY.md section 8 and checked by the property suite).
:class:`RateLatency`
    the service curve ``beta(t) = rate * max(0, t - latency)``. Closed
    under convolution (rates min, latencies add) and under taking the
    residual left over after token-bucket cross traffic (blind
    multiplexing -- valid for any work-conserving arbitration,
    including per-hop EDF).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigurationError

__all__ = [
    "TokenBucket",
    "Staircase",
    "RateLatency",
    "horizontal_deviation",
]


def _fraction(value, name: str) -> Fraction:
    """Widen to an exact Fraction; reject floats (silent precision loss)."""
    if isinstance(value, float):
        raise ConfigurationError(
            f"{name} must be an int or Fraction, got float {value!r} "
            "(curve algebra is exact)"
        )
    return Fraction(value)


@dataclass(frozen=True, slots=True)
class TokenBucket:
    """Affine arrival curve ``alpha(t) = burst + rate * t`` for ``t > 0``."""

    burst: Fraction
    rate: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "burst", _fraction(self.burst, "burst"))
        object.__setattr__(self, "rate", _fraction(self.rate, "rate"))
        if self.burst < 0 or self.rate < 0:
            raise ConfigurationError(
                f"token bucket needs burst >= 0 and rate >= 0, got "
                f"({self.burst}, {self.rate})"
            )

    @classmethod
    def from_task(cls, capacity: int, period: int) -> "TokenBucket":
        """The bucket a periodic ``(C, P)`` channel conforms to."""
        if capacity <= 0 or period <= 0:
            raise ConfigurationError(
                f"need capacity > 0 and period > 0, got ({capacity}, {period})"
            )
        return cls(burst=Fraction(capacity), rate=Fraction(capacity, period))

    def value(self, t) -> Fraction:
        """``alpha(t)`` (0 at the origin, as required of arrival curves)."""
        t = _fraction(t, "t")
        if t < 0:
            raise ConfigurationError(f"curves are defined for t >= 0, got {t}")
        if t == 0:
            return Fraction(0)
        return self.burst + self.rate * t

    def __add__(self, other: "TokenBucket") -> "TokenBucket":
        """Aggregate of two flows: bursts and rates add."""
        if not isinstance(other, TokenBucket):
            return NotImplemented
        return TokenBucket(
            burst=self.burst + other.burst, rate=self.rate + other.rate
        )


@dataclass(frozen=True, slots=True)
class Staircase:
    """Exact periodic envelope ``alpha(t) = capacity * ceil(t / period)``."""

    capacity: Fraction
    period: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "capacity", _fraction(self.capacity, "capacity")
        )
        object.__setattr__(self, "period", _fraction(self.period, "period"))
        if self.capacity <= 0 or self.period <= 0:
            raise ConfigurationError(
                f"staircase needs capacity > 0 and period > 0, got "
                f"({self.capacity}, {self.period})"
            )

    def value(self, t) -> Fraction:
        t = _fraction(t, "t")
        if t < 0:
            raise ConfigurationError(f"curves are defined for t >= 0, got {t}")
        # ceil(t / period) in exact arithmetic
        quotient = t / self.period
        steps = quotient.numerator // quotient.denominator
        if quotient > steps:
            steps += 1
        return self.capacity * steps

    def token_bucket_hull(self) -> TokenBucket:
        """The tightest affine curve dominating this staircase.

        ``C * ceil(t/P) <= C + (C/P) * t`` for every ``t > 0``, with
        equality at every multiple of ``P`` -- so the hull is
        ``TokenBucket(C, C/P)`` and nothing tighter is affine.
        """
        return TokenBucket(
            burst=self.capacity, rate=self.capacity / self.period
        )


@dataclass(frozen=True, slots=True)
class RateLatency:
    """Service curve ``beta(t) = rate * max(0, t - latency)``."""

    rate: Fraction
    latency: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", _fraction(self.rate, "rate"))
        object.__setattr__(
            self, "latency", _fraction(self.latency, "latency")
        )
        if self.rate <= 0 or self.latency < 0:
            raise ConfigurationError(
                f"rate-latency curve needs rate > 0 and latency >= 0, got "
                f"({self.rate}, {self.latency})"
            )

    def value(self, t) -> Fraction:
        t = _fraction(t, "t")
        if t < 0:
            raise ConfigurationError(f"curves are defined for t >= 0, got {t}")
        if t <= self.latency:
            return Fraction(0)
        return self.rate * (t - self.latency)

    def convolve(self, other: "RateLatency") -> "RateLatency":
        """Min-plus convolution: concatenated servers.

        ``beta1 (x) beta2`` is again rate-latency with the minimum rate
        and the summed latencies -- the algebraic heart of
        pay-bursts-only-once: a flow crossing both servers pays its
        burst against ``min(R1, R2)`` once, not per hop.
        """
        return RateLatency(
            rate=min(self.rate, other.rate),
            latency=self.latency + other.latency,
        )

    def residual(self, cross: TokenBucket) -> "RateLatency | None":
        """Service left to one flow after token-bucket cross traffic.

        Blind-multiplexing leftover: if the server guarantees
        ``beta = R(t - T)+`` to the aggregate and the *other* flows
        jointly conform to ``(b_c, r_c)``, then in any backlogged
        interval the flow of interest receives at least

            ``beta_i(t) = (R - r_c) * (t - (R*T + b_c)/(R - r_c))+``

        regardless of how the arbiter orders frames (it only needs to be
        work-conserving), so it upper-bounds the simulator's per-hop
        EDF. Returns ``None`` when ``r_c >= R`` (cross traffic can
        starve the flow; no positive-rate residual exists).
        """
        if cross.rate >= self.rate:
            return None
        remaining = self.rate - cross.rate
        return RateLatency(
            rate=remaining,
            latency=(self.rate * self.latency + cross.burst) / remaining,
        )

    def output_burst(self, arrival: TokenBucket) -> Fraction:
        """Burst of ``arrival`` after crossing this server.

        The output arrival curve is ``alpha (/) beta``; for a token
        bucket through rate-latency service (``arrival.rate <= rate``)
        that is again a token bucket with the same rate and burst
        ``b + r * latency`` -- burstiness grows by rate x latency per
        hop. Used to propagate cross-traffic curves downstream.
        """
        return arrival.burst + arrival.rate * self.latency


def horizontal_deviation(
    arrival: TokenBucket | Staircase, service: RateLatency
) -> Fraction | None:
    """Worst-case delay bound ``h(alpha, beta)``, or ``None`` if unbounded.

    The horizontal deviation ``sup_t inf {d : alpha(t) <= beta(t + d)}``
    is the delay bound of a flow with arrival curve ``alpha`` served
    with service curve ``beta`` (FIFO per flow -- the simulator
    transmits each channel's frames in release order per hop).

    * token bucket ``(b, r)`` vs ``(R, T)``: ``T + b/R`` when
      ``r <= R``, unbounded otherwise;
    * staircase ``(C, P)`` vs ``(R, T)``: the deviation is largest just
      after a step, giving ``sup_k [T + (k+1)C/R - kP]``; for
      ``C/P <= R`` the supremum is at ``k = 0`` -- the same ``T + C/R``
      as the bucket hull (checked by the property suite).
    """
    if isinstance(arrival, Staircase):
        bucket = arrival.token_bucket_hull()
        if bucket.rate > service.rate:
            return None
        return service.latency + bucket.burst / service.rate
    if isinstance(arrival, TokenBucket):
        if arrival.rate > service.rate:
            return None
        return service.latency + arrival.burst / service.rate
    raise ConfigurationError(
        f"unsupported arrival curve type {type(arrival).__name__}"
    )
