"""Admission control over a switch fabric (multi-hop EDF analysis).

The per-link theory is exactly the paper's (Section 18.3.2): each
directed fabric link is a uniprocessor, each channel contributes one
supposed task per traversed link with the per-hop deadline chosen by a
:class:`~repro.multiswitch.partitioning.MultiHopDPS`. A request is
admitted when *every* link of its routed path remains feasible.

One modelling note: an inter-switch link carries tasks of many channels
whose upstream hop counts differ; as on the star's downlink, the
per-link demand analysis treats every task as released synchronously,
which is the conservative critical instant (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..core.channel import ChannelSpec
from ..core.feasibility import FeasibilityReport, is_feasible
from ..core.feasibility_cache import FeasibilityCache
from ..core.task import LinkRef, LinkDirection, LinkTask
from ..errors import PartitioningError, UnknownChannelError
from .graph import FabricGraph, FabricLink
from .partitioning import MultiHopDPS

if TYPE_CHECKING:
    from ..netcalc.bounds import PathBound

__all__ = ["MultiAdmissionDecision", "MultiSwitchAdmission"]


@dataclass(frozen=True, slots=True)
class MultiAdmissionDecision:
    """Outcome of one multi-hop admission attempt."""

    accepted: bool
    channel_id: int
    source: str
    destination: str
    spec: ChannelSpec
    links: tuple[FabricLink, ...]
    parts: tuple[int, ...]
    #: Per-link feasibility evidence, aligned with ``links``; shorter
    #: when the test aborted at the first infeasible link.
    reports: tuple[FeasibilityReport, ...] = ()
    failed_link: FabricLink | None = None

    def __bool__(self) -> bool:
        return self.accepted


def _link_ref(link: FabricLink) -> LinkRef:
    """Map a fabric link onto a LinkRef so LinkTask can reuse validation.

    The direction enum is vestigial here (every fabric link is just "a
    processor"); we encode the full directed pair in the node field.
    """
    return LinkRef(node=f"{link.tail}->{link.head}", direction=LinkDirection.UPLINK)


class MultiSwitchAdmission:
    """Admit-or-reject over a fabric graph.

    Parameters
    ----------
    fabric:
        The (validated) topology -- a tree
        :class:`~repro.multiswitch.fabric.SwitchFabric` or any
        multipath :class:`~repro.multiswitch.graph.FabricGraph`
        (fat-tree, ring); routing determinism is the fabric's
        responsibility (seeded equal-cost tie-break), admission just
        analyses the links of the path it is handed.
    dps:
        A k-way deadline-partitioning scheme.
    use_cache:
        When True (default), per-link feasibility goes through the
        incremental :class:`~repro.core.feasibility_cache.FeasibilityCache`
        (one entry per directed fabric link); decisions are identical to
        the from-scratch path, just cheaper per request.
    """

    def __init__(
        self,
        fabric: FabricGraph,
        dps: MultiHopDPS,
        *,
        use_cache: bool = True,
    ) -> None:
        fabric.validate_connected()
        self._fabric = fabric
        self._dps = dps
        self._tasks: dict[FabricLink, list[LinkTask]] = {}
        self._channels: dict[int, MultiAdmissionDecision] = {}
        self._cache = FeasibilityCache() if use_cache else None
        self._next_id = 1
        self.accept_count = 0
        self.reject_count = 0

    @property
    def uses_cache(self) -> bool:
        return self._cache is not None

    @property
    def fabric(self) -> FabricGraph:
        return self._fabric

    @property
    def active_channels(self) -> int:
        return len(self._channels)

    def link_load(self, link: FabricLink) -> int:
        """LinkLoad of one directed fabric link (paper's ``LL``)."""
        return len(self._tasks.get(link, ()))

    def tasks_on(self, link: FabricLink) -> tuple[LinkTask, ...]:
        return tuple(self._tasks.get(link, ()))

    @property
    def decisions(self) -> dict[int, MultiAdmissionDecision]:
        """Admitted channels' decisions, keyed by channel ID (copy)."""
        return dict(self._channels)

    def occupied_links(self) -> tuple[FabricLink, ...]:
        """Directed fabric links currently carrying at least one task."""
        return tuple(
            sorted(link for link, tasks in self._tasks.items() if tasks)
        )

    def channel_delay_bounds(self) -> dict[int, "PathBound"]:
        """Network-calculus end-to-end bound per admitted channel.

        The multi-hop twin of
        :meth:`repro.core.admission.SystemState.channel_delay_bounds`:
        one rate-latency residual per traversed fabric link, convolved
        along the routed path, with cross-traffic burstiness propagated
        through upstream hops (sound for the tree fabric because its
        directed link graph is feed-forward). Values are
        :class:`~repro.netcalc.bounds.PathBound` in slots.
        """
        from ..netcalc.bounds import network_delay_bounds

        flows = {
            channel_id: decision.links
            for channel_id, decision in self._channels.items()
        }
        links = {link for path in flows.values() for link in path}
        return network_delay_bounds(
            flows, {link: self.tasks_on(link) for link in links}
        )

    # -- decision ------------------------------------------------------------

    def request(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> MultiAdmissionDecision:
        """Route, partition and per-link feasibility-test one request."""
        links = tuple(self._fabric.path_links(source, destination))

        def loaded(link: FabricLink) -> int:
            # candidate included, mirroring the star-network ADPS.
            return self.link_load(link) + 1

        try:
            parts = tuple(self._dps.partition(spec, links, loaded))
        except PartitioningError:
            self.reject_count += 1
            return MultiAdmissionDecision(
                accepted=False,
                channel_id=-1,
                source=source,
                destination=destination,
                spec=spec,
                links=links,
                parts=(),
            )
        # Peek the ID -- it is only consumed on acceptance, so rejected
        # requests no longer burn through the channel-ID space.
        channel_id = self._next_id
        reports: list[FeasibilityReport] = []
        candidate_tasks: list[LinkTask] = []
        for link, part in zip(links, parts):
            task = LinkTask(
                link=_link_ref(link),
                period=spec.period,
                capacity=spec.capacity,
                deadline=part,
                channel_id=channel_id,
            )
            candidate_tasks.append(task)
            if self._cache is not None:
                report = self._cache.check(task)
            else:
                report = is_feasible(
                    list(self._tasks.get(link, ())) + [task]
                )
            reports.append(report)
            if not report.feasible:
                self.reject_count += 1
                return MultiAdmissionDecision(
                    accepted=False,
                    channel_id=-1,
                    source=source,
                    destination=destination,
                    spec=spec,
                    links=links,
                    parts=parts,
                    reports=tuple(reports),
                    failed_link=link,
                )
        # install (cache first: its drift guard then sees a consistent
        # count once self._tasks catches up)
        self._next_id += 1
        for link, task in zip(links, candidate_tasks):
            if self._cache is not None:
                self._cache.install(task)
            self._tasks.setdefault(link, []).append(task)
        decision = MultiAdmissionDecision(
            accepted=True,
            channel_id=channel_id,
            source=source,
            destination=destination,
            spec=spec,
            links=links,
            parts=parts,
            reports=tuple(reports),
        )
        self._channels[channel_id] = decision
        self.accept_count += 1
        return decision

    def _batch_prefetch(
        self, requests: list[tuple[str, str, ChannelSpec]]
    ) -> None:
        """Warm per-link verdict memos for every distinct burst candidate.

        Routes and partitions each distinct request once against the
        pre-burst loads, then runs one pooled vectorized
        ``batch_check`` per touched fabric link. Purely a cache warm-up:
        it seeds exactly the memo entries the scalar checks would
        create, so decisions are unchanged.
        """
        cache = self._cache
        if cache is None:
            return
        by_link: dict[FabricLink, list[LinkTask]] = {}
        seen: set[tuple[str, str, ChannelSpec]] = set()
        for source, destination, spec in requests:
            key = (source, destination, spec)
            if key in seen:
                continue
            seen.add(key)
            try:
                links = tuple(self._fabric.path_links(source, destination))
            except Exception:
                continue  # the replay rejects/raises identically

            def loaded(link: FabricLink) -> int:
                return self.link_load(link) + 1

            try:
                parts = tuple(self._dps.partition(spec, links, loaded))
            except PartitioningError:
                continue
            for link, part in zip(links, parts):
                by_link.setdefault(link, []).append(
                    LinkTask(
                        link=_link_ref(link),
                        period=spec.period,
                        capacity=spec.capacity,
                        deadline=part,
                        channel_id=-1,
                    )
                )
        for link, candidates in by_link.items():
            cache.batch_check(_link_ref(link), candidates)

    def admit_many(
        self, requests: "Iterable[tuple[str, str, ChannelSpec]]"
    ) -> list[MultiAdmissionDecision]:
        """Decide a burst of requests in order (multi-hop admit_many).

        Stream-equivalent to calling :meth:`request` per element (same
        verdicts, ``failed_link``, channel IDs, link loads); amortizes
        the burst through one pooled feasibility prefetch per fabric
        link and a burst-local template for repeated rejected requests,
        invalidated wholesale whenever an acceptance changes any link
        load. Repeats of an identical rejected request may share one
        (frozen, value-equal) decision record.
        """
        requests = list(requests)
        self._batch_prefetch(requests)
        decisions: list[MultiAdmissionDecision] = []
        templates: dict[
            tuple[str, str, ChannelSpec],
            tuple[int, MultiAdmissionDecision],
        ] = {}
        version = 0
        for source, destination, spec in requests:
            key = (source, destination, spec)
            hit = templates.get(key)
            if hit is not None and hit[0] == version:
                self.reject_count += 1
                decisions.append(hit[1])
                continue
            decision = self.request(source, destination, spec)
            if decision.accepted:
                version += 1
            else:
                templates[key] = (version, decision)
            decisions.append(decision)
        return decisions

    def release(self, channel_id: int) -> MultiAdmissionDecision:
        """Tear down an admitted channel, freeing all its per-link tasks."""
        decision = self._channels.pop(channel_id, None)
        if decision is None:
            raise UnknownChannelError(
                f"no active multi-hop channel {channel_id}"
            )
        for link in decision.links:
            if self._cache is not None:
                self._cache.release(_link_ref(link), channel_id)
            tasks = self._tasks.get(link, [])
            self._tasks[link] = [
                t for t in tasks if t.channel_id != channel_id
            ]
        return decision
