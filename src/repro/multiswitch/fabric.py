"""Switch-tree topology and routing for the multi-switch extension.

A :class:`SwitchFabric` is the tree-restricted specialization of
:class:`~repro.multiswitch.graph.FabricGraph`: internal vertices are
switches, leaves are end nodes, and redundant switch cables are
rejected at construction time -- no spanning-tree protocol is
modelled, so a tree is the only shape with well-defined single-path
routing.  Every edge is a full-duplex cable, i.e. two independent
unidirectional links for the analysis -- exactly the paper's "two CPUs
per cable" view, generalized.

A channel from node A to node B traverses the unique tree path
``A -> sw_1 -> ... -> sw_k -> B``; :meth:`SwitchFabric.path_links`
returns the ordered *directed* links of that path, which is everything
the multi-switch admission control needs.  For multipath fabrics
(fat-trees, rings) use :class:`FabricGraph` directly -- same API, with
the seeded equal-cost tie-break resolving the path ambiguity.
"""

from __future__ import annotations

from ..errors import TopologyError
from .graph import FabricGraph, FabricLink

__all__ = ["FabricLink", "SwitchFabric"]


class SwitchFabric(FabricGraph):
    """A tree of switches with end nodes at the leaves.

    Build incrementally with :meth:`add_switch`, :meth:`add_node` and
    :meth:`connect_switches`; the structure is validated to stay a
    forest during construction and to be a single connected tree when
    routing is first used.
    """

    def connect_switches(self, a: str, b: str) -> None:
        """Cable two switches together (must not create a cycle)."""
        self._pre_connect_checks(a, b)
        if self._reachable(a, b):
            raise TopologyError(
                f"cabling {a!r}-{b!r} would create a cycle; the fabric must "
                "remain a tree (no spanning-tree protocol is modelled)"
            )
        self._add_edge(a, b)

    def validate_connected(self) -> None:
        """Raise unless the fabric is one connected tree."""
        super().validate_connected()
        # A connected graph with n-1 edges is a tree; construction
        # already prevents cycles, this is a belt-and-braces check.
        if not self.is_tree():
            self._validated = False
            raise TopologyError("the fabric contains a cycle")

    @classmethod
    def single_switch(cls, node_names: list[str]) -> "SwitchFabric":
        """The paper's star as a degenerate fabric (for differential tests)."""
        fabric = cls()
        fabric.add_switch("sw0")
        for name in node_names:
            fabric.add_node(name, "sw0")
        return fabric

    @classmethod
    def chain(
        cls, n_switches: int, nodes_per_switch: int
    ) -> "SwitchFabric":
        """A line of switches, each with its own stations.

        Node names are ``n{switch}_{index}``; switch names ``sw{i}``.
        The worst-case path crosses all ``n_switches + 1`` links.
        """
        if n_switches <= 0 or nodes_per_switch <= 0:
            raise TopologyError(
                "chain needs >= 1 switch and >= 1 node per switch"
            )
        fabric = cls()
        for i in range(n_switches):
            fabric.add_switch(f"sw{i}")
            if i > 0:
                fabric.connect_switches(f"sw{i - 1}", f"sw{i}")
            for j in range(nodes_per_switch):
                fabric.add_node(f"n{i}_{j}", f"sw{i}")
        return fabric
