"""Switch-tree topology and routing for the multi-switch extension.

A :class:`SwitchFabric` is a tree whose internal vertices are switches
and whose leaves are end nodes. Every edge is a full-duplex cable, i.e.
two independent unidirectional links for the analysis -- exactly the
paper's "two CPUs per cable" view, generalized.

A channel from node A to node B traverses the unique tree path
``A -> sw_1 -> ... -> sw_k -> B``; :meth:`SwitchFabric.path_links`
returns the ordered *directed* links of that path, which is everything
the multi-switch admission control needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import RoutingError, TopologyError

__all__ = ["FabricLink", "SwitchFabric"]


@dataclass(frozen=True, slots=True, order=True)
class FabricLink:
    """One directed link of the fabric: the unit of feasibility analysis.

    ``tail`` transmits, ``head`` receives. The reverse direction of the
    same cable is a distinct :class:`FabricLink` (full duplex).
    """

    tail: str
    head: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tail}->{self.head}"

    @property
    def reverse(self) -> "FabricLink":
        return FabricLink(tail=self.head, head=self.tail)


class SwitchFabric:
    """A tree of switches with end nodes at the leaves.

    Build incrementally with :meth:`add_switch`, :meth:`add_node` and
    :meth:`connect_switches`; the structure is validated to stay a
    forest during construction and to be a single connected tree when
    routing is first used.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._switches: set[str] = set()
        self._nodes: set[str] = set()

    # -- construction --------------------------------------------------------

    def add_switch(self, name: str) -> None:
        """Add an (initially unconnected) switch."""
        self._check_fresh(name)
        self._switches.add(name)
        self._graph.add_node(name)

    def add_node(self, name: str, switch: str) -> None:
        """Attach an end node to a switch by one cable."""
        self._check_fresh(name)
        if switch not in self._switches:
            raise TopologyError(f"unknown switch {switch!r}")
        self._nodes.add(name)
        self._graph.add_edge(name, switch)

    def connect_switches(self, a: str, b: str) -> None:
        """Cable two switches together (must not create a cycle)."""
        if a not in self._switches or b not in self._switches:
            raise TopologyError(f"both {a!r} and {b!r} must be switches")
        if a == b:
            raise TopologyError(f"cannot cable switch {a!r} to itself")
        if self._graph.has_edge(a, b):
            raise TopologyError(f"switches {a!r} and {b!r} are already cabled")
        if nx.has_path(self._graph, a, b):
            raise TopologyError(
                f"cabling {a!r}-{b!r} would create a cycle; the fabric must "
                "remain a tree (no spanning-tree protocol is modelled)"
            )
        self._graph.add_edge(a, b)

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise TopologyError("names must be non-empty")
        if name in self._switches or name in self._nodes:
            raise TopologyError(f"{name!r} is already in the fabric")

    # -- queries ------------------------------------------------------------------

    @property
    def switches(self) -> frozenset[str]:
        return frozenset(self._switches)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def is_node(self, name: str) -> bool:
        return name in self._nodes

    def validate_connected(self) -> None:
        """Raise unless the fabric is one connected tree."""
        if self._graph.number_of_nodes() == 0:
            raise TopologyError("the fabric is empty")
        if not nx.is_connected(self._graph):
            raise TopologyError("the fabric is not connected")
        # A connected graph with n-1 edges is a tree; construction
        # already prevents cycles, this is a belt-and-braces check.
        if self._graph.number_of_edges() != self._graph.number_of_nodes() - 1:
            raise TopologyError("the fabric contains a cycle")

    def path_links(self, source: str, destination: str) -> list[FabricLink]:
        """Ordered directed links of the unique source->destination path.

        The first link is the source's uplink into its switch, the last
        is the destination's downlink; any links in between are
        inter-switch hops.
        """
        if source not in self._nodes:
            raise RoutingError(f"source {source!r} is not an end node")
        if destination not in self._nodes:
            raise RoutingError(f"destination {destination!r} is not an end node")
        if source == destination:
            raise RoutingError("source and destination must differ")
        self.validate_connected()
        vertices = nx.shortest_path(self._graph, source, destination)
        return [
            FabricLink(tail=a, head=b)
            for a, b in zip(vertices, vertices[1:])
        ]

    def hop_count(self, source: str, destination: str) -> int:
        """Number of links a channel between these nodes traverses."""
        return len(self.path_links(source, destination))

    def attachment(self, node: str) -> str:
        """The switch an end node is cabled to (leaves have exactly one)."""
        if node not in self._nodes:
            raise RoutingError(f"{node!r} is not an end node")
        neighbours = list(self._graph.neighbors(node))
        if len(neighbours) != 1:  # pragma: no cover - construction forbids
            raise TopologyError(
                f"end node {node!r} has {len(neighbours)} cables"
            )
        return neighbours[0]

    def switch_adjacencies(self) -> list[tuple[str, str]]:
        """All switch-to-switch cables, each once, deterministically ordered."""
        edges = []
        for a, b in self._graph.edges():
            if a in self._switches and b in self._switches:
                edges.append((min(a, b), max(a, b)))
        return sorted(edges)

    @classmethod
    def single_switch(cls, node_names: list[str]) -> "SwitchFabric":
        """The paper's star as a degenerate fabric (for differential tests)."""
        fabric = cls()
        fabric.add_switch("sw0")
        for name in node_names:
            fabric.add_node(name, "sw0")
        return fabric

    @classmethod
    def chain(
        cls, n_switches: int, nodes_per_switch: int
    ) -> "SwitchFabric":
        """A line of switches, each with its own stations.

        Node names are ``n{switch}_{index}``; switch names ``sw{i}``.
        The worst-case path crosses all ``n_switches + 1`` links.
        """
        if n_switches <= 0 or nodes_per_switch <= 0:
            raise TopologyError(
                "chain needs >= 1 switch and >= 1 node per switch"
            )
        fabric = cls()
        for i in range(n_switches):
            fabric.add_switch(f"sw{i}")
            if i > 0:
                fabric.connect_switches(f"sw{i - 1}", f"sw{i}")
            for j in range(nodes_per_switch):
                fabric.add_node(f"n{i}_{j}", f"sw{i}")
        return fabric
