"""k-way deadline partitioning for multi-hop paths.

For a channel crossing ``k`` links the end-to-end deadline must be
split into ``k`` per-link parts ``d_1 .. d_k`` with ``sum d_j == d``
(generalizing Eq. 18.8) and every ``d_j >= C`` (generalizing Eq. 18.9 --
each hop's supposed task still has WCET ``C``). A channel with
``d < k*C`` is infeasible on that path under any split, the multi-hop
analogue of the store-and-forward bound.

Two schemes mirror the paper's pair:

* :class:`MultiHopSymmetric` -- equal shares (SDPS generalization);
* :class:`MultiHopProportional` -- shares proportional to each link's
  LinkLoad including the candidate (ADPS generalization).

Integer splitting uses the largest-remainder method so the parts always
sum exactly to ``d`` with deterministic tie-breaking, then a repair pass
lifts any part below ``C`` by taking slack from the largest parts.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from ..core.channel import ChannelSpec
from ..errors import PartitioningError
from .fabric import FabricLink

__all__ = [
    "split_deadline",
    "MultiHopDPS",
    "MultiHopSymmetric",
    "MultiHopProportional",
]

#: Callback giving the current LinkLoad of a fabric link (candidate included).
LinkLoadFn = Callable[[FabricLink], int]


def split_deadline(
    deadline: int, capacity: int, weights: Sequence[float]
) -> list[int]:
    """Split ``deadline`` into ``len(weights)`` integer parts.

    Parts are proportional to ``weights`` (largest-remainder rounding),
    then repaired so every part is at least ``capacity`` while the total
    stays exactly ``deadline``.

    Raises
    ------
    PartitioningError
        when ``deadline < len(weights) * capacity`` (no valid split
        exists) or the weights are unusable (none positive).
    """
    k = len(weights)
    if k == 0:
        raise PartitioningError("cannot split a deadline over zero links")
    if deadline < k * capacity:
        raise PartitioningError(
            f"deadline {deadline} cannot cover {k} hops of capacity "
            f"{capacity} (needs >= {k * capacity})"
        )
    if any(w < 0 for w in weights):
        raise PartitioningError(f"negative weight in {weights!r}")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        weights = [1.0] * k
        total_weight = float(k)
    # Largest-remainder apportionment of `deadline` units.
    exact = [deadline * w / total_weight for w in weights]
    parts = [int(x) for x in exact]
    shortfall = deadline - sum(parts)
    remainders = sorted(
        range(k), key=lambda i: (-(exact[i] - parts[i]), i)
    )
    for i in remainders[:shortfall]:
        parts[i] += 1
    # Repair: lift parts below the capacity floor, taking from the rich.
    for i in range(k):
        while parts[i] < capacity:
            donor = max(
                (j for j in range(k) if parts[j] > capacity),
                key=lambda j: parts[j],
                default=None,
            )
            if donor is None:  # pragma: no cover - impossible when d >= k*C
                raise PartitioningError(
                    f"cannot repair split {parts!r} to floor {capacity}"
                )
            parts[donor] -= 1
            parts[i] += 1
    assert sum(parts) == deadline
    return parts


class MultiHopDPS(abc.ABC):
    """Abstract k-way deadline-partitioning scheme."""

    name: str = "multihop-dps"

    @abc.abstractmethod
    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        """Per-link deadline parts for a channel on ``links`` (ordered)."""


class MultiHopSymmetric(MultiHopDPS):
    """Equal shares: the k-way SDPS (``d_j ~= d / k``)."""

    name = "msym"

    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        del link_load
        return split_deadline(
            spec.deadline, spec.capacity, [1.0] * len(links)
        )


class MultiHopProportional(MultiHopDPS):
    """LinkLoad-proportional shares: the k-way ADPS.

    Each link's weight is its LinkLoad including the candidate channel;
    heavily shared links receive looser per-hop deadlines, relieving the
    same bottleneck effect ADPS targets on the two-link star.
    """

    name = "mprop"

    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        weights = [float(link_load(link)) for link in links]
        if any(w < 0 for w in weights):
            raise PartitioningError(f"negative link load in {weights!r}")
        return split_deadline(spec.deadline, spec.capacity, weights)
