"""k-way deadline partitioning for multi-hop paths.

For a channel crossing ``k`` links the end-to-end deadline must be
split into ``k`` per-link parts ``d_1 .. d_k`` with ``sum d_j == d``
(generalizing Eq. 18.8) and every ``d_j >= C`` (generalizing Eq. 18.9 --
each hop's supposed task still has WCET ``C``). A channel with
``d < k*C`` is infeasible on that path under any split, the multi-hop
analogue of the store-and-forward bound.

Two schemes mirror the paper's pair:

* :class:`MultiHopSymmetric` -- equal shares (SDPS generalization);
* :class:`MultiHopProportional` -- shares proportional to each link's
  LinkLoad including the candidate (ADPS generalization).

Integer splitting uses the largest-remainder method in **exact
rational arithmetic** (:class:`fractions.Fraction`, the repo-wide
determinism idiom) so the parts always sum exactly to ``d`` with
deterministic tie-breaking and the split is bit-reproducible across
platforms for any weights; a single-pass threshold-drain repair then
lifts any part below ``C`` by taking slack from the largest parts
(see :func:`_repair_floor` -- provably identical to the historical
one-unit-per-iteration loop, in O(k log max_part) instead of O(k*delta)
with quadratic donor scans).
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Callable, Sequence

from ..core.channel import ChannelSpec
from ..errors import PartitioningError
from .fabric import FabricLink

__all__ = [
    "split_deadline",
    "MultiHopDPS",
    "MultiHopSymmetric",
    "MultiHopProportional",
]

#: Callback giving the current LinkLoad of a fabric link (candidate included).
LinkLoadFn = Callable[[FabricLink], int]


def split_deadline(
    deadline: int, capacity: int, weights: Sequence[int | Fraction]
) -> list[int]:
    """Split ``deadline`` into ``len(weights)`` integer parts.

    Parts are proportional to ``weights`` (largest-remainder rounding,
    remainder ties broken toward the lowest index), then repaired so
    every part is at least ``capacity`` while the total stays exactly
    ``deadline``.

    The apportionment is exact: every share is computed as a
    :class:`~fractions.Fraction`, so the result is a pure function of
    the integer problem with no platform/rounding dependence.  Float
    weights are accepted for compatibility and converted to their exact
    binary rational value.

    Raises
    ------
    PartitioningError
        when ``deadline < len(weights) * capacity`` (no valid split
        exists) or the weights are unusable (none positive).
    """
    k = len(weights)
    if k == 0:
        raise PartitioningError("cannot split a deadline over zero links")
    if deadline < k * capacity:
        raise PartitioningError(
            f"deadline {deadline} cannot cover {k} hops of capacity "
            f"{capacity} (needs >= {k * capacity})"
        )
    if any(w < 0 for w in weights):
        raise PartitioningError(f"negative weight in {weights!r}")
    exact_weights = [Fraction(w) for w in weights]
    total_weight = sum(exact_weights)
    if total_weight <= 0:
        exact_weights = [Fraction(1)] * k
        total_weight = Fraction(k)
    # Largest-remainder apportionment of `deadline` units, all rational.
    exact = [deadline * w / total_weight for w in exact_weights]
    parts = [int(x) for x in exact]
    shortfall = deadline - sum(parts)
    remainders = sorted(
        range(k), key=lambda i: (-(exact[i] - parts[i]), i)
    )
    for i in remainders[:shortfall]:
        parts[i] += 1
    parts = _repair_floor(parts, capacity)
    assert sum(parts) == deadline
    return parts


def _repair_floor(parts: list[int], capacity: int) -> list[int]:
    """Lift parts below ``capacity`` to it, draining the largest parts.

    Single-pass replacement for the historical loop that moved one unit
    per iteration from ``max(parts[j] > capacity)`` (first index on
    ties) to each deficient part.  That loop's end state has a closed
    form: with ``L`` the total deficit, find the smallest threshold
    ``T >= capacity`` whose drain ``g(T) = sum(max(0, p - T))`` is at
    most ``L``, cap every donor at ``T``, and decrement by one the
    first ``L - g(T)`` donors (in index order) whose original part was
    at least ``T`` -- exactly which entries the loop's first-index
    ``max`` tie-break lands on once all remaining donors sit at ``T``.

    Preserves ``sum(parts)`` (receivers gain ``L``, donors lose
    ``g(T) + (L - g(T)) = L``) and ``min >= capacity``: ``g(capacity)
    >= L`` whenever ``sum(parts) >= k * capacity`` (the caller's
    precondition), so ``T == capacity`` forces ``L - g(T) == 0`` and
    any extra decrement happens only when ``T > capacity``, landing on
    ``T - 1 >= capacity``.
    """
    deficit = sum(capacity - p for p in parts if p < capacity)
    if deficit == 0:
        return parts
    # Binary search the smallest T in [capacity, max(parts)] with
    # g(T) <= deficit; g is nonincreasing in T and g(max) == 0.
    lo, hi = capacity, max(parts)
    while lo < hi:
        mid = (lo + hi) // 2
        if sum(p - mid for p in parts if p > mid) <= deficit:
            hi = mid
        else:
            lo = mid + 1
    threshold = lo
    drained = sum(p - threshold for p in parts if p > threshold)
    extra = deficit - drained
    repaired = [
        capacity if p < capacity else min(p, threshold) for p in parts
    ]
    if extra:
        for i, p in enumerate(parts):
            if p >= threshold:
                repaired[i] -= 1
                extra -= 1
                if extra == 0:
                    break
    return repaired


class MultiHopDPS(abc.ABC):
    """Abstract k-way deadline-partitioning scheme."""

    name: str = "multihop-dps"

    @abc.abstractmethod
    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        """Per-link deadline parts for a channel on ``links`` (ordered)."""


class MultiHopSymmetric(MultiHopDPS):
    """Equal shares: the k-way SDPS (``d_j ~= d / k``)."""

    name = "msym"

    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        del link_load
        return split_deadline(
            spec.deadline, spec.capacity, [1] * len(links)
        )


class MultiHopProportional(MultiHopDPS):
    """LinkLoad-proportional shares: the k-way ADPS.

    Each link's weight is its LinkLoad including the candidate channel;
    heavily shared links receive looser per-hop deadlines, relieving the
    same bottleneck effect ADPS targets on the two-link star.
    """

    name = "mprop"

    def partition(
        self,
        spec: ChannelSpec,
        links: Sequence[FabricLink],
        link_load: LinkLoadFn,
    ) -> list[int]:
        weights = [link_load(link) for link in links]
        if any(w < 0 for w in weights):
            raise PartitioningError(f"negative link load in {weights!r}")
        return split_deadline(spec.deadline, spec.capacity, weights)
