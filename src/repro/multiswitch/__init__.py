"""Multi-switch extension (the paper's stated future work).

Section 18.5: "Future work into this area should include investigating
the use of more complex network topologies, i.e., networks consisting of
many interconnected switches". This subpackage generalizes the paper's
analysis machinery from one switch (two links per channel) to a *tree*
of switches (k >= 2 links per channel):

* :mod:`~repro.multiswitch.fabric` -- the switch-tree topology and path
  routing (trees keep routing unique, matching how industrial Ethernet
  is actually cabled; cycles would need a spanning-tree protocol the
  paper never touches).
* :mod:`~repro.multiswitch.partitioning` -- multi-hop deadline
  partitioning: the k-way generalizations of SDPS (equal split) and
  ADPS (LinkLoad-proportional split).
* :mod:`~repro.multiswitch.admission` -- per-link EDF feasibility over
  all links of the routed path, reusing
  :mod:`repro.core.feasibility` unchanged -- the per-link theory is
  identical; only the number of supposed tasks per channel grows.

This is an **extension beyond the paper**: there is no published result
to compare against. EXP-X1 reports acceptance curves for 2- and 3-switch
trees to show the machinery works and that the ADPS advantage carries
over to longer paths.
"""

from .fabric import FabricLink, SwitchFabric
from .partitioning import (
    MultiHopDPS,
    MultiHopSymmetric,
    MultiHopProportional,
    split_deadline,
)
from .admission import MultiSwitchAdmission, MultiAdmissionDecision
from .simnet import (
    FabricChannel,
    FabricNetwork,
    FabricSwitchModel,
    build_fabric_network,
)

__all__ = [
    "FabricChannel",
    "FabricNetwork",
    "FabricSwitchModel",
    "build_fabric_network",
    "FabricLink",
    "SwitchFabric",
    "MultiHopDPS",
    "MultiHopSymmetric",
    "MultiHopProportional",
    "split_deadline",
    "MultiSwitchAdmission",
    "MultiAdmissionDecision",
]
