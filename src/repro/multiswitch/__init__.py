"""Multi-switch extension (the paper's stated future work).

Section 18.5: "Future work into this area should include investigating
the use of more complex network topologies, i.e., networks consisting of
many interconnected switches". This subpackage generalizes the paper's
analysis machinery from one switch (two links per channel) to arbitrary
switch graphs (k >= 2 links per channel):

* :mod:`~repro.multiswitch.graph` -- the general topology subsystem:
  :class:`FabricGraph` (cycles allowed, deterministic seeded multipath
  routing), the build-the-graph-then-run-passes builders
  (:func:`build_fat_tree`, :func:`build_tree_graph`,
  :func:`build_chain_graph`, :func:`build_star_graph`) and the
  address / admission / wiring passes.
* :mod:`~repro.multiswitch.fabric` -- the tree-restricted
  specialization (:class:`SwitchFabric`): trees keep routing unique,
  matching how small industrial Ethernet islands are actually cabled;
  the graph layer handles the redundant fabrics (fat-tree) that would
  otherwise need a spanning-tree protocol the paper never touches.
* :mod:`~repro.multiswitch.partitioning` -- multi-hop deadline
  partitioning: the k-way generalizations of SDPS (equal split) and
  ADPS (LinkLoad-proportional split), exact-rational and
  bit-reproducible.
* :mod:`~repro.multiswitch.admission` -- per-link EDF feasibility over
  all links of the routed path, reusing
  :mod:`repro.core.feasibility` unchanged -- the per-link theory is
  identical; only the number of supposed tasks per channel grows.

This is an **extension beyond the paper**: there is no published result
to compare against. EXP-X1 reports acceptance curves for 2- and 3-switch
trees; EXP-X3 sweeps fat-tree fabrics at hundreds of end nodes to show
the machinery scales and that the ADPS advantage carries over to longer
paths.
"""

from .graph import (
    FabricGraph,
    FabricLink,
    NodeAddress,
    address_pass,
    admission_pass,
    wiring_pass,
    build_star_graph,
    build_chain_graph,
    build_tree_graph,
    build_fat_tree,
)
from .fabric import SwitchFabric
from .partitioning import (
    MultiHopDPS,
    MultiHopSymmetric,
    MultiHopProportional,
    split_deadline,
)
from .admission import MultiSwitchAdmission, MultiAdmissionDecision
from .simnet import (
    FabricChannel,
    FabricNetwork,
    FabricSwitchModel,
    build_fabric_network,
)

__all__ = [
    "FabricChannel",
    "FabricNetwork",
    "FabricSwitchModel",
    "build_fabric_network",
    "FabricGraph",
    "FabricLink",
    "NodeAddress",
    "address_pass",
    "admission_pass",
    "wiring_pass",
    "build_star_graph",
    "build_chain_graph",
    "build_tree_graph",
    "build_fat_tree",
    "SwitchFabric",
    "MultiHopDPS",
    "MultiHopSymmetric",
    "MultiHopProportional",
    "split_deadline",
    "MultiSwitchAdmission",
    "MultiAdmissionDecision",
]
