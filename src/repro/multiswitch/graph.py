"""Graph-based fabric topologies: fat-tree, tree, chain, star + routing.

:class:`FabricGraph` generalizes :class:`~repro.multiswitch.fabric.
SwitchFabric` beyond trees: switch-to-switch cables may form cycles
(multipath fabrics such as Clos/fat-tree networks), and routing picks
among the equal-cost shortest paths with a deterministic, *seeded*
tie-break so every run of every process selects the same path for the
same (source, destination) pair.

Construction follows the build-the-graph-then-run-passes idiom: a
builder first lays down the pure vertex/edge structure, then explicit
*passes* run over the finished graph --

* :func:`address_pass` -- deterministic MAC/IP assignment for every
  end node (the exact scheme :func:`repro.network.topology.build_star`
  has always used, now shared);
* :func:`admission_pass` -- place a
  :class:`~repro.multiswitch.admission.MultiSwitchAdmission` (one
  :class:`~repro.core.feasibility_cache.FeasibilityCache` entry per
  directed fabric link) on the graph;
* :func:`wiring_pass` -- materialize the data plane (every node,
  switch, wire and dual queue) as a
  :class:`~repro.multiswitch.simnet.FabricNetwork`.

Everything here is pure Python over adjacency sets -- no third-party
graph library -- so routing behaviour is fully pinned by this file.

Routing determinism
-------------------
All shortest vertex paths between the two end nodes are enumerated
(bounded breadth-first predecessor DAG, expanded in sorted vertex
order), canonically sorted, and one is selected by indexing with a
CRC-32 digest of ``"{routing_seed}|{source}->{destination}"``.  The
digest is stable across platforms, processes and Python hash
randomization, so the choice is reproducible under a fixed seed while
still spreading distinct node pairs over the equal-cost fan
(ECMP-style).  The two directions of a pair hash differently and are
routed independently -- each direction is a distinct set of directed
links anyway.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import RoutingError, TopologyError

__all__ = [
    "MAC_BASE",
    "IP_BASE",
    "MAX_EQUAL_COST_PATHS",
    "FabricLink",
    "NodeAddress",
    "FabricGraph",
    "address_pass",
    "admission_pass",
    "wiring_pass",
    "build_star_graph",
    "build_chain_graph",
    "build_tree_graph",
    "build_fat_tree",
]

#: Locally administered MAC prefix for generated end-node addresses.
MAC_BASE = 0x02_00_00_00_00_00
#: First generated IPv4 address (10.0.0.1), assigned in node order.
IP_BASE = 0x0A_00_00_01

#: Safety cap on the equal-cost path fan between one node pair.  A
#: fat-tree's fan is (k/2)^2 (16 for k=8); anything past this cap is a
#: pathological mesh the admission analysis was never meant for.
MAX_EQUAL_COST_PATHS = 4096


@dataclass(frozen=True, slots=True, order=True)
class FabricLink:
    """One directed link of a fabric: the unit of feasibility analysis.

    ``tail`` transmits, ``head`` receives. The reverse direction of the
    same cable is a distinct :class:`FabricLink` (full duplex).
    """

    tail: str
    head: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tail}->{self.head}"

    @property
    def reverse(self) -> "FabricLink":
        return FabricLink(tail=self.head, head=self.tail)


@dataclass(frozen=True, slots=True)
class NodeAddress:
    """Deterministic layer-2/3 identity of one end node."""

    index: int
    mac: int
    ip: int


class FabricGraph:
    """A general switch graph (cycles allowed) with end nodes at leaves.

    Internal vertices are switches; end nodes attach to exactly one
    switch by one full-duplex cable.  Unlike
    :class:`~repro.multiswitch.fabric.SwitchFabric`,
    :meth:`connect_switches` accepts redundant cables, so multipath
    fabrics (rings, Clos, fat-trees) are expressible; routing resolves
    the resulting equal-cost ambiguity deterministically (see the
    module docstring).

    Parameters
    ----------
    routing_seed:
        Salt of the equal-cost tie-break digest.  Two graphs with the
        same structure and seed route identically; changing the seed
        re-spreads pairs across the equal-cost fan.
    """

    def __init__(self, routing_seed: int = 0) -> None:
        self._adj: dict[str, set[str]] = {}
        self._switches: set[str] = set()
        self._node_order: list[str] = []
        self._node_set: set[str] = set()
        self._edge_count = 0
        self.routing_seed = routing_seed
        self._path_cache: dict[tuple[str, str], tuple[FabricLink, ...]] = {}
        self._validated = False

    # -- construction ------------------------------------------------------

    def add_switch(self, name: str) -> None:
        """Add an (initially unconnected) switch."""
        self._check_fresh(name)
        self._switches.add(name)
        self._adj.setdefault(name, set())
        self._invalidate()

    def add_node(self, name: str, switch: str) -> None:
        """Attach an end node to a switch by one cable."""
        self._check_fresh(name)
        if switch not in self._switches:
            raise TopologyError(f"unknown switch {switch!r}")
        self._node_set.add(name)
        self._node_order.append(name)
        self._adj.setdefault(name, set())
        self._add_edge(name, switch)

    def connect_switches(self, a: str, b: str) -> None:
        """Cable two switches together (redundant paths are allowed)."""
        self._pre_connect_checks(a, b)
        self._add_edge(a, b)

    def _pre_connect_checks(self, a: str, b: str) -> None:
        if a not in self._switches or b not in self._switches:
            raise TopologyError(f"both {a!r} and {b!r} must be switches")
        if a == b:
            raise TopologyError(f"cannot cable switch {a!r} to itself")
        if b in self._adj.get(a, ()):
            raise TopologyError(f"switches {a!r} and {b!r} are already cabled")

    def _add_edge(self, a: str, b: str) -> None:
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)
        self._edge_count += 1
        self._invalidate()

    def _invalidate(self) -> None:
        self._path_cache.clear()
        self._validated = False

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise TopologyError("names must be non-empty")
        if name in self._switches or name in self._node_set:
            raise TopologyError(f"{name!r} is already in the fabric")

    # -- queries -----------------------------------------------------------

    @property
    def switches(self) -> frozenset[str]:
        return frozenset(self._switches)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._node_set)

    @property
    def node_order(self) -> tuple[str, ...]:
        """End nodes in insertion order (the address pass's ordering)."""
        return tuple(self._node_order)

    def is_node(self, name: str) -> bool:
        return name in self._node_set

    @property
    def vertex_count(self) -> int:
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def is_tree(self) -> bool:
        """True when the (connected) graph has no redundant cable."""
        return self._edge_count == len(self._adj) - 1

    def _reachable(self, start: str, goal: str) -> bool:
        seen = {start}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            if vertex == goal:
                return True
            for neighbour in self._adj[vertex]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        return False

    def validate_connected(self) -> None:
        """Raise unless the fabric is non-empty and connected."""
        if self._validated:
            return
        if not self._adj:
            raise TopologyError("the fabric is empty")
        start = next(iter(self._adj))
        seen = {start}
        queue = deque([start])
        while queue:
            for neighbour in self._adj[queue.popleft()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        if len(seen) != len(self._adj):
            raise TopologyError("the fabric is not connected")
        self._validated = True

    # -- routing -----------------------------------------------------------

    def equal_cost_paths(
        self, source: str, destination: str
    ) -> list[tuple[str, ...]]:
        """All shortest vertex paths, canonically (lexically) sorted.

        The list is a pure function of the graph structure: the
        predecessor DAG is built with vertices expanded in sorted order
        and the enumerated paths are sorted, so neither set iteration
        order nor hash randomization can leak into the result.
        """
        self._check_endpoints(source, destination)
        self.validate_connected()
        return self._all_shortest(source, destination)

    def _check_endpoints(self, source: str, destination: str) -> None:
        if source not in self._node_set:
            raise RoutingError(f"source {source!r} is not an end node")
        if destination not in self._node_set:
            raise RoutingError(
                f"destination {destination!r} is not an end node"
            )
        if source == destination:
            raise RoutingError("source and destination must differ")

    def _all_shortest(
        self, source: str, destination: str
    ) -> list[tuple[str, ...]]:
        # BFS predecessor DAG, bounded at the destination's level.
        dist: dict[str, int] = {source: 0}
        preds: dict[str, list[str]] = {}
        queue = deque([source])
        goal_dist: int | None = None
        while queue:
            vertex = queue.popleft()
            here = dist[vertex]
            if goal_dist is not None and here >= goal_dist:
                break
            for neighbour in sorted(self._adj[vertex]):
                if neighbour not in dist:
                    dist[neighbour] = here + 1
                    preds[neighbour] = [vertex]
                    if neighbour == destination:
                        goal_dist = here + 1
                    queue.append(neighbour)
                elif dist[neighbour] == here + 1:
                    preds[neighbour].append(vertex)
        if destination not in dist:  # pragma: no cover - validate_connected
            raise RoutingError(
                f"no path from {source!r} to {destination!r}"
            )

        paths: list[tuple[str, ...]] = []

        def walk(vertex: str, suffix: tuple[str, ...]) -> None:
            if vertex == source:
                paths.append((source,) + suffix)
                if len(paths) > MAX_EQUAL_COST_PATHS:
                    raise RoutingError(
                        f"more than {MAX_EQUAL_COST_PATHS} equal-cost "
                        f"paths between {source!r} and {destination!r}"
                    )
                return
            for pred in preds[vertex]:
                walk(pred, (vertex,) + suffix)

        walk(destination, ())
        paths.sort()
        return paths

    def _route_index(self, source: str, destination: str, fan: int) -> int:
        """Seeded, platform-stable index into the sorted equal-cost fan."""
        if fan == 1:
            return 0
        digest = zlib.crc32(
            f"{self.routing_seed}|{source}->{destination}".encode()
        )
        return digest % fan

    def path_links(
        self, source: str, destination: str
    ) -> list[FabricLink]:
        """Ordered directed links of the selected shortest path.

        The first link is the source's uplink into its switch, the last
        is the destination's downlink; links in between are inter-switch
        hops.  Among equal-cost shortest paths the choice is the seeded
        deterministic tie-break (module docstring); on trees the path
        is unique and the tie-break is vacuous.
        """
        key = (source, destination)
        cached = self._path_cache.get(key)
        if cached is None:
            paths = self.equal_cost_paths(source, destination)
            chosen = paths[self._route_index(source, destination, len(paths))]
            cached = tuple(
                FabricLink(tail=a, head=b)
                for a, b in zip(chosen, chosen[1:])
            )
            self._path_cache[key] = cached
        return list(cached)

    def hop_count(self, source: str, destination: str) -> int:
        """Number of links a channel between these nodes traverses."""
        return len(self.path_links(source, destination))

    def attachment(self, node: str) -> str:
        """The switch an end node is cabled to (leaves have exactly one)."""
        if node not in self._node_set:
            raise RoutingError(f"{node!r} is not an end node")
        neighbours = list(self._adj[node])
        if len(neighbours) != 1:  # pragma: no cover - construction forbids
            raise TopologyError(
                f"end node {node!r} has {len(neighbours)} cables"
            )
        return neighbours[0]

    def switch_adjacencies(self) -> list[tuple[str, str]]:
        """All switch-to-switch cables, each once, deterministically ordered."""
        edges = set()
        for a in self._switches:
            for b in self._adj[a]:
                if b in self._switches:
                    edges.add((min(a, b), max(a, b)))
        return sorted(edges)


# -- passes ----------------------------------------------------------------


def address_pass(fabric: FabricGraph) -> dict[str, NodeAddress]:
    """Deterministic MAC/IP assignment for every end node.

    Nodes are numbered in insertion order (falling back to sorted name
    order for fabric objects that do not track insertion); node ``i``
    gets MAC ``MAC_BASE + i + 1`` and IP ``IP_BASE + i`` -- exactly the
    scheme the star builder has used since the seed, so delegating to
    this pass changes no address anywhere.
    """
    order = getattr(fabric, "node_order", None)
    names: Sequence[str] = (
        tuple(order) if order is not None else tuple(sorted(fabric.nodes))
    )
    return {
        name: NodeAddress(index=i, mac=MAC_BASE + i + 1, ip=IP_BASE + i)
        for i, name in enumerate(names)
    }


def admission_pass(fabric: FabricGraph, dps=None, *, use_cache: bool = True):
    """Place multi-hop admission control on the (validated) graph.

    Returns a :class:`~repro.multiswitch.admission.MultiSwitchAdmission`
    with one per-directed-link feasibility-cache entry, the k-way
    proportional scheme by default.
    """
    from .admission import MultiSwitchAdmission
    from .partitioning import MultiHopProportional

    return MultiSwitchAdmission(
        fabric=fabric,
        dps=dps if dps is not None else MultiHopProportional(),
        use_cache=use_cache,
    )


def wiring_pass(fabric: FabricGraph, dps=None, **kwargs):
    """Materialize the data plane: every node, switch, wire and queue.

    Thin alias for
    :func:`~repro.multiswitch.simnet.build_fabric_network`, named as the
    pass it is in the build-then-passes pipeline.
    """
    from .simnet import build_fabric_network

    return build_fabric_network(fabric, dps=dps, **kwargs)


# -- builders --------------------------------------------------------------


def build_star_graph(
    node_names: Sequence[str],
    *,
    switch_name: str = "sw0",
    routing_seed: int = 0,
) -> FabricGraph:
    """The paper's star (Figure 18.1) as a one-switch graph."""
    graph = FabricGraph(routing_seed=routing_seed)
    graph.add_switch(switch_name)
    for name in node_names:
        graph.add_node(name, switch_name)
    return graph


def build_chain_graph(
    n_switches: int,
    nodes_per_switch: int,
    *,
    routing_seed: int = 0,
) -> FabricGraph:
    """A line of switches, each with its own stations.

    Node names are ``n{switch}_{index}``; switch names ``sw{i}`` --
    the same shape :meth:`SwitchFabric.chain` builds, as a graph.
    """
    if n_switches <= 0 or nodes_per_switch <= 0:
        raise TopologyError(
            "chain needs >= 1 switch and >= 1 node per switch"
        )
    graph = FabricGraph(routing_seed=routing_seed)
    for i in range(n_switches):
        graph.add_switch(f"sw{i}")
        if i > 0:
            graph.connect_switches(f"sw{i - 1}", f"sw{i}")
        for j in range(nodes_per_switch):
            graph.add_node(f"n{i}_{j}", f"sw{i}")
    return graph


def build_tree_graph(
    depth: int,
    fanout: int,
    hosts_per_leaf: int,
    *,
    routing_seed: int = 0,
) -> FabricGraph:
    """A complete switch tree: ``fanout``-ary, ``depth`` switch levels.

    Switches are named ``t{level}_{index}`` breadth-first; hosts
    ``n{leaf}_{j}`` hang off the ``fanout**(depth-1)`` leaf switches.
    """
    if depth <= 0 or fanout <= 0 or hosts_per_leaf <= 0:
        raise TopologyError(
            "tree needs depth, fanout and hosts_per_leaf all >= 1"
        )
    graph = FabricGraph(routing_seed=routing_seed)
    for level in range(depth):
        for index in range(fanout**level):
            graph.add_switch(f"t{level}_{index}")
            if level > 0:
                graph.connect_switches(
                    f"t{level - 1}_{index // fanout}", f"t{level}_{index}"
                )
    leaves = fanout ** (depth - 1)
    for leaf in range(leaves):
        for j in range(hosts_per_leaf):
            graph.add_node(f"n{leaf}_{j}", f"t{depth - 1}_{leaf}")
    return graph


def build_fat_tree(
    k: int,
    hosts_per_edge: int | None = None,
    *,
    routing_seed: int = 0,
) -> FabricGraph:
    """A k-ary fat-tree: core/aggregation/edge layers, hosts at edges.

    The classic Clos arrangement (k = 4 or 8 canonically): ``(k/2)^2``
    core switches ``core{c}``; ``k`` pods of ``k/2`` aggregation
    switches ``agg{pod}_{a}`` and ``k/2`` edge switches
    ``edge{pod}_{e}``; full bipartite edge-agg wiring inside a pod;
    aggregation switch ``a`` of every pod cables to core group ``a``
    (cores ``a*(k/2) .. a*(k/2)+k/2-1``).  ``hosts_per_edge`` (the
    Sieve builder's *density*) defaults to the standard ``k/2``, giving
    ``k^3/4`` hosts; raise it to scale host count without growing the
    switch fabric.  Inter-pod pairs see ``(k/2)^2`` equal-cost paths,
    intra-pod pairs ``k/2`` -- resolved by the seeded tie-break.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    density = half if hosts_per_edge is None else hosts_per_edge
    if density <= 0:
        raise TopologyError(
            f"hosts_per_edge must be >= 1, got {hosts_per_edge}"
        )
    graph = FabricGraph(routing_seed=routing_seed)
    for c in range(half * half):
        graph.add_switch(f"core{c}")
    for pod in range(k):
        for a in range(half):
            graph.add_switch(f"agg{pod}_{a}")
            for c in range(half):
                graph.connect_switches(f"agg{pod}_{a}", f"core{a * half + c}")
        for e in range(half):
            graph.add_switch(f"edge{pod}_{e}")
            for a in range(half):
                graph.connect_switches(f"edge{pod}_{e}", f"agg{pod}_{a}")
            for i in range(density):
                graph.add_node(f"h{pod}_{e}_{i}", f"edge{pod}_{e}")
    return graph
