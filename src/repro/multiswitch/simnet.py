"""Simulated data plane for switch fabrics (extension, EXP-X2).

:mod:`repro.multiswitch.admission` answers the *analysis* question for
switch trees; this module closes the loop the way EXP-V1 does for the
star: build the actual network -- every node, switch, wire and dual
queue -- drive admitted channels at the critical instant, and verify
that per-hop EDF really delivers within the end-to-end bound.

Model
-----
* **Admission is centralized and analytical** (the paper's signalling
  protocol is defined for a single switch only; extending the wire
  protocol to fabrics is out of scope). On acceptance the establishment
  installs, in every switch along the path, a forwarding entry
  ``channel -> (next hop, cumulative deadline offset)``.
* **Per-hop EDF keys are cumulative**: a frame released at ``t`` is
  scheduled on hop ``j`` with absolute deadline
  ``t + (part_1 + ... + part_j) * slot``, the natural generalization of
  the star's ``release + d_iu`` / ``release + d`` pair.
* The guarantee bound generalizes Eq. 18.1:
  ``d_i * slot + T_latency(k)`` with
  ``T_latency(k) = k*propagation + (k-1)*processing + k*blocking``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import MetricsCollector
from ..core.channel import ChannelSpec
from ..core.rt_layer import ChannelGrant, RTLayer
from ..errors import SimulationError, TopologyError, UnknownChannelError
from ..network.link import HalfLink
from ..network.phy import PhyProfile
from ..network.port import OutputPort
from ..protocol.ethernet import EthernetFrame, FrameKind, reset_frame_ids
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .admission import MultiAdmissionDecision, MultiSwitchAdmission
from .graph import FabricGraph
from .partitioning import MultiHopDPS, MultiHopProportional

__all__ = ["FabricChannel", "FabricSwitchModel", "FabricNetwork", "build_fabric_network"]


@dataclass(frozen=True, slots=True)
class FabricChannel:
    """An established multi-hop channel (simulation view)."""

    decision: MultiAdmissionDecision

    @property
    def channel_id(self) -> int:
        return self.decision.channel_id

    @property
    def source(self) -> str:
        return self.decision.source

    @property
    def destination(self) -> str:
        return self.decision.destination

    @property
    def spec(self) -> ChannelSpec:
        return self.decision.spec

    @property
    def hop_count(self) -> int:
        return len(self.decision.links)


@dataclass(slots=True)
class _ForwardingEntry:
    """Per-switch routing state for one channel."""

    next_hop: str
    #: cumulative deadline (slots since release) after the *outgoing* hop.
    cumulative_deadline_slots: int
    #: 1-based index of the outgoing hop along the channel's path; the
    #: miss check allows ``hop`` frames of cascaded blocking plus the
    #: accumulated propagation/processing (per-hop share of T_latency).
    hop_index: int = 2


class FabricSwitchModel:
    """One switch of the fabric: ports to neighbours plus routing state."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        name: str,
        trace: TraceRecorder | None = None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self.name = name
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._ports: dict[str, OutputPort] = {}
        self._forwarding: dict[int, _ForwardingEntry] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0
        #: optional SpanTracker (set by Telemetry.instrument_fabric).
        self.spans = None

    @property
    def ports(self) -> dict[str, OutputPort]:
        """Output ports keyed by neighbour name (copy)."""
        return dict(self._ports)

    def attach_port(self, neighbour: str, port: OutputPort) -> None:
        if neighbour in self._ports:
            raise SimulationError(
                f"switch {self.name!r} already has a port toward "
                f"{neighbour!r}"
            )
        self._ports[neighbour] = port

    def install_route(
        self,
        channel_id: int,
        next_hop: str,
        cumulative_deadline_slots: int,
        hop_index: int = 2,
    ) -> None:
        if next_hop not in self._ports:
            raise SimulationError(
                f"switch {self.name!r} has no port toward {next_hop!r}"
            )
        self._forwarding[channel_id] = _ForwardingEntry(
            next_hop=next_hop,
            cumulative_deadline_slots=cumulative_deadline_slots,
            hop_index=hop_index,
        )

    def remove_route(self, channel_id: int) -> None:
        self._forwarding.pop(channel_id, None)

    def receive(self, frame: EthernetFrame) -> None:
        """Frame fully arrived; route after the processing delay."""
        if self.spans is not None:
            now = self._sim.now
            self.spans.frame_processing(
                frame.frame_id, now, now + self._phy.switch_processing_ns,
                self.name,
            )
        self._sim.schedule(
            self._phy.switch_processing_ns,
            lambda f=frame: self._forward(f),
            label=f"{self.name}:process",
        )

    def _forward(self, frame: EthernetFrame) -> None:
        if frame.kind is not FrameKind.RT_DATA:
            # The fabric data plane models RT channels only; best-effort
            # routing over trees is out of this extension's scope.
            self.frames_dropped += 1
            if self.spans is not None:
                self.spans.frame_dropped(
                    frame.frame_id, self._sim.now, self.name
                )
            if self._trace.enabled_for("fabric.drop"):
                self._trace.record(
                    self._sim.now, "fabric.drop", self.name, frame.describe(),
                    fields={"reason": "non-rt"},
                )
            return
        entry = self._forwarding.get(frame.channel_id)
        if entry is None:
            self.frames_dropped += 1
            if self.spans is not None:
                self.spans.frame_dropped(
                    frame.frame_id, self._sim.now, self.name
                )
            if self._trace.enabled_for("fabric.drop"):
                self._trace.record(
                    self._sim.now, "fabric.drop", self.name, frame.describe(),
                    fields={"reason": "unknown-channel",
                            "channel": frame.channel_id},
                )
            return
        hop_deadline_ns = (
            frame.created_at
            + entry.cumulative_deadline_slots * self._phy.slot_ns
        )
        hop = entry.hop_index
        allowance = (
            hop * (self._phy.propagation_ns + self._phy.max_frame_ns)
            + (hop - 1) * self._phy.switch_processing_ns
        )
        self._ports[entry.next_hop].submit_rt(
            frame, hop_deadline_ns, allowance_ns=allowance
        )
        self.frames_forwarded += 1


class _FabricEndNode:
    """Leaf station: sends on granted channels, receives into metrics."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        name: str,
        metrics: MetricsCollector,
        trace: TraceRecorder | None = None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self.name = name
        self._metrics = metrics
        self._trace = (
            trace if trace is not None else TraceRecorder(enabled=False)
        )
        self.rt_layer = RTLayer(node_name=name, slot_ns=phy.slot_ns)
        self.uplink: OutputPort | None = None
        self._active_sources: set[int] = set()
        #: optional SpanTracker (set by Telemetry.instrument_fabric).
        self.spans = None

    def receive(self, frame: EthernetFrame) -> None:
        self._metrics.on_delivery(frame, self._sim.now)
        if self.spans is not None:
            self.spans.frame_done(frame.frame_id)
        # Same record the star's EndNode emits, so trace-based delay
        # extraction (analysis.timeline.extract_frame_delays) works on
        # fabric runs too.
        if self._trace.enabled_for("node.deliver"):
            self._trace.record(
                self._sim.now,
                "node.deliver",
                self.name,
                frame.describe(),
                fields={
                    "channel": frame.channel_id,
                    "delay_ns": self._sim.now - frame.created_at,
                },
            )

    def send_message(self, channel_id: int) -> int:
        if self.uplink is None:
            raise SimulationError(f"node {self.name!r} has no uplink")
        outgoing = self.rt_layer.emit_message(channel_id, self._sim.now)
        for item in outgoing:
            self.uplink.submit_rt(item.frame, item.uplink_deadline_ns)
        return len(outgoing)

    def start_periodic_source(
        self, channel_id: int, stop_after_messages: int | None = None
    ) -> None:
        grant = self.rt_layer.grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self.name!r} has no channel {channel_id}"
            )
        period_ns = grant.spec.period * self._phy.slot_ns
        self._active_sources.add(channel_id)
        remaining = stop_after_messages

        def fire() -> None:
            nonlocal remaining
            if channel_id not in self._active_sources:
                return
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            self.send_message(channel_id)
            self._sim.schedule(period_ns, fire)

        self._sim.schedule(0, fire)


class FabricNetwork:
    """A fully wired multi-switch network with centralized admission."""

    def __init__(
        self,
        fabric: FabricGraph,
        admission: MultiSwitchAdmission,
        phy: PhyProfile,
        trace_enabled: bool = False,
        record_delays: bool = False,
        telemetry=None,
    ) -> None:
        fabric.validate_connected()
        self.fabric = fabric
        self.admission = admission
        self.phy = phy
        self.telemetry = telemetry
        reset_frame_ids()
        self.sim = Simulator()
        if telemetry is not None:
            self.trace = telemetry.recorder
        else:
            self.trace = TraceRecorder(enabled=trace_enabled)
        max_hops = self._max_hop_count()
        self.metrics = MetricsCollector(
            t_latency_ns=self._t_latency_ns(max_hops),
            record_delays=record_delays,
        )
        self.switches: dict[str, FabricSwitchModel] = {}
        self.nodes: dict[str, _FabricEndNode] = {}
        self.channels: list[FabricChannel] = []
        self._wire_everything()
        if telemetry is not None:
            telemetry.instrument_fabric(self)

    # -- construction ------------------------------------------------------

    def _max_hop_count(self) -> int:
        nodes = sorted(self.fabric.nodes)
        worst = 2
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                worst = max(worst, self.fabric.hop_count(a, b))
        return worst

    def _t_latency_ns(self, hops: int) -> int:
        """Generalized Eq. 18.1 latency constant for ``hops``-link paths."""
        return (
            hops * self.phy.propagation_ns
            + (hops - 1) * self.phy.switch_processing_ns
            + hops * self.phy.max_frame_ns
        )

    def _wire_everything(self) -> None:
        for switch_name in sorted(self.fabric.switches):
            self.switches[switch_name] = FabricSwitchModel(
                sim=self.sim, phy=self.phy, name=switch_name,
                trace=self.trace,
            )
        for node_name in sorted(self.fabric.nodes):
            self.nodes[node_name] = _FabricEndNode(
                sim=self.sim, phy=self.phy, name=node_name,
                metrics=self.metrics, trace=self.trace,
            )
        # one duplex cable per fabric edge = two HalfLinks + two ports
        for node_name in sorted(self.fabric.nodes):
            self._wire_edge(node_name, self.fabric.attachment(node_name))
        for a, b in self.fabric.switch_adjacencies():
            self._wire_edge(a, b)

    def _receiver(self, name: str):
        if name in self.switches:
            return self.switches[name].receive
        return self.nodes[name].receive

    def _wire_edge(self, a: str, b: str) -> None:
        for tail, head in ((a, b), (b, a)):
            wire = HalfLink(
                sim=self.sim,
                phy=self.phy,
                name=f"{tail}->{head}",
                deliver=self._receiver(head),
                trace=self.trace,
            )
            port = OutputPort(
                sim=self.sim,
                phy=self.phy,
                link=wire,
                name=f"port:{tail}->{head}",
                trace=self.trace,
            )
            if tail in self.switches:
                self.switches[tail].attach_port(head, port)
            else:
                node = self.nodes[tail]
                if node.uplink is not None:
                    raise TopologyError(
                        f"end node {tail!r} has two cables; leaves attach "
                        "to exactly one switch"
                    )
                node.uplink = port

    # -- establishment ---------------------------------------------------------

    def establish(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> FabricChannel | None:
        """Admit analytically and install forwarding + grant on success."""
        decision = self.admission.request(source, destination, spec)
        if not decision.accepted:
            return None
        parts = decision.parts
        links = decision.links
        # first hop: the source node's uplink EDF key
        cumulative_after_first = parts[0]
        grant = ChannelGrant(
            channel_id=decision.channel_id,
            source=source,
            destination=destination,
            spec=spec,
            uplink_deadline_slots=cumulative_after_first,
        )
        self.nodes[source].rt_layer.install_grant(grant)
        # remaining hops are transmitted by switches
        cumulative = parts[0]
        for hop_index, (link, part) in enumerate(
            zip(links[1:], parts[1:]), start=2
        ):
            cumulative += part
            self.switches[link.tail].install_route(
                decision.channel_id, link.head, cumulative,
                hop_index=hop_index,
            )
        self.metrics.register_channel(decision.channel_id, spec.capacity)
        spans = None if self.telemetry is None else self.telemetry.spans
        if spans is not None:
            root = spans.channel_root(
                decision.channel_id, self.sim.now, source
            )
            spans.event(
                root.trace_id, root.span_id, "admission", source,
                self.sim.now,
                {
                    "verdict": "accept",
                    "destination": destination,
                    "hops": len(links),
                },
            )
        channel = FabricChannel(decision=decision)
        self.channels.append(channel)
        return channel

    def release(self, channel_id: int) -> None:
        decision = self.admission.release(channel_id)
        for link in decision.links[1:]:
            self.switches[link.tail].remove_route(channel_id)
        self.channels = [
            c for c in self.channels if c.channel_id != channel_id
        ]

    # -- traffic -----------------------------------------------------------------

    def start_all_sources(
        self, stop_after_messages: int | None = None
    ) -> None:
        """Critical-instant release on every established channel."""
        for channel in self.channels:
            self.nodes[channel.source].start_periodic_source(
                channel.channel_id, stop_after_messages=stop_after_messages
            )

    def per_link_misses(self) -> int:
        total = 0
        for node in self.nodes.values():
            if node.uplink is not None:
                total += node.uplink.stats.rt_link_deadline_misses
        for switch in self.switches.values():
            for port in switch.ports.values():
                total += port.stats.rt_link_deadline_misses
        return total


def build_fabric_network(
    fabric: FabricGraph,
    dps: MultiHopDPS | None = None,
    phy: PhyProfile | None = None,
    trace_enabled: bool = False,
    record_delays: bool = False,
    telemetry=None,
) -> FabricNetwork:
    """Convenience builder pairing a fabric with admission and a kernel.

    ``telemetry`` is an optional :class:`~repro.obs.Telemetry` bundle:
    its recorder becomes the network's trace and the fabric is fully
    instrumented (kernel counters, per-hop spans, delay observer) via
    :meth:`~repro.obs.bundle.Telemetry.instrument_fabric`.
    """
    phy = phy or PhyProfile.fast_ethernet()
    admission = MultiSwitchAdmission(
        fabric=fabric, dps=dps or MultiHopProportional()
    )
    return FabricNetwork(
        fabric=fabric, admission=admission, phy=phy,
        trace_enabled=trace_enabled, record_delays=record_delays,
        telemetry=telemetry,
    )
