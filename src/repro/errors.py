"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).

The hierarchy mirrors the architecture of the reproduced system
(Hoang & Jonsson, 2004):

* configuration / parameter validation  -> :class:`ConfigurationError`
* RT-channel parameter problems         -> :class:`ChannelParameterError`
* deadline partitioning problems        -> :class:`PartitioningError`
* admission-control rejections          -> :class:`AdmissionError` (and the
  more specific :class:`InfeasibleChannelError`)
* signalling-protocol violations        -> :class:`ProtocolError`
* frame encoding/decoding problems      -> :class:`CodecError`
* simulator misuse                      -> :class:`SimulationError`
* topology construction problems        -> :class:`TopologyError`

Note that an admission *rejection* in normal operation is reported as a
result value (:class:`repro.core.admission.AdmissionDecision`), not an
exception; :class:`InfeasibleChannelError` is only raised by APIs whose
contract is "admit or raise".
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ChannelParameterError",
    "PartitioningError",
    "AdmissionError",
    "InfeasibleChannelError",
    "UnknownChannelError",
    "ProtocolError",
    "CodecError",
    "FieldRangeError",
    "SimulationError",
    "SchedulingError",
    "InvariantViolation",
    "TopologyError",
    "RoutingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object or parameter set is invalid.

    Raised during construction of configuration dataclasses (for example a
    non-positive link speed or an empty node set), before any simulation or
    analysis runs.
    """


class ChannelParameterError(ConfigurationError):
    """An RT-channel parameter triple ``{P, C, d}`` is invalid.

    Per the paper (Section 18.2.2) every parameter is a positive number of
    maximum-sized frames; additionally ``C <= P`` is required for a
    periodic channel to be schedulable at all, and ``d >= 2*C`` is required
    for feasibility through a store-and-forward switch (Eq. 18.9).
    The ``d >= 2*C`` condition is *not* checked at construction time --
    such a channel is representable but will be rejected by admission
    control -- only structural validity is enforced here.
    """


class PartitioningError(ReproError, ValueError):
    """A deadline-partitioning scheme produced or received invalid input.

    Examples: a partition that violates ``d_iu + d_id == d_i`` (Eq. 18.8),
    or a request to partition a channel with ``d_i < 2*C_i`` for which no
    valid partition exists (Eq. 18.9).
    """


class AdmissionError(ReproError):
    """Base class for admission-control errors."""


class InfeasibleChannelError(AdmissionError):
    """Raised by admit-or-raise APIs when a channel request is infeasible.

    Attributes
    ----------
    decision:
        The full :class:`~repro.core.admission.AdmissionDecision` explaining
        which link and which constraint failed, when available.
    """

    def __init__(self, message: str, decision: object | None = None) -> None:
        super().__init__(message)
        self.decision = decision


class UnknownChannelError(AdmissionError, KeyError):
    """An operation referenced an RT-channel ID that is not active."""


class ProtocolError(ReproError):
    """The RT-channel signalling protocol was violated.

    Examples: a ResponseFrame for an unknown connection-request ID, a
    RequestFrame arriving at an end node, or a duplicate establishment
    for an already-active channel ID.
    """


class CodecError(ReproError, ValueError):
    """A frame could not be encoded or decoded.

    Raised by the bit-level codecs in :mod:`repro.protocol` when input
    bytes are truncated, a type tag is unknown, or a field is out of its
    declared range (see :class:`FieldRangeError`).
    """


class FieldRangeError(CodecError):
    """A frame field value does not fit the bit width declared in the paper.

    The Request/Response frame layouts (Figures 18.3 and 18.4) declare
    exact field widths -- e.g. the RT channel ID is 16 bits, the
    connection-request ID 8 bits. Values outside those ranges cannot be
    represented on the wire and are rejected eagerly.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator was misused.

    Examples: scheduling an event in the past, running a simulator that
    was already finalized, or an event handler raising during dispatch.
    """


class SchedulingError(SimulationError):
    """A frame-level scheduling invariant was violated at runtime.

    The simulator asserts the paper's guarantee (Eq. 18.1): an admitted
    RT frame must never complete transmission on a link after its
    per-link EDF deadline. A violation indicates a bug in either the
    feasibility analysis or the scheduler and is therefore an error, not
    a statistic.
    """


class InvariantViolation(SimulationError):
    """An online-monitored invariant failed during a run.

    Raised only in the monitor's fail-fast mode
    (:class:`repro.obs.monitor.InvariantMonitor`): a delivered frame
    exceeded its network-calculus or paper delay bound, a link was
    overbooked past unit utilization, or a signalling lease leaked.
    The anomaly record that triggered it rides on the exception.
    """

    def __init__(self, message: str, anomaly: dict | None = None) -> None:
        super().__init__(message)
        self.anomaly = anomaly


class TopologyError(ReproError, ValueError):
    """A network topology is structurally invalid.

    Examples: duplicate node names, a star topology with zero end nodes,
    or a tree topology containing a cycle.
    """


class RoutingError(TopologyError):
    """No route exists between two nodes, or a route lookup was ambiguous."""
