"""Time and bandwidth units for the reproduced system.

The paper (Section 18.2.2) expresses every RT-channel parameter -- period
``P``, capacity ``C`` and relative deadline ``d`` -- as a *number of
maximum-sized frames*, i.e. in **timeslots**, where one timeslot is the
time needed to transmit one maximum-sized Ethernet frame on the link.
All feasibility analysis in :mod:`repro.core` is therefore carried out in
exact integer timeslot arithmetic.

The discrete-event simulator, on the other hand, runs in **integer
nanoseconds** so that it can model frames of arbitrary size (signalling
frames and best-effort frames are usually much shorter than a timeslot)
without losing determinism to floating point. This module provides the
bridge between the two domains:

* :class:`TimeBase` -- conversion between timeslots and nanoseconds for a
  given link speed and maximum frame size.
* Wire-size accounting helpers that include the parts of a frame that
  occupy the medium but are invisible to the payload: preamble, start
  frame delimiter (SFD) and inter-frame gap (IFG).

Example
-------
>>> tb = TimeBase.for_speed_mbps(100)
>>> tb.slot_ns  # one maximum frame on fast Ethernet
123040
>>> tb.slots_to_ns(3)
369120
>>> tb.ns_to_slots_ceil(1)
1
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

__all__ = [
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "ETH_MAX_PAYLOAD",
    "ETH_MIN_PAYLOAD",
    "ETH_HEADER_BYTES",
    "ETH_FCS_BYTES",
    "ETH_PREAMBLE_BYTES",
    "ETH_SFD_BYTES",
    "ETH_IFG_BYTES",
    "ETH_MAX_FRAME_BYTES",
    "ETH_MIN_FRAME_BYTES",
    "ETH_MAX_WIRE_BYTES",
    "ETH_MIN_WIRE_BYTES",
    "wire_bytes",
    "frame_bytes_for_payload",
    "TimeBase",
]

# -- plain time constants ---------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

# -- IEEE 802.3 size constants (bytes) ---------------------------------------

#: Maximum Ethernet payload (bytes) -- the classic 1500-byte MTU.
ETH_MAX_PAYLOAD = 1500
#: Minimum Ethernet payload (bytes); shorter payloads are padded.
ETH_MIN_PAYLOAD = 46
#: Destination MAC + source MAC + EtherType.
ETH_HEADER_BYTES = 14
#: Frame check sequence (CRC-32).
ETH_FCS_BYTES = 4
#: Preamble transmitted before every frame.
ETH_PREAMBLE_BYTES = 7
#: Start frame delimiter.
ETH_SFD_BYTES = 1
#: Inter-frame gap, expressed in byte times (96 bit times).
ETH_IFG_BYTES = 12

#: Maximum frame as counted by the MAC (header + payload + FCS).
ETH_MAX_FRAME_BYTES = ETH_HEADER_BYTES + ETH_MAX_PAYLOAD + ETH_FCS_BYTES  # 1518
#: Minimum frame as counted by the MAC.
ETH_MIN_FRAME_BYTES = ETH_HEADER_BYTES + ETH_MIN_PAYLOAD + ETH_FCS_BYTES  # 64

#: Wire occupancy of a maximum frame (adds preamble, SFD and IFG): 1538.
ETH_MAX_WIRE_BYTES = (
    ETH_MAX_FRAME_BYTES + ETH_PREAMBLE_BYTES + ETH_SFD_BYTES + ETH_IFG_BYTES
)
#: Wire occupancy of a minimum frame: 84.
ETH_MIN_WIRE_BYTES = (
    ETH_MIN_FRAME_BYTES + ETH_PREAMBLE_BYTES + ETH_SFD_BYTES + ETH_IFG_BYTES
)


def frame_bytes_for_payload(payload_bytes: int) -> int:
    """Return the MAC frame size (header + padded payload + FCS).

    Payloads shorter than :data:`ETH_MIN_PAYLOAD` are padded up, as the
    standard requires; payloads longer than :data:`ETH_MAX_PAYLOAD` are
    rejected (this library never emits jumbo frames -- the paper's
    timeslot is defined by the standard maximum frame).
    """
    if payload_bytes < 0:
        raise ConfigurationError(f"negative payload size: {payload_bytes}")
    if payload_bytes > ETH_MAX_PAYLOAD:
        raise ConfigurationError(
            f"payload of {payload_bytes} bytes exceeds the Ethernet maximum "
            f"of {ETH_MAX_PAYLOAD}; split it over several frames instead"
        )
    padded = max(payload_bytes, ETH_MIN_PAYLOAD)
    return ETH_HEADER_BYTES + padded + ETH_FCS_BYTES


def wire_bytes(frame_bytes: int) -> int:
    """Return the wire occupancy of a MAC frame (adds preamble+SFD+IFG).

    This is the quantity that determines how long the medium is busy, and
    hence what one "timeslot" costs for a maximum frame.
    """
    if frame_bytes < ETH_MIN_FRAME_BYTES:
        raise ConfigurationError(
            f"frame of {frame_bytes} bytes is below the Ethernet minimum "
            f"of {ETH_MIN_FRAME_BYTES}"
        )
    return frame_bytes + ETH_PREAMBLE_BYTES + ETH_SFD_BYTES + ETH_IFG_BYTES


@dataclass(frozen=True, slots=True)
class TimeBase:
    """Conversion between analysis timeslots and simulator nanoseconds.

    Parameters
    ----------
    bits_per_second:
        Raw link speed. Full-duplex links have this capacity independently
        in each direction.
    max_wire_bytes:
        Wire occupancy of a maximum-sized frame, including preamble, SFD
        and inter-frame gap. One timeslot is exactly the time to put this
        many bytes on the wire.

    Notes
    -----
    ``slot_ns`` is kept exact: the constructor rejects combinations where
    the slot duration is not an integer number of nanoseconds (all the
    standard Ethernet speeds divide evenly).
    """

    bits_per_second: int
    max_wire_bytes: int = ETH_MAX_WIRE_BYTES

    def __post_init__(self) -> None:
        if self.bits_per_second <= 0:
            raise ConfigurationError(
                f"link speed must be positive, got {self.bits_per_second}"
            )
        if self.max_wire_bytes <= 0:
            raise ConfigurationError(
                f"max_wire_bytes must be positive, got {self.max_wire_bytes}"
            )
        total_bits = 8 * self.max_wire_bytes * NS_PER_S
        if total_bits % self.bits_per_second != 0:
            raise ConfigurationError(
                "slot duration is not an integer number of nanoseconds for "
                f"speed={self.bits_per_second} bps and "
                f"max_wire_bytes={self.max_wire_bytes}"
            )

    @classmethod
    def for_speed_mbps(
        cls, mbps: int, max_wire_bytes: int = ETH_MAX_WIRE_BYTES
    ) -> "TimeBase":
        """Convenience constructor for common Ethernet speeds (10/100/1000)."""
        return cls(bits_per_second=mbps * 1_000_000, max_wire_bytes=max_wire_bytes)

    @property
    def slot_ns(self) -> int:
        """Duration of one timeslot (one maximum frame on the wire) in ns."""
        return 8 * self.max_wire_bytes * NS_PER_S // self.bits_per_second

    @property
    def byte_time_ns_num(self) -> tuple[int, int]:
        """Byte time as an exact rational ``(numerator_ns, denominator)``.

        At 100 Mbps one byte takes 80 ns exactly; at 1 Gbps it takes 8 ns;
        other speeds may not be integral, hence the rational form.
        """
        return (8 * NS_PER_S, self.bits_per_second)

    def bytes_to_ns(self, nbytes: int) -> int:
        """Time (ns) to transmit ``nbytes`` on the wire, rounded up.

        Rounding up is the conservative choice for a real-time analysis:
        the medium is never modelled as free earlier than it truly is.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative byte count: {nbytes}")
        num, den = 8 * NS_PER_S * nbytes, self.bits_per_second
        return -(-num // den)  # ceiling division

    def slots_to_ns(self, slots: int) -> int:
        """Convert a whole number of timeslots to nanoseconds (exact)."""
        if slots < 0:
            raise ConfigurationError(f"negative slot count: {slots}")
        return slots * self.slot_ns

    def ns_to_slots_ceil(self, ns: int) -> int:
        """Smallest whole number of timeslots covering ``ns`` nanoseconds."""
        if ns < 0:
            raise ConfigurationError(f"negative duration: {ns}")
        return -(-ns // self.slot_ns)

    def ns_to_slots_floor(self, ns: int) -> int:
        """Largest whole number of timeslots contained in ``ns`` nanoseconds."""
        if ns < 0:
            raise ConfigurationError(f"negative duration: {ns}")
        return ns // self.slot_ns
