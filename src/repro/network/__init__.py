"""Switched-Ethernet network models (the simulated substrate).

* :mod:`~repro.network.phy` -- link-speed profiles and latency budgets.
* :mod:`~repro.network.link` -- a unidirectional wire with exact
  transmission timing.
* :mod:`~repro.network.port` -- an output port: EDF + FCFS queues
  feeding one wire (Figure 18.2's queue pair).
* :mod:`~repro.network.node` -- an end node with an RT layer.
* :mod:`~repro.network.switch` -- the store-and-forward switch with
  admission control and channel management.
* :mod:`~repro.network.topology` -- builders wiring everything to a
  simulator (star per the paper; tree as the future-work extension).
"""

from .phy import PhyProfile
from .link import HalfLink
from .port import OutputPort
from .node import EndNode
from .switch import Switch
from .topology import StarNetwork, build_star

__all__ = [
    "PhyProfile",
    "HalfLink",
    "OutputPort",
    "EndNode",
    "Switch",
    "StarNetwork",
    "build_star",
]
