"""Topology builders: wire nodes, switch, links and ports to a kernel.

:func:`build_star` assembles the paper's network (Figure 18.1): one
switch, N end nodes, one full-duplex link per node. The returned
:class:`StarNetwork` owns every component and offers the high-level
operations experiments use:

* :meth:`StarNetwork.establish` -- run the complete signalling handshake
  through the simulated network and return the grant (or ``None`` on
  rejection);
* :meth:`StarNetwork.establish_analytically` -- skip the wire protocol
  and ask admission control directly (what the Figure 18.5 acceptance
  experiments need: thousands of requests with no data plane);
* address bookkeeping (MAC/IP assignment and directory registration).

Multi-switch *analysis* (the paper's future-work extension) lives in
:mod:`repro.multiswitch`; this module only builds the single-switch
data-plane network the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.metrics import MetricsCollector
from ..core.admission import AdmissionController, SystemState
from ..core.channel import ChannelSpec
from ..core.channel_manager import NodeDirectory
from ..core.partitioning import DeadlinePartitioningScheme, SymmetricDPS
from ..core.rt_layer import ChannelGrant
from ..errors import TopologyError
from ..multiswitch.graph import address_pass, build_star_graph
from ..protocol.ethernet import reset_frame_ids
from ..protocol.signaling import DestinationPolicy, RetryPolicy, accept_all
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..sim.trace import TraceRecorder
from .link import HalfLink
from .node import EndNode, SWITCH_NAME
from .phy import PhyProfile
from .port import OutputPort
from .switch import Switch

__all__ = ["StarNetwork", "build_star"]

#: The switch's own MAC; end-node MAC/IP assignment is the address
#: pass of the graph builder (``MAC_BASE + i + 1`` / ``IP_BASE + i``
#: in name order -- see :func:`repro.multiswitch.graph.address_pass`).
_SWITCH_MAC = 0x02_FF_FF_FF_FF_FF


@dataclass
class StarNetwork:
    """A fully wired star network plus its bookkeeping objects."""

    sim: Simulator
    phy: PhyProfile
    metrics: MetricsCollector
    switch: Switch
    nodes: dict[str, EndNode]
    admission: AdmissionController
    directory: NodeDirectory
    trace: TraceRecorder
    grants: list[ChannelGrant] = field(default_factory=list)
    rejections: int = 0
    #: the telemetry bundle this network reports into (None = none).
    telemetry: object | None = None

    def node(self, name: str) -> EndNode:
        node = self.nodes.get(name)
        if node is None:
            raise TopologyError(f"no node named {name!r} in this network")
        return node

    # -- channel establishment ------------------------------------------------

    def establish(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        timeout_ns: int | None = None,
        retry: RetryPolicy | None = None,
        retry_rng=None,
    ) -> ChannelGrant | None:
        """Run the full Request/Response handshake on the simulated wire.

        Drains the event queue (the paper establishes channels before
        any real-time traffic flows, so there is nothing else in flight
        during the handshake unless the caller started sources early --
        in that case events interleave correctly anyway).

        Returns the grant on acceptance, ``None`` on rejection or (with
        ``timeout_ns`` or ``retry`` set, for lossy networks) on timeout.
        ``retry``/``retry_rng`` enable RequestFrame retransmission with
        backoff (see :meth:`EndNode.request_channel`).
        """
        src = self.node(source)
        dst = self.node(destination)
        result: list[ChannelGrant | None] = []

        def on_complete(request, grant) -> None:
            result.append(grant)

        src.request_channel(
            destination_mac=dst.mac,
            destination_ip=dst.ip,
            destination_name=destination,
            spec=spec,
            on_complete=on_complete,
            timeout_ns=timeout_ns,
            retry=retry,
            retry_rng=retry_rng,
        )
        self.sim.run()
        if not result:
            raise TopologyError(
                "handshake did not complete: the simulator drained without "
                "a final response -- on lossy networks pass timeout_ns so "
                "lost signalling frames resolve to a timed-out request"
            )
        grant = result[0]
        if grant is None:
            self.rejections += 1
        else:
            self.grants.append(grant)
        return grant

    def establish_analytically(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> ChannelGrant | None:
        """Admission decision without the wire protocol (no simulation).

        Used by the acceptance-count experiments: the outcome is
        identical to :meth:`establish` with the default accept-all
        destination policy, because the handshake adds no admission
        logic -- only signalling latency.
        """
        decision = self.admission.request(source, destination, spec)
        if not decision.accepted:
            self.rejections += 1
            return None
        channel = decision.channel
        grant = ChannelGrant(
            channel_id=channel.channel_id,
            source=channel.source,
            destination=channel.destination,
            spec=channel.spec,
            uplink_deadline_slots=channel.uplink_deadline,
        )
        self.node(source).rt_layer.install_grant(grant)
        self.node(destination).incoming_channels[channel.channel_id] = (
            spec.capacity
        )
        self.metrics.register_channel(channel.channel_id, spec.capacity)
        self.grants.append(grant)
        return grant

    # -- convenience --------------------------------------------------------------

    def start_all_sources(
        self,
        stop_after_messages: int | None = None,
        random_phases_rng=None,
    ) -> None:
        """Start a periodic source for every granted channel.

        By default all sources release their first message at the *same*
        instant -- the critical instant of the feasibility analysis,
        i.e. the provably worst case. Passing ``random_phases_rng``
        instead staggers each source by a uniform phase within its own
        period, modelling unsynchronized stations; any schedule that
        survives the critical instant must also survive this, which the
        validation experiments check.
        """
        for grant in self.grants:
            phase_ns = 0
            if random_phases_rng is not None:
                period_ns = grant.spec.period * self.phy.slot_ns
                phase_ns = int(random_phases_rng.integers(0, period_ns))
            self.node(grant.source).start_periodic_source(
                grant.channel_id,
                stop_after_messages=stop_after_messages,
                phase_ns=phase_ns,
            )

    def run_slots(self, slots: int) -> None:
        """Advance the simulation by a whole number of timeslots."""
        self.sim.run(until=self.sim.now + slots * self.phy.slot_ns)


def build_star(
    node_names: Sequence[str],
    dps: DeadlinePartitioningScheme | None = None,
    phy: PhyProfile | None = None,
    destination_policy: DestinationPolicy = accept_all,
    be_buffer_frames: int | None = 512,
    trace_enabled: bool = False,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    record_delays: bool = False,
    telemetry=None,
    fault_plan=None,
    signal_lease_ns: int | None = 50_000_000,
    queue: str = "heap",
) -> StarNetwork:
    """Build the paper's star network, fully wired and ready to run.

    Parameters
    ----------
    node_names:
        End-node names; duplicates are rejected. MAC and IP addresses
        are assigned deterministically from the ordering.
    dps:
        The deadline-partitioning scheme for admission control
        (default: SDPS, the paper's baseline).
    phy:
        Timing profile (default: 100 Mbps fast Ethernet).
    destination_policy:
        Accept/decline policy installed on *every* node.
    be_buffer_frames:
        Finite best-effort buffer per output port (None = unbounded).
    trace_enabled:
        Record detailed traces (debugging; costs memory).
    loss_rate, loss_seed:
        Fault injection: per-frame corruption probability applied on
        every wire (see :class:`~repro.network.link.HalfLink`). Zero by
        default -- the paper's model is error-free.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` bundle. When given, its
        recorder becomes the network's trace (``trace_enabled`` is
        ignored), admission verdicts are counted into its registry, and
        the whole network is instrumented
        (:meth:`~repro.obs.bundle.Telemetry.instrument_star`).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`, installed on every
        wire for targeted control-plane loss (EXP-R2).
    signal_lease_ns:
        Reservation-lease duration at the switch (default 50 ms). On
        error-free wires every lease timer is cancelled when its offer
        resolves, so the default costs nothing and changes no observable
        behaviour; under loss it bounds how long a stranded reservation
        can hold admission capacity. ``None`` disables leases and the
        switch's duplicate-frame tolerance entirely (the pre-lease,
        paper-exact state machine).
    queue:
        Event-queue implementation for the kernel, ``"heap"`` (default)
        or ``"calendar"`` -- both dispatch in the identical ``(time,
        seq)`` total order (see :class:`~repro.sim.kernel.Simulator`),
        so the choice never changes results, only kernel performance.
    """
    names = list(node_names)
    if not names:
        raise TopologyError("a star network needs at least one end node")
    if len(set(names)) != len(names):
        raise TopologyError(f"duplicate node names in {names!r}")
    if SWITCH_NAME in names:
        raise TopologyError(
            f"{SWITCH_NAME!r} is reserved for the switch itself"
        )
    # The star is the one-switch graph; the shared address pass assigns
    # every end node its deterministic MAC/IP (identical numbering to
    # what this builder has always produced).
    graph = build_star_graph(names, switch_name=SWITCH_NAME)
    addresses = address_pass(graph)

    reset_frame_ids()
    sim = Simulator(queue=queue)
    phy = phy or PhyProfile.fast_ethernet()
    if telemetry is not None:
        trace = telemetry.recorder
    else:
        trace = TraceRecorder(enabled=trace_enabled)
    loss_rng = (
        RngRegistry(loss_seed).stream("link-loss") if loss_rate > 0 else None
    )
    metrics = MetricsCollector(
        t_latency_ns=phy.t_latency_ns, record_delays=record_delays
    )
    directory = NodeDirectory()
    state = SystemState(nodes=names)
    admission = AdmissionController(
        state=state,
        dps=dps or SymmetricDPS(),
        metrics=None if telemetry is None else telemetry.registry,
    )
    registry = None if telemetry is None else telemetry.registry
    switch = Switch(
        sim=sim,
        phy=phy,
        mac=_SWITCH_MAC,
        admission=admission,
        directory=directory,
        trace=trace,
        lease_ns=signal_lease_ns,
        registry=registry,
    )

    nodes: dict[str, EndNode] = {}
    for name in graph.node_order:
        address = addresses[name]
        mac = address.mac
        ip = address.ip
        directory.register(name, mac=mac, ip=ip)
        node = EndNode(
            sim=sim,
            phy=phy,
            name=name,
            mac=mac,
            ip=ip,
            switch_mac=_SWITCH_MAC,
            metrics=metrics,
            destination_policy=destination_policy,
            trace=trace,
            registry=registry,
        )
        nodes[name] = node

        # uplink: node -> switch
        up_wire = HalfLink(
            sim=sim,
            phy=phy,
            name=f"{name}->switch",
            deliver=switch.receive,
            trace=trace,
            loss_rate=loss_rate,
            loss_rng=loss_rng,
            fault_plan=fault_plan,
        )
        up_port = OutputPort(
            sim=sim,
            phy=phy,
            link=up_wire,
            name=f"uplink:{name}",
            be_buffer_frames=be_buffer_frames,
            on_rt_complete=metrics.on_uplink_complete,
            trace=trace,
        )
        node.attach_uplink(up_port)

        # downlink: switch -> node
        down_wire = HalfLink(
            sim=sim,
            phy=phy,
            name=f"switch->{name}",
            deliver=node.receive,
            trace=trace,
            loss_rate=loss_rate,
            loss_rng=loss_rng,
            fault_plan=fault_plan,
        )
        down_port = OutputPort(
            sim=sim,
            phy=phy,
            link=down_wire,
            name=f"downlink:{name}",
            be_buffer_frames=be_buffer_frames,
            trace=trace,
        )
        switch.attach_port(name, down_port)

    net = StarNetwork(
        sim=sim,
        phy=phy,
        metrics=metrics,
        switch=switch,
        nodes=nodes,
        admission=admission,
        directory=directory,
        trace=trace,
        telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.instrument_star(net)
    return net
