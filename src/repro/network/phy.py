"""Physical-layer profiles: speeds, delays and the latency budget.

The feasibility analysis works in abstract timeslots; the simulator
works in nanoseconds. A :class:`PhyProfile` fixes the mapping for one
network: link speed (hence slot duration), cable propagation delay and
the switch's store-and-forward processing delay.

It also computes the paper's ``T_latency`` term (Eq. 18.1): the part of
the end-to-end delay that is *not* covered by the EDF deadline budget
``d_i``. In this model it contains, per the paper, "the medium
propagation delay and the medium access time":

* propagation over two cables (uplink + downlink),
* the switch's store-and-forward processing delay, and
* up to one maximum frame of *non-preemption blocking* per link: an RT
  frame that becomes the earliest deadline right after a best-effort (or
  later-deadline RT) frame started cannot interrupt it; Ethernet never
  aborts a frame mid-wire. Two links → two frames of blocking.

The validation experiment (EXP-V1) asserts that every delivered RT
frame meets ``created + d_i·slot + T_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import ETH_MAX_WIRE_BYTES, TimeBase
from ..protocol.ethernet import EthernetFrame

__all__ = ["PhyProfile"]


@dataclass(frozen=True, slots=True)
class PhyProfile:
    """Timing parameters of one homogeneous switched-Ethernet network.

    Parameters
    ----------
    timebase:
        Speed / slot-duration mapping (see :class:`repro.units.TimeBase`).
    propagation_ns:
        One-way cable propagation delay. 100 m of copper is ~500 ns;
        industrial cells are usually shorter. The paper folds this into
        the system-specific constant ``T_latency``.
    switch_processing_ns:
        Store-and-forward decision latency of the switch, applied once
        per frame between full reception and enqueueing at the output
        port. A few microseconds on commodity hardware.
    """

    timebase: TimeBase
    propagation_ns: int = 500
    switch_processing_ns: int = 5_000

    def __post_init__(self) -> None:
        if self.propagation_ns < 0:
            raise ConfigurationError(
                f"propagation delay must be >= 0 ns, got {self.propagation_ns}"
            )
        if self.switch_processing_ns < 0:
            raise ConfigurationError(
                "switch processing delay must be >= 0 ns, got "
                f"{self.switch_processing_ns}"
            )

    @classmethod
    def fast_ethernet(cls) -> "PhyProfile":
        """The paper's implicit setting: 100 Mbps full duplex."""
        return cls(timebase=TimeBase.for_speed_mbps(100))

    @classmethod
    def gigabit(cls) -> "PhyProfile":
        """1000BASE-T profile for scaling studies."""
        return cls(timebase=TimeBase.for_speed_mbps(1000))

    @property
    def slot_ns(self) -> int:
        """Duration of one timeslot (maximum frame on the wire)."""
        return self.timebase.slot_ns

    def transmission_ns(self, frame: EthernetFrame) -> int:
        """Wire time of ``frame`` including preamble, SFD and IFG."""
        return self.timebase.bytes_to_ns(frame.wire_size_bytes)

    @property
    def max_frame_ns(self) -> int:
        """Wire time of a maximum-sized frame (== ``slot_ns``)."""
        return self.timebase.bytes_to_ns(ETH_MAX_WIRE_BYTES)

    @property
    def t_latency_ns(self) -> int:
        """The paper's ``T_latency`` (Eq. 18.1) for the two-link path.

        ``2 × propagation + switch processing + 2 × one-frame blocking``.
        This is the guaranteed *additional* delay on top of the deadline
        ``d_i``; see the module docstring for the derivation.
        """
        return (
            2 * self.propagation_ns
            + self.switch_processing_ns
            + 2 * self.max_frame_ns
        )

    def per_link_allowance_ns(self) -> int:
        """Slack allowed on a single link beyond its ``d_iu``/``d_id`` budget.

        One propagation delay plus one frame of non-preemption blocking;
        used by the per-link deadline assertions in the simulator.
        """
        return self.propagation_ns + self.max_frame_ns
