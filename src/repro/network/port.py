"""An output port: the dual-queue structure of Figure 18.2.

Every transmitter in the reproduced system -- an end node's uplink and
each switch port's downlink -- owns:

* a **deadline-sorted queue** for RT frames, served in EDF order, and
* a **FCFS queue** for best-effort and signalling frames,

with strict priority for the RT queue and non-preemptive service (a
started frame always finishes; Ethernet cannot abort mid-wire).

The port also performs the per-link deadline *accounting* used by the
validation experiments: when an RT frame finishes transmission, the
completion time is compared against the frame's per-link absolute
deadline plus the PHY allowance, and the result is reported to an
optional miss callback. Misses are recorded, not raised, so experiments
can count them; the strict wrapper in
:mod:`repro.experiments.validation` turns any miss into a hard failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.edf_queue import EDFQueue, FCFSQueue, QueuedFrame
from ..errors import SimulationError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .link import HalfLink
from .phy import PhyProfile

__all__ = ["OutputPort", "PortStats"]


@dataclass(slots=True)
class PortStats:
    """Counters one output port maintains."""

    rt_enqueued: int = 0
    rt_transmitted: int = 0
    be_enqueued: int = 0
    be_transmitted: int = 0
    be_dropped: int = 0
    #: RT frames whose transmission completed after their per-link
    #: absolute deadline plus the PHY allowance.
    rt_link_deadline_misses: int = 0
    #: Sum of RT queueing delays (ns) for mean computation.
    rt_queueing_delay_total_ns: int = 0
    #: Worst single RT queueing delay (ns).
    rt_queueing_delay_max_ns: int = 0
    #: High-watermark of the RT (deadline-sorted) queue depth, in frames.
    #: Admission control implicitly bounds this: the backlog on a link
    #: never exceeds the outstanding demand, so the watermark certifies
    #: how much switch buffering the admitted set actually needs.
    rt_backlog_max: int = 0
    #: High-watermark of the best-effort queue depth, in frames.
    be_backlog_max: int = 0

    @property
    def rt_mean_queueing_delay_ns(self) -> float:
        if self.rt_transmitted == 0:
            return 0.0
        return self.rt_queueing_delay_total_ns / self.rt_transmitted


class OutputPort:
    """Dual-queue transmitter feeding one :class:`HalfLink`.

    Parameters
    ----------
    sim, phy, link:
        Kernel, timing profile and the wire this port feeds. The port
        installs itself as the link's ``on_idle`` callback.
    name:
        Diagnostic name.
    be_buffer_frames:
        Capacity of the best-effort queue (finite switch buffer);
        ``None`` = unbounded. RT frames are never dropped -- their
        buffer occupancy is bounded by admission control itself.
    on_rt_complete:
        Optional callback ``(frame, completion_ns, link_deadline_ns)``
        fired when an RT frame finishes transmission on this port; the
        metrics layer uses it for per-link latency statistics.
    trace:
        Optional trace recorder.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        link: HalfLink,
        name: str,
        be_buffer_frames: int | None = None,
        on_rt_complete: Callable[[EthernetFrame, int, int], None] | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self._link = link
        self.name = name
        self._rt_queue: EDFQueue[EthernetFrame] = EDFQueue()
        self._be_queue: FCFSQueue[EthernetFrame] = FCFSQueue(
            capacity=be_buffer_frames
        )
        self._on_rt_complete = on_rt_complete
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: optional :class:`~repro.obs.spans.SpanTracker` (set by the
        #: telemetry bundle); every hook is gated on ``is not None``.
        self.spans = None
        self.stats = PortStats()
        link.on_idle = self._pump

    # -- ingress ---------------------------------------------------------

    def submit_rt(
        self,
        frame: EthernetFrame,
        link_deadline_ns: int,
        allowance_ns: int | None = None,
    ) -> None:
        """Enqueue an RT frame with its *per-link* absolute deadline.

        ``link_deadline_ns`` is the EDF key on this link: on an uplink it
        is ``release + d_iu`` (the node's RT layer knows the partition);
        on a downlink it is the end-to-end deadline carried in the
        frame's mangled header (``release + d_i``).

        ``allowance_ns`` is the miss-accounting slack beyond the deadline
        for *this frame on this hop*. Non-preemption blocking cascades
        across hops: a frame blocked one slot on hop 1 arrives one slot
        late at hop 2 and may itself be blocked there again, so the
        hop-``j`` completion check must allow ``j`` frames of blocking
        plus the accumulated propagation/processing -- exactly the
        per-hop share of ``T_latency`` (Eq. 18.1). ``None`` uses the
        port's first-hop default.
        """
        if frame.kind is not FrameKind.RT_DATA:
            raise SimulationError(
                f"submit_rt received a {frame.kind.value} frame; only RT "
                "data frames enter the deadline-sorted queue"
            )
        self._rt_queue.push(
            QueuedFrame(
                payload=frame,
                absolute_deadline=link_deadline_ns,
                enqueued_at=self._sim.now,
                channel_id=frame.channel_id,
                allowance_ns=-1 if allowance_ns is None else allowance_ns,
            )
        )
        self.stats.rt_enqueued += 1
        if len(self._rt_queue) > self.stats.rt_backlog_max:
            self.stats.rt_backlog_max = len(self._rt_queue)
        if self.spans is not None:
            self.spans.frame_enqueued(frame.frame_id, self._sim.now, self.name)
        if self._trace.enabled_for("port.rt_enqueue"):
            self._trace.record(
                self._sim.now,
                "port.rt_enqueue",
                self.name,
                frame.describe(),
                fields={
                    "channel": frame.channel_id,
                    "link_deadline_ns": link_deadline_ns,
                    "depth": len(self._rt_queue),
                },
            )
        self._pump()

    def submit_be(self, frame: EthernetFrame) -> bool:
        """Enqueue a best-effort or signalling frame (FCFS).

        Returns ``False`` when the finite buffer dropped the frame.
        """
        if frame.kind is FrameKind.RT_DATA:
            raise SimulationError(
                "RT data frames must use submit_rt with a link deadline"
            )
        accepted = self._be_queue.push(
            QueuedFrame(
                payload=frame,
                absolute_deadline=0,
                enqueued_at=self._sim.now,
            )
        )
        if accepted:
            self.stats.be_enqueued += 1
            if len(self._be_queue) > self.stats.be_backlog_max:
                self.stats.be_backlog_max = len(self._be_queue)
            if self.spans is not None:
                self.spans.frame_enqueued(
                    frame.frame_id, self._sim.now, self.name
                )
            if self._trace.enabled_for("port.be_enqueue"):
                self._trace.record(
                    self._sim.now,
                    "port.be_enqueue",
                    self.name,
                    frame.describe(),
                    fields={"depth": len(self._be_queue)},
                )
            self._pump()
        else:
            self.stats.be_dropped += 1
            if self.spans is not None:
                self.spans.frame_dropped(
                    frame.frame_id, self._sim.now, self.name
                )
            if self._trace.enabled_for("port.be_drop"):
                self._trace.record(
                    self._sim.now,
                    "port.be_drop",
                    self.name,
                    frame.describe(),
                    fields={"dropped_total": self.stats.be_dropped},
                )
        return accepted

    # -- service ---------------------------------------------------------

    @property
    def link(self) -> HalfLink:
        """The wire this port feeds (read-only; for statistics)."""
        return self._link

    @property
    def backlog(self) -> int:
        """Total frames waiting (both queues)."""
        return len(self._rt_queue) + len(self._be_queue)

    @property
    def rt_backlog(self) -> int:
        return len(self._rt_queue)

    @property
    def be_backlog(self) -> int:
        return len(self._be_queue)

    @property
    def rt_queue_max_depth(self) -> int:
        """High-watermark of the deadline-sorted queue (frames)."""
        return self._rt_queue.max_depth

    def _pump(self) -> None:
        """Start the next transmission if the wire is free (strict RT priority)."""
        if self._link.busy:
            return
        if self._rt_queue:
            entry = self._rt_queue.pop()
            self._start_rt(entry)
        elif self._be_queue:
            entry = self._be_queue.pop()
            self._start_be(entry)

    def _start_rt(self, entry: QueuedFrame[EthernetFrame]) -> None:
        now = self._sim.now
        delay = now - entry.enqueued_at
        self.stats.rt_queueing_delay_total_ns += delay
        if delay > self.stats.rt_queueing_delay_max_ns:
            self.stats.rt_queueing_delay_max_ns = delay
        if self._trace.enabled_for("port.rt_dequeue"):
            self._trace.record(
                now,
                "port.rt_dequeue",
                self.name,
                entry.payload.describe(),
                fields={
                    "channel": entry.channel_id,
                    "wait_ns": delay,
                    "link_deadline_ns": entry.absolute_deadline,
                },
            )
        completion = self._link.transmit(entry.payload)
        self.stats.rt_transmitted += 1
        allowance = (
            entry.allowance_ns
            if entry.allowance_ns >= 0
            else self._phy.per_link_allowance_ns()
        )
        if completion > entry.absolute_deadline + allowance:
            self.stats.rt_link_deadline_misses += 1
            if self._trace.enabled_for("port.rt_miss"):
                self._trace.record(
                    now,
                    "port.rt_miss",
                    self.name,
                    f"{entry.payload.describe()} completion={completion} "
                    f"deadline={entry.absolute_deadline}+{allowance}",
                    fields={
                        "channel": entry.channel_id,
                        "completion_ns": completion,
                        "overrun_ns": completion
                        - entry.absolute_deadline
                        - allowance,
                    },
                )
        if self._on_rt_complete is not None:
            self._on_rt_complete(
                entry.payload, completion, entry.absolute_deadline
            )

    def _start_be(self, entry: QueuedFrame[EthernetFrame]) -> None:
        self._link.transmit(entry.payload)
        self.stats.be_transmitted += 1
