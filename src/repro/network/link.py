"""A unidirectional wire with exact Ethernet timing.

Full-duplex Ethernet means each physical cable is two independent
simplex channels; the analysis treats them as two independent
"processors" (Section 18.3.2) and the simulator mirrors that exactly:
a :class:`HalfLink` carries frames one way, the reverse direction is a
different ``HalfLink`` instance.

Timing model per frame::

    t0                 = transmission start
    t0 + tx(frame)     = wire free again (IFG included in tx), owner's
                         ``on_idle`` fires -- next frame may start
    t0 + tx + prop     = frame fully received, ``deliver`` fires

The link never queues: :meth:`transmit` on a busy link is a programming
error (:class:`~repro.errors.SimulationError`) -- queueing is the output
port's job, and keeping the layers strict catches scheduling bugs early.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from ..protocol.ethernet import EthernetFrame
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .phy import PhyProfile

__all__ = ["HalfLink"]


class HalfLink:
    """One direction of one cable.

    Parameters
    ----------
    sim:
        The event kernel.
    phy:
        Timing profile (transmission and propagation delays).
    name:
        Diagnostic name, e.g. ``"m0->switch"``.
    deliver:
        Called with the frame when it has fully arrived at the far end.
    on_idle:
        Called when the wire becomes free (transmission finished, IFG
        elapsed); the owning port uses this to start the next frame.
        Assigned after construction because port and link reference each
        other.
    trace:
        Optional recorder for ``link.*`` milestones.
    loss_rate:
        Probability that a transmitted frame is corrupted in flight and
        silently discarded at the receiver (FCS failure). The paper
        assumes error-free wires (its guarantee has no retransmission
        budget); a non-zero rate is a **fault-injection knob** for
        robustness experiments -- losses then surface as incomplete
        messages in the metrics, never as silent wrong results.
    loss_rng:
        RNG for loss draws; required when ``loss_rate > 0`` so fault
        injection stays reproducible.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` consulted on every
        arrival *before* the Bernoulli loss draw; it targets specific
        frame classes (signalling handshake steps, RT data) and time
        windows, where ``loss_rate`` corrupts indiscriminately.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        name: str,
        deliver: Callable[[EthernetFrame], None],
        trace: TraceRecorder | None = None,
        loss_rate: float = 0.0,
        loss_rng=None,
        fault_plan=None,
    ) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise SimulationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        if loss_rate > 0.0 and loss_rng is None:
            raise SimulationError(
                "a loss_rng is required when loss_rate > 0 "
                "(fault injection must be reproducible)"
            )
        self._sim = sim
        self._phy = phy
        self.name = name
        self._deliver = deliver
        self.on_idle: Callable[[], None] | None = None
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._busy_until = -1
        #: optional :class:`~repro.obs.spans.SpanTracker` (set by the
        #: telemetry bundle); every hook is gated on ``is not None``.
        self.spans = None
        self._loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._fault_plan = fault_plan
        # statistics
        self.frames_carried = 0
        self.bytes_carried = 0
        self.busy_ns = 0
        self.frames_lost = 0
        #: subset of ``frames_lost`` dropped by the fault plan.
        self.frames_faulted = 0

    @property
    def busy(self) -> bool:
        """True while a frame is on the wire (or its IFG is running)."""
        return self._sim.now < self._busy_until

    @property
    def busy_until(self) -> int:
        """Time (ns) the wire becomes free; in the past when idle."""
        return self._busy_until

    def utilization(self, since_ns: int = 0) -> float:
        """Fraction of wall-clock the wire has been busy since time zero.

        Only ``since_ns=0`` is supported: ``busy_ns`` is a lifetime
        total, so dividing it by a *window* would over-report (busy time
        accumulated before the window start leaks into the numerator --
        the old behaviour, masked by the ``min(1.0, ...)`` cap). For a
        windowed measurement take a :meth:`busy_mark` at the window
        start and ask :meth:`utilization_since`.
        """
        if since_ns != 0:
            raise SimulationError(
                "utilization(since_ns != 0) would divide lifetime busy time "
                "by a window; use busy_mark()/utilization_since(mark) for "
                "windowed utilization"
            )
        if self._sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_ns / self._sim.now)

    def busy_mark(self) -> tuple[int, int]:
        """Snapshot ``(now, busy_ns)`` to start a utilization window."""
        return (self._sim.now, self.busy_ns)

    def utilization_since(self, mark: tuple[int, int]) -> float:
        """Busy fraction since a :meth:`busy_mark` snapshot.

        Both the elapsed time and the busy time are differenced against
        the mark, so the result is exact for the window (transmissions
        crossing the window start are credited to their start instant,
        consistent with how ``busy_ns`` accrues).
        """
        mark_ns, mark_busy = mark
        elapsed = self._sim.now - mark_ns
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.busy_ns - mark_busy) / elapsed)

    def transmit(self, frame: EthernetFrame) -> int:
        """Put ``frame`` on the wire now. Returns the completion time (ns).

        Raises
        ------
        SimulationError
            if the wire is still busy -- the caller (output port) must
            serialize transmissions.
        """
        now = self._sim.now
        if self.busy:
            raise SimulationError(
                f"link {self.name}: transmit while busy until "
                f"{self._busy_until} ns (now {now} ns); the output port must "
                "serialize frames"
            )
        tx = self._phy.transmission_ns(frame)
        done = now + tx
        self._busy_until = done
        self.frames_carried += 1
        self.bytes_carried += frame.wire_size_bytes
        self.busy_ns += tx
        if self._trace.enabled_for("link.start"):
            # duration_ns renders link.start as a span in the Chrome trace
            self._trace.record(
                now,
                "link.start",
                self.name,
                frame.describe(),
                fields={
                    "duration_ns": tx,
                    "channel": frame.channel_id,
                    "bytes": frame.wire_size_bytes,
                },
            )
        self._sim.schedule(tx, self._wire_free, label=f"{self.name}:idle")
        arrival = tx + self._phy.propagation_ns
        if self.spans is not None:
            self.spans.frame_transmit(
                frame.frame_id, now, now + arrival, self.name
            )
        self._sim.schedule(
            arrival,
            lambda f=frame: self._arrive(f),
            label=f"{self.name}:deliver",
        )
        return done

    def _wire_free(self) -> None:
        if self._trace.enabled_for("link.idle"):
            self._trace.record(self._sim.now, "link.idle", self.name)
        if self.on_idle is not None:
            self.on_idle()

    def _arrive(self, frame: EthernetFrame) -> None:
        if self._fault_plan is not None and self._fault_plan.should_drop(
            self.name, frame, self._sim.now
        ):
            self.frames_lost += 1
            self.frames_faulted += 1
            if self._trace.enabled_for("link.lost"):
                self._trace.record(
                    self._sim.now,
                    "link.lost",
                    self.name,
                    frame.describe(),
                    fields={"cause": "fault-plan"},
                )
            if self.spans is not None:
                self.spans.frame_lost(
                    frame.frame_id, self._sim.now, self.name, "fault-plan"
                )
            return
        if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
            self.frames_lost += 1
            if self._trace.enabled_for("link.lost"):
                self._trace.record(
                    self._sim.now, "link.lost", self.name, frame.describe()
                )
            if self.spans is not None:
                self.spans.frame_lost(
                    frame.frame_id, self._sim.now, self.name, "corruption"
                )
            return
        if self._trace.enabled_for("link.deliver"):
            self._trace.record(
                self._sim.now,
                "link.deliver",
                self.name,
                frame.describe(),
                fields={"channel": frame.channel_id},
            )
        self._deliver(frame)
