"""The store-and-forward switch (Sections 18.1-18.2).

The :class:`Switch` bundles:

* one **downlink output port** per connected node, each with the EDF +
  FCFS queue pair of Figure 18.2;
* the **forwarding plane**: a fully received frame is processed after
  the store-and-forward delay, then routed -- RT frames by their channel
  ID (the channel *is* the address once established; the destination was
  recorded at establishment time), best-effort frames by destination
  name, signalling frames into the channel-management software;
* the **RT channel management software** of Figure 18.2
  (:class:`~repro.core.channel_manager.SwitchChannelManager`), i.e.
  admission control plus the establishment handshake.

Downlink EDF keys come straight from the frame's mangled IP header: the
48-bit end-to-end absolute deadline the source RT layer wrote. The
switch needs no per-channel deadline state on the forwarding fast path
-- exactly the property the paper's header trick buys.

Reservation leases: with ``lease_ns`` set, every pending offer gets a
strong timer event; if the destination's ResponseFrame resolves the
offer first, the timer is cancelled (O(1), and a cancelled event never
fires nor extends the run, so fault-free runs stay byte-identical).
Otherwise the timer fires and the manager reclaims the reservation.
"""

from __future__ import annotations

from time import perf_counter_ns

from ..core.channel_manager import (
    NodeDirectory,
    SignalAction,
    SwitchChannelManager,
)
from ..core.admission import AdmissionController
from ..errors import ProtocolError, SimulationError, UnknownChannelError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.frames import (
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
    REQUEST_FRAME_BYTES,
    RESPONSE_FRAME_BYTES,
)
from ..sim.events import EventHandle
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .node import SWITCH_NAME
from .phy import PhyProfile
from .port import OutputPort

__all__ = ["Switch"]


class Switch:
    """The central switch of the star topology.

    Parameters
    ----------
    sim, phy:
        Kernel and timing profile.
    mac:
        The switch's MAC address (target of all RequestFrames).
    admission:
        The admission controller (with its system state and DPS).
    directory:
        Node address directory, shared with the topology builder.
    trace:
        Optional trace recorder.
    lease_ns:
        Reservation-lease duration for pending offers (None disables
        leases and every other loss-tolerance behaviour -- see
        :class:`~repro.core.channel_manager.SwitchChannelManager`).
    response_cache_ns:
        Completed-verdict retention for duplicate requests (see the
        manager; only meaningful with leases enabled).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        manager's ``signal.*`` counters.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        mac: int,
        admission: AdmissionController,
        directory: NodeDirectory,
        trace: TraceRecorder | None = None,
        lease_ns: int | None = None,
        response_cache_ns: int | None = None,
        registry=None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self.mac = mac
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.manager = SwitchChannelManager(
            admission=admission,
            directory=directory,
            switch_mac=mac,
            lease_ns=lease_ns,
            response_cache_ns=response_cache_ns,
            metrics=registry,
        )
        self._lease_ns = lease_ns
        #: optional :class:`~repro.obs.spans.SpanTracker` (set by the
        #: telemetry bundle); every hook is gated on ``is not None``.
        self.spans = None
        #: live lease timers keyed by pending-offer channel ID.
        self._lease_events: dict[int, EventHandle] = {}
        self._ports: dict[str, OutputPort] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0
        #: signalling frames that arrived as wire bytes and were decoded
        #: with the bit-exact codec (fidelity counter for tests).
        self.signaling_frames_decoded = 0

    # -- wiring ---------------------------------------------------------------

    def attach_port(self, node_name: str, port: OutputPort) -> None:
        """Register the downlink port toward ``node_name``."""
        if node_name in self._ports:
            raise SimulationError(
                f"switch already has a port toward {node_name!r}"
            )
        self._ports[node_name] = port

    def port_toward(self, node_name: str) -> OutputPort:
        port = self._ports.get(node_name)
        if port is None:
            raise SimulationError(
                f"switch has no port toward {node_name!r}"
            )
        return port

    @property
    def ports(self) -> dict[str, OutputPort]:
        """Downlink ports keyed by node name (copy)."""
        return dict(self._ports)

    # -- ingress from uplinks ------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """A frame fully arrived on some uplink (store-and-forward point).

        Processing (routing + queueing) happens after the switch's
        processing delay, modelling lookup latency.
        """
        if self.spans is not None:
            now = self._sim.now
            self.spans.frame_processing(
                frame.frame_id,
                now,
                now + self._phy.switch_processing_ns,
                SWITCH_NAME,
            )
        self._sim.schedule(
            self._phy.switch_processing_ns,
            lambda f=frame: self._process(f),
            label="switch:process",
        )

    def _process(self, frame: EthernetFrame) -> None:
        if frame.kind is FrameKind.SIGNALING:
            self._process_signaling(frame)
        elif frame.kind is FrameKind.RT_DATA:
            self._forward_rt(frame)
        else:
            self._forward_best_effort(frame)

    # -- forwarding plane -------------------------------------------------------------

    def _forward_rt(self, frame: EthernetFrame) -> None:
        try:
            destination = self.manager.destination_of(frame.channel_id)
        except UnknownChannelError:
            # Channel torn down while the frame was in flight: drop.
            self.frames_dropped += 1
            if self.spans is not None:
                self.spans.frame_dropped(
                    frame.frame_id, self._sim.now, SWITCH_NAME
                )
            if self._trace.enabled_for("switch.drop"):
                self._trace.record(
                    self._sim.now,
                    "switch.drop",
                    SWITCH_NAME,
                    frame.describe(),
                    fields={"reason": "unknown-channel",
                            "channel": frame.channel_id},
                )
            return
        port = self.port_toward(destination)
        # Second hop: the miss check allows the full two-hop share of
        # T_latency -- blocking suffered on the uplink cascades into the
        # downlink's completion time (see OutputPort.submit_rt).
        port.submit_rt(
            frame,
            link_deadline_ns=frame.absolute_deadline,
            allowance_ns=self._phy.t_latency_ns,
        )
        self.frames_forwarded += 1

    def _forward_best_effort(self, frame: EthernetFrame) -> None:
        port = self._ports.get(frame.destination)
        if port is None:
            self.frames_dropped += 1
            if self.spans is not None:
                self.spans.frame_dropped(
                    frame.frame_id, self._sim.now, SWITCH_NAME
                )
            if self._trace.enabled_for("switch.drop"):
                self._trace.record(
                    self._sim.now,
                    "switch.drop",
                    SWITCH_NAME,
                    f"no port toward {frame.destination!r}",
                    fields={"reason": "unknown-destination"},
                )
            return
        accepted = port.submit_be(frame)
        if accepted:
            self.frames_forwarded += 1
        else:
            self.frames_dropped += 1

    # -- channel management ------------------------------------------------------------

    def _process_signaling(self, frame: EthernetFrame) -> None:
        payload = frame.payload_object
        if isinstance(payload, (bytes, bytearray)):
            # bit-exact wire encoding from an end node: real decoder
            payload = decode_signaling(bytes(payload))
            self.signaling_frames_decoded += 1
        spans = self.spans
        span_ctx = None
        if spans is not None:
            span_ctx = spans.frame_context(frame.frame_id)
            spans.frame_done(frame.frame_id)
        if isinstance(payload, RequestFrame):
            if spans is None:
                actions = self.manager.handle_request(
                    payload, now=self._sim.now
                )
            else:
                actions = self._handle_request_traced(payload, span_ctx)
            if self._lease_ns is not None:
                for action in actions:
                    if isinstance(action.frame, RequestFrame):
                        self._arm_lease(action.frame.rt_channel_id)
                        if spans is not None and span_ctx is not None:
                            spans.lease_armed(
                                action.frame.rt_channel_id,
                                span_ctx[0],
                                span_ctx[1],
                                self._sim.now,
                                self._sim.now + self._lease_ns,
                            )
        elif isinstance(payload, ResponseFrame):
            actions = self.manager.handle_response(payload, now=self._sim.now)
            self._disarm_lease(payload.rt_channel_id)
            if spans is not None:
                spans.lease_resolved(payload.rt_channel_id, self._sim.now)
        elif isinstance(payload, TeardownFrame):
            actions = self.manager.handle_teardown(payload)
            if spans is not None:
                spans.end_teardown(payload.rt_channel_id, self._sim.now)
        else:
            raise ProtocolError(
                f"switch received unexpected signalling payload "
                f"{type(payload).__name__}"
            )
        if self._trace.enabled_for("switch.signal"):
            self._trace.record(
                self._sim.now,
                "switch.signal",
                SWITCH_NAME,
                f"{type(payload).__name__} -> {len(actions)} action(s)",
                fields={"payload": type(payload).__name__,
                        "actions": len(actions)},
            )
        for action in actions:
            self._emit_signaling(action, span_ctx)

    def _handle_request_traced(
        self, payload: RequestFrame, span_ctx
    ) -> list[SignalAction]:
        """``manager.handle_request`` plus the admission verdict event.

        Only runs when a span tracker is attached. The verdict event is
        emitted on the request's trace when admission actually ran (a
        fresh decision was appended); retransmitted requests answered
        from the pending-offer table or the verdict cache are marked
        ``duplicate`` instead. Wall-clock admission compute is measured
        only when the tracker asks for it (non-deterministic by nature,
        so deterministic sweep runs keep it off).
        """
        spans = self.spans
        before = len(self.manager.decisions)
        if spans.measure_compute:
            start = perf_counter_ns()
            actions = self.manager.handle_request(payload, now=self._sim.now)
            compute = perf_counter_ns() - start
        else:
            actions = self.manager.handle_request(payload, now=self._sim.now)
            compute = -1
        if span_ctx is not None:
            if len(self.manager.decisions) > before:
                decision = self.manager.decisions[-1]
                fields: dict = {
                    "verdict": "accept" if decision.accepted else "reject",
                }
                if not decision.accepted and decision.reason is not None:
                    fields["reason"] = decision.reason.name
                if compute >= 0:
                    fields["compute_ns"] = compute
                spans.event(
                    span_ctx[0], span_ctx[1], "admission", SWITCH_NAME,
                    self._sim.now, fields,
                )
            else:
                spans.event(
                    span_ctx[0], span_ctx[1], "admission", SWITCH_NAME,
                    self._sim.now, {"verdict": "duplicate"},
                )
        return actions

    # -- reservation leases ----------------------------------------------------

    def _arm_lease(self, channel_id: int) -> None:
        """(Re)start the lease timer for one pending offer.

        Duplicate requests refresh the lease: the old timer is cancelled
        and a fresh one armed, matching the expiry the manager stamped.
        """
        old = self._lease_events.pop(channel_id, None)
        if old is not None:
            old.cancel()
        self._lease_events[channel_id] = self._sim.schedule(
            self._lease_ns,
            lambda cid=channel_id: self._lease_check(cid),
            label=f"switch:lease:{channel_id}",
        )

    def _disarm_lease(self, channel_id: int) -> None:
        handle = self._lease_events.pop(channel_id, None)
        if handle is not None:
            handle.cancel()

    def _lease_check(self, channel_id: int) -> None:
        self._lease_events.pop(channel_id, None)
        reclaimed = self.manager.reclaim_expired(self._sim.now)
        for cid in reclaimed:
            if cid != channel_id:
                self._disarm_lease(cid)
            if self.spans is not None:
                self.spans.lease_reclaimed(cid, self._sim.now)
            if self._trace.enabled_for("signal.lease_reclaim"):
                self._trace.record(
                    self._sim.now,
                    "signal.lease_reclaim",
                    SWITCH_NAME,
                    f"ch={cid}",
                    fields={"channel": cid},
                )

    def _emit_signaling(self, action: SignalAction, span_ctx=None) -> None:
        if isinstance(action.frame, RequestFrame):
            payload_bytes = REQUEST_FRAME_BYTES
            # forwarded (stamped) requests travel as wire bytes too
            payload_object: object = action.frame.encode()
        else:
            payload_bytes = RESPONSE_FRAME_BYTES
            if action.grant is not None:
                # the grant rides as management metadata in the response
                # padding; this is the one frame that stays structured
                # (see repro.core.rt_layer docs / DESIGN.md substitutions)
                payload_object = (action.frame, action.grant)
            else:
                payload_object = action.frame.encode()
        out = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source=SWITCH_NAME,
            destination=action.target,
            payload_bytes=payload_bytes,
            created_at=self._sim.now,
            payload_object=payload_object,
        )
        if self.spans is not None and span_ctx is not None:
            self.spans.attach_frame(out.frame_id, span_ctx[0], span_ctx[1])
        self.port_toward(action.target).submit_be(out)
