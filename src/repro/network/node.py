"""The end node: application, RT layer and uplink transmitter.

An :class:`EndNode` bundles everything the paper places in one station
(Figure 18.2):

* an **uplink output port** (EDF + FCFS queues) feeding the wire toward
  the switch;
* the **RT layer** holding established channel grants and mangling
  headers (:class:`repro.core.rt_layer.RTLayer`);
* **source signalling** state for channel establishment
  (:class:`repro.protocol.signaling.SourceSignaling`);
* a **destination policy** deciding whether to accept offered channels;
* reception: delivered frames are reported to the shared
  :class:`~repro.analysis.metrics.MetricsCollector`, and signalling
  frames drive the handshake state machines.

The node's application-facing API is :meth:`request_channel` (with a
completion callback), :meth:`send_message` /
:meth:`start_periodic_source`, and :meth:`send_best_effort`.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.metrics import MetricsCollector
from ..core.channel import ChannelSpec
from ..core.rt_layer import ChannelGrant, RTLayer
from ..errors import ProtocolError, SimulationError, UnknownChannelError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.frames import (
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
    REQUEST_FRAME_BYTES,
    RESPONSE_FRAME_BYTES,
    TEARDOWN_FRAME_BYTES,
)
from ..protocol.signaling import (
    ConnectionRequestState,
    DestinationPolicy,
    PendingRequest,
    SourceSignaling,
    accept_all,
    destination_response,
)
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .phy import PhyProfile
from .port import OutputPort

__all__ = ["EndNode"]

#: Name used for the switch endpoint in frame source/destination fields.
SWITCH_NAME = "switch"

RequestCallback = Callable[[PendingRequest, ChannelGrant | None], None]


class EndNode:
    """One station on the star network.

    Constructed by the topology builder, which wires the uplink port and
    registers addresses; applications then use the public methods.

    Parameters
    ----------
    sim, phy:
        Kernel and timing profile.
    name, mac, ip:
        Identity. MAC/IP are registered with the switch's directory by
        the topology builder.
    switch_mac:
        Needed to address RequestFrames (Figure 18.3's first field).
    metrics:
        Shared network-wide collector.
    destination_policy:
        Accept/decline decision for offered channels; default accepts
        everything (the paper's evaluation never declines).
    trace:
        Optional trace recorder.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        name: str,
        mac: int,
        ip: int,
        switch_mac: int,
        metrics: MetricsCollector,
        destination_policy: DestinationPolicy = accept_all,
        trace: TraceRecorder | None = None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self.name = name
        self.mac = mac
        self.ip = ip
        self._switch_mac = switch_mac
        self._metrics = metrics
        self._policy = destination_policy
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.rt_layer = RTLayer(
            node_name=name, slot_ns=phy.slot_ns, trace=self._trace
        )
        self.signaling = SourceSignaling(
            node_mac=mac, switch_mac=switch_mac, node_ip=ip
        )
        #: set by the topology builder once the uplink wire exists.
        self.uplink: OutputPort | None = None
        self._request_callbacks: dict[int, RequestCallback] = {}
        #: channels this node receives on (destination side), id -> capacity.
        self.incoming_channels: dict[int, int] = {}
        self.frames_received = 0
        #: signalling frames that arrived as wire bytes and were decoded
        #: with the bit-exact codec (fidelity counter for tests).
        self.signaling_frames_decoded = 0
        #: periodic sources keyed by channel id (for teardown).
        self._active_sources: set[int] = set()

    # -- wiring (topology builder) ------------------------------------------

    def attach_uplink(self, port: OutputPort) -> None:
        if self.uplink is not None:
            raise SimulationError(f"node {self.name!r} already has an uplink")
        self.uplink = port

    def _require_uplink(self) -> OutputPort:
        if self.uplink is None:
            raise SimulationError(
                f"node {self.name!r} is not wired to the switch yet"
            )
        return self.uplink

    # -- channel establishment (application API) -------------------------------

    def request_channel(
        self,
        destination_mac: int,
        destination_ip: int,
        destination_name: str,
        spec: ChannelSpec,
        on_complete: RequestCallback | None = None,
        timeout_ns: int | None = None,
    ) -> None:
        """Send a RequestFrame for a new RT channel to the switch.

        ``on_complete`` fires when the final ResponseFrame arrives, with
        the completed :class:`PendingRequest` and, on acceptance, the
        installed :class:`ChannelGrant`.

        ``timeout_ns`` arms a local timer: if no response arrives in
        time (possible only on lossy wires -- the paper's model is
        error-free), the request completes as ``TIMED_OUT`` with a
        ``None`` grant, and a late positive response is automatically
        answered with a teardown so the switch's reservation is not
        leaked.
        """
        request = self.signaling.build_request(
            destination=destination_name,
            destination_mac=destination_mac,
            destination_ip=destination_ip,
            period=spec.period,
            capacity=spec.capacity,
            deadline=spec.deadline,
        )
        if on_complete is not None:
            self._request_callbacks[request.connect_request_id] = on_complete
        if timeout_ns is not None:
            if timeout_ns <= 0:
                raise SimulationError(
                    f"timeout_ns must be positive, got {timeout_ns}"
                )
            self._sim.schedule(
                timeout_ns,
                lambda rid=request.connect_request_id: self._request_timeout(
                    rid
                ),
                label=f"{self.name}:req{request.connect_request_id}:timeout",
            )
        self._send_signaling(request, payload_bytes=REQUEST_FRAME_BYTES)
        if self._trace.enabled_for("signal.request"):
            self._trace.record(
                self._sim.now,
                "signal.request",
                self.name,
                f"req={request.connect_request_id} -> {destination_name}",
                fields={
                    "request": request.connect_request_id,
                    "destination": destination_name,
                },
            )

    def _request_timeout(self, connect_request_id: int) -> None:
        """Timer expiry for one outstanding request (no-op if completed)."""
        try:
            record = self.signaling.timeout_request(connect_request_id)
        except ProtocolError:
            return  # the response won the race
        if self._trace.enabled_for("signal.timeout"):
            self._trace.record(
                self._sim.now,
                "signal.timeout",
                self.name,
                f"req={connect_request_id}",
                fields={"request": connect_request_id},
            )
        callback = self._request_callbacks.pop(connect_request_id, None)
        if callback is not None:
            callback(record, None)

    def teardown_channel(self, channel_id: int) -> None:
        """Release an established sending channel."""
        self.rt_layer.remove_grant(channel_id)
        self._active_sources.discard(channel_id)
        frame = TeardownFrame(connect_request_id=0, rt_channel_id=channel_id)
        self._send_signaling(frame, payload_bytes=TEARDOWN_FRAME_BYTES)

    def _send_signaling(self, payload, payload_bytes: int) -> None:
        """Encode a signalling frame to real bytes and queue it.

        Every node-originated signalling frame travels as its bit-exact
        wire encoding (Figures 18.3/18.4); the receiver runs the real
        decoder. Only the switch's grant-carrying final response uses
        structured metadata (see :mod:`repro.core.rt_layer`).
        """
        encoded = payload.encode()
        assert len(encoded) == payload_bytes
        frame = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source=self.name,
            destination=SWITCH_NAME,
            payload_bytes=payload_bytes,
            created_at=self._sim.now,
            payload_object=encoded,
        )
        self._require_uplink().submit_be(frame)

    # -- RT data path (application API) -----------------------------------------

    def send_message(self, channel_id: int) -> int:
        """Emit one message (``C`` frames) on an established channel now.

        Returns the number of frames enqueued.
        """
        outgoing = self.rt_layer.emit_message(channel_id, self._sim.now)
        port = self._require_uplink()
        for item in outgoing:
            port.submit_rt(item.frame, item.uplink_deadline_ns)
        return len(outgoing)

    def start_periodic_source(
        self,
        channel_id: int,
        stop_after_messages: int | None = None,
        phase_ns: int = 0,
    ) -> None:
        """Generate one message every period, starting ``phase_ns`` from now.

        The first release happens at ``now + phase_ns`` (a zero phase
        means the critical-instant synchronous release the feasibility
        analysis assumes is covered when all sources start together).
        """
        grant = self.rt_layer.grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self.name!r} has no established channel {channel_id}"
            )
        if phase_ns < 0:
            raise SimulationError(f"phase must be >= 0 ns, got {phase_ns}")
        period_ns = grant.spec.period * self._phy.slot_ns
        self._active_sources.add(channel_id)
        remaining = stop_after_messages

        def fire() -> None:
            nonlocal remaining
            if channel_id not in self._active_sources:
                return
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            self.send_message(channel_id)
            self._sim.schedule(
                period_ns, fire, label=f"{self.name}:ch{channel_id}:period"
            )

        self._sim.schedule(
            phase_ns, fire, label=f"{self.name}:ch{channel_id}:start"
        )

    def start_sporadic_source(
        self,
        channel_id: int,
        rng,
        stop_after_messages: int | None = None,
        mean_extra_gap_slots: float = 50.0,
    ) -> None:
        """Generate messages sporadically: gaps of at least one period.

        The paper reserves for *periodic* traffic, but EDF theory covers
        the sporadic generalization: as long as consecutive releases are
        at least ``P_i`` apart, the demand on every link is bounded by
        the periodic case, so the admitted reservation still guarantees
        every deadline. Gaps are ``P_i + Exp(mean_extra_gap_slots)``
        slots, drawn from ``rng`` for reproducibility.

        Validated by EXP-R1c style tests: sporadic sources on a fully
        admitted set never miss.
        """
        grant = self.rt_layer.grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self.name!r} has no established channel {channel_id}"
            )
        if mean_extra_gap_slots < 0:
            raise SimulationError(
                f"mean_extra_gap_slots must be >= 0, got {mean_extra_gap_slots}"
            )
        period_ns = grant.spec.period * self._phy.slot_ns
        self._active_sources.add(channel_id)
        remaining = stop_after_messages

        def gap_ns() -> int:
            extra = float(rng.exponential(mean_extra_gap_slots))
            return period_ns + int(extra * self._phy.slot_ns)

        def fire() -> None:
            nonlocal remaining
            if channel_id not in self._active_sources:
                return
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            self.send_message(channel_id)
            self._sim.schedule(
                gap_ns(), fire, label=f"{self.name}:ch{channel_id}:sporadic"
            )

        self._sim.schedule(
            gap_ns(), fire, label=f"{self.name}:ch{channel_id}:sporadic0"
        )

    def stop_periodic_source(self, channel_id: int) -> None:
        """Stop generating messages on ``channel_id`` (grant remains)."""
        self._active_sources.discard(channel_id)

    # -- best-effort path ---------------------------------------------------------

    def send_best_effort(self, destination: str, payload_bytes: int) -> bool:
        """Queue one best-effort frame toward ``destination``.

        Returns False when the uplink best-effort buffer dropped it.
        """
        frame = EthernetFrame(
            kind=FrameKind.BEST_EFFORT,
            source=self.name,
            destination=destination,
            payload_bytes=payload_bytes,
            created_at=self._sim.now,
        )
        return self._require_uplink().submit_be(frame)

    # -- reception -----------------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """Entry point for frames arriving on this node's downlink."""
        self.frames_received += 1
        if frame.kind is FrameKind.SIGNALING:
            self._receive_signaling(frame)
            return
        self._metrics.on_delivery(frame, self._sim.now)
        if self._trace.enabled_for("node.deliver"):
            self._trace.record(
                self._sim.now,
                "node.deliver",
                self.name,
                frame.describe(),
                fields={
                    "channel": frame.channel_id,
                    "delay_ns": self._sim.now - frame.created_at,
                },
            )

    def _receive_signaling(self, frame: EthernetFrame) -> None:
        self._metrics.on_delivery(frame, self._sim.now)
        payload = frame.payload_object
        if isinstance(payload, (bytes, bytearray)):
            # bit-exact wire encoding: run the real decoder
            payload = decode_signaling(bytes(payload))
            self.signaling_frames_decoded += 1
        # The switch attaches the channel grant to positive responses as
        # (ResponseFrame, ChannelGrant) -- management metadata riding in
        # the response's padding bytes (see repro.core.rt_layer docs).
        if isinstance(payload, tuple) and len(payload) == 2:
            response, grant = payload
            if not isinstance(response, ResponseFrame) or not isinstance(
                grant, ChannelGrant
            ):
                raise ProtocolError(
                    f"node {self.name!r} received malformed signalling tuple"
                )
            self._handle_response(response, grant)
        elif isinstance(payload, RequestFrame):
            self._handle_offer(payload)
        elif isinstance(payload, ResponseFrame):
            self._handle_response(payload, None)
        else:
            raise ProtocolError(
                f"node {self.name!r} received unexpected signalling payload "
                f"{type(payload).__name__}"
            )

    def _handle_offer(self, request: RequestFrame) -> None:
        """An offered channel (switch-stamped RequestFrame) arrived."""
        response = destination_response(request, self._switch_mac, self._policy)
        if response.ok:
            self.incoming_channels[request.rt_channel_id] = request.capacity
            self._metrics.register_channel(
                request.rt_channel_id, request.capacity
            )
        if self._trace.enabled_for("signal.offer"):
            self._trace.record(
                self._sim.now,
                "signal.offer",
                self.name,
                f"ch={request.rt_channel_id} ok={response.ok}",
                fields={"channel": request.rt_channel_id, "ok": response.ok},
            )
        self._send_signaling(response, payload_bytes=RESPONSE_FRAME_BYTES)

    def _handle_response(
        self, response: ResponseFrame, grant: ChannelGrant | None
    ) -> None:
        """The switch's final verdict on one of our requests arrived."""
        completed = self.signaling.handle_response(response)
        if completed.state is ConnectionRequestState.TIMED_OUT:
            # Late response for a request we already abandoned. If the
            # switch accepted, its reservation is orphaned: release it.
            if response.ok:
                frame = TeardownFrame(
                    connect_request_id=response.connect_request_id,
                    rt_channel_id=response.rt_channel_id,
                )
                self._send_signaling(frame, payload_bytes=TEARDOWN_FRAME_BYTES)
                if self._trace.enabled_for("signal.late_response_teardown"):
                    self._trace.record(
                        self._sim.now,
                        "signal.late_response_teardown",
                        self.name,
                        f"ch={response.rt_channel_id}",
                        fields={"channel": response.rt_channel_id},
                    )
            return
        if response.ok:
            if grant is None:
                raise ProtocolError(
                    f"positive response for request {response.connect_request_id} "
                    "arrived without a channel grant"
                )
            self.rt_layer.install_grant(grant)
        callback = self._request_callbacks.pop(response.connect_request_id, None)
        if self._trace.enabled_for("signal.response"):
            self._trace.record(
                self._sim.now,
                "signal.response",
                self.name,
                f"req={response.connect_request_id} ok={response.ok}",
                fields={
                    "request": response.connect_request_id,
                    "ok": response.ok,
                },
            )
        if callback is not None:
            callback(completed, grant)
