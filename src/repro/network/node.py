"""The end node: application, RT layer and uplink transmitter.

An :class:`EndNode` bundles everything the paper places in one station
(Figure 18.2):

* an **uplink output port** (EDF + FCFS queues) feeding the wire toward
  the switch;
* the **RT layer** holding established channel grants and mangling
  headers (:class:`repro.core.rt_layer.RTLayer`);
* **source signalling** state for channel establishment
  (:class:`repro.protocol.signaling.SourceSignaling`);
* a **destination policy** deciding whether to accept offered channels;
* reception: delivered frames are reported to the shared
  :class:`~repro.analysis.metrics.MetricsCollector`, and signalling
  frames drive the handshake state machines.

The node's application-facing API is :meth:`request_channel` (with a
completion callback), :meth:`send_message` /
:meth:`start_periodic_source`, and :meth:`send_best_effort`.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.metrics import MetricsCollector
from ..core.channel import ChannelSpec
from ..core.rt_layer import ChannelGrant, RTLayer
from ..errors import ProtocolError, SimulationError, UnknownChannelError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.frames import (
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
    REQUEST_FRAME_BYTES,
    RESPONSE_FRAME_BYTES,
    TEARDOWN_FRAME_BYTES,
)
from ..protocol.signaling import (
    EXPLICIT_TEARDOWN_ID,
    ConnectionRequestState,
    DestinationPolicy,
    PendingRequest,
    ResponseKind,
    RetryPolicy,
    SourceSignaling,
    accept_all,
    destination_response,
)
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from .phy import PhyProfile
from .port import OutputPort

__all__ = ["EndNode"]

#: Name used for the switch endpoint in frame source/destination fields.
SWITCH_NAME = "switch"

#: Default gap between repeated TeardownFrames (see
#: :meth:`EndNode.teardown_channel`): long enough for the previous copy
#: to clear the handshake RTT, short against any retry timeout.
TEARDOWN_SPACING_NS = 250_000

RequestCallback = Callable[[PendingRequest, ChannelGrant | None], None]


class _RetryState:
    """Live retransmission bookkeeping for one outstanding request."""

    __slots__ = ("policy", "rng", "attempt", "frame")

    def __init__(self, policy: RetryPolicy, rng, frame: RequestFrame) -> None:
        self.policy = policy
        self.rng = rng
        self.attempt = 0
        self.frame = frame


class EndNode:
    """One station on the star network.

    Constructed by the topology builder, which wires the uplink port and
    registers addresses; applications then use the public methods.

    Parameters
    ----------
    sim, phy:
        Kernel and timing profile.
    name, mac, ip:
        Identity. MAC/IP are registered with the switch's directory by
        the topology builder.
    switch_mac:
        Needed to address RequestFrames (Figure 18.3's first field).
    metrics:
        Shared network-wide collector.
    destination_policy:
        Accept/decline decision for offered channels; default accepts
        everything (the paper's evaluation never declines).
    trace:
        Optional trace recorder.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, ``signal.retries`` and ``signal.stale_frames``
        (site="node") are pre-bound so the per-event cost is one
        ``is not None`` check.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: PhyProfile,
        name: str,
        mac: int,
        ip: int,
        switch_mac: int,
        metrics: MetricsCollector,
        destination_policy: DestinationPolicy = accept_all,
        trace: TraceRecorder | None = None,
        registry=None,
    ) -> None:
        self._sim = sim
        self._phy = phy
        self.name = name
        self.mac = mac
        self.ip = ip
        self._switch_mac = switch_mac
        self._metrics = metrics
        self._policy = destination_policy
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: optional :class:`~repro.obs.spans.SpanTracker` (set by the
        #: telemetry bundle); every hook is gated on ``is not None``.
        self.spans = None
        self.rt_layer = RTLayer(
            node_name=name, slot_ns=phy.slot_ns, trace=self._trace
        )
        self.signaling = SourceSignaling(
            node_mac=mac, switch_mac=switch_mac, node_ip=ip
        )
        #: set by the topology builder once the uplink wire exists.
        self.uplink: OutputPort | None = None
        self._request_callbacks: dict[int, RequestCallback] = {}
        #: retransmission state per outstanding request ID.
        self._retry_state: dict[int, _RetryState] = {}
        #: how many times each TeardownFrame is sent (lossy wires lose
        #: fire-and-forget frames; repeats make the release survive).
        self.teardown_repeats = 1
        #: channels this node receives on (destination side), id -> capacity.
        self.incoming_channels: dict[int, int] = {}
        self.frames_received = 0
        #: RequestFrame retransmissions performed by this node.
        self.signal_retries = 0
        #: duplicate/stale responses absorbed by this node.
        self.signal_stale_frames = 0
        if registry is not None:
            self._m_retries = registry.counter(
                "signal.retries",
                help="RequestFrame retransmissions",
                labels=("node",),
            ).labels(name)
            self._m_stale = registry.counter(
                "signal.stale_frames",
                help="duplicate/stale signalling frames absorbed",
                labels=("site",),
            ).labels("node")
        else:
            self._m_retries = None
            self._m_stale = None
        #: signalling frames that arrived as wire bytes and were decoded
        #: with the bit-exact codec (fidelity counter for tests).
        self.signaling_frames_decoded = 0
        #: periodic sources keyed by channel id (for teardown).
        self._active_sources: set[int] = set()

    # -- wiring (topology builder) ------------------------------------------

    def attach_uplink(self, port: OutputPort) -> None:
        if self.uplink is not None:
            raise SimulationError(f"node {self.name!r} already has an uplink")
        self.uplink = port

    def _require_uplink(self) -> OutputPort:
        if self.uplink is None:
            raise SimulationError(
                f"node {self.name!r} is not wired to the switch yet"
            )
        return self.uplink

    # -- channel establishment (application API) -------------------------------

    def request_channel(
        self,
        destination_mac: int,
        destination_ip: int,
        destination_name: str,
        spec: ChannelSpec,
        on_complete: RequestCallback | None = None,
        timeout_ns: int | None = None,
        retry: RetryPolicy | None = None,
        retry_rng=None,
    ) -> None:
        """Send a RequestFrame for a new RT channel to the switch.

        ``on_complete`` fires when the final ResponseFrame arrives, with
        the completed :class:`PendingRequest` and, on acceptance, the
        installed :class:`ChannelGrant`.

        ``timeout_ns`` arms a one-shot local timer: if no response
        arrives in time (possible only on lossy wires -- the paper's
        model is error-free), the request completes as ``TIMED_OUT``
        with a ``None`` grant, and a late positive response is
        automatically answered with a teardown so the switch's
        reservation is not leaked.

        ``retry`` replaces the one-shot timer with retransmission: each
        expiry within the policy's budget re-sends the identical
        RequestFrame and re-arms with exponential backoff; the request
        only becomes ``TIMED_OUT`` once ``max_retries`` retransmissions
        went unanswered. ``retry_rng`` supplies the jitter draws
        (required when the policy has jitter > 0). Mutually exclusive
        with ``timeout_ns``.
        """
        if retry is not None and timeout_ns is not None:
            raise SimulationError(
                "pass either timeout_ns (one-shot) or retry (policy), not both"
            )
        if retry is not None and retry.jitter > 0.0 and retry_rng is None:
            raise SimulationError(
                "a jittered RetryPolicy needs retry_rng "
                "(retransmission must stay reproducible)"
            )
        request = self.signaling.build_request(
            destination=destination_name,
            destination_mac=destination_mac,
            destination_ip=destination_ip,
            period=spec.period,
            capacity=spec.capacity,
            deadline=spec.deadline,
        )
        rid = request.connect_request_id
        if on_complete is not None:
            self._request_callbacks[rid] = on_complete
        span_ctx = None
        if self.spans is not None:
            root = self.spans.begin_request(
                self.name,
                rid,
                self._sim.now,
                {"destination": destination_name, "request": rid},
            )
            span_ctx = (root.trace_id, root.span_id)
        if retry is not None:
            self._retry_state[rid] = _RetryState(retry, retry_rng, request)
            self._sim.schedule(
                retry.delay_ns(0, retry_rng),
                lambda: self._request_timeout(rid),
                label=f"{self.name}:req{rid}:timeout",
            )
        elif timeout_ns is not None:
            if timeout_ns <= 0:
                raise SimulationError(
                    f"timeout_ns must be positive, got {timeout_ns}"
                )
            self._sim.schedule(
                timeout_ns,
                lambda: self._request_timeout(rid),
                label=f"{self.name}:req{rid}:timeout",
            )
        self._send_signaling(
            request, payload_bytes=REQUEST_FRAME_BYTES, span_ctx=span_ctx
        )
        if self._trace.enabled_for("signal.request"):
            self._trace.record(
                self._sim.now,
                "signal.request",
                self.name,
                f"req={rid} -> {destination_name}",
                fields={
                    "request": rid,
                    "destination": destination_name,
                },
            )

    def _request_timeout(self, connect_request_id: int) -> None:
        """Timer expiry for one outstanding request (no-op if completed)."""
        state = self._retry_state.get(connect_request_id)
        if state is not None:
            if not self.signaling.is_pending(connect_request_id):
                # the response won the race; nothing left to retry
                self._retry_state.pop(connect_request_id, None)
                return
            if state.attempt < state.policy.max_retries:
                state.attempt += 1
                self.signal_retries += 1
                if self._m_retries is not None:
                    self._m_retries.inc()
                self.signaling.pending_request(connect_request_id).retries += 1
                if self._trace.enabled_for("signal.retry"):
                    self._trace.record(
                        self._sim.now,
                        "signal.retry",
                        self.name,
                        f"req={connect_request_id} attempt={state.attempt}",
                        fields={
                            "request": connect_request_id,
                            "attempt": state.attempt,
                        },
                    )
                span_ctx = None
                if self.spans is not None:
                    root = self.spans.request_root(
                        self.name, connect_request_id
                    )
                    if root is not None:
                        span_ctx = (root.trace_id, root.span_id)
                        self.spans.event(
                            root.trace_id,
                            root.span_id,
                            "retry",
                            self.name,
                            self._sim.now,
                            {"attempt": state.attempt},
                        )
                self._send_signaling(
                    state.frame,
                    payload_bytes=REQUEST_FRAME_BYTES,
                    span_ctx=span_ctx,
                )
                self._sim.schedule(
                    state.policy.delay_ns(state.attempt, state.rng),
                    lambda: self._request_timeout(connect_request_id),
                    label=f"{self.name}:req{connect_request_id}:timeout",
                )
                return
            self._retry_state.pop(connect_request_id, None)
        try:
            record = self.signaling.timeout_request(connect_request_id)
        except ProtocolError:
            return  # the response won the race
        if self.spans is not None:
            self.spans.end_request(
                self.name, connect_request_id, self._sim.now, "timed-out"
            )
        if self._trace.enabled_for("signal.timeout"):
            self._trace.record(
                self._sim.now,
                "signal.timeout",
                self.name,
                f"req={connect_request_id}",
                fields={"request": connect_request_id},
            )
        callback = self._request_callbacks.pop(connect_request_id, None)
        if callback is not None:
            callback(record, None)

    def teardown_channel(
        self,
        channel_id: int,
        repeats: int | None = None,
        spacing_ns: int = TEARDOWN_SPACING_NS,
    ) -> None:
        """Release an established sending channel.

        The TeardownFrame carries :data:`EXPLICIT_TEARDOWN_ID` in the
        connect-request field (that ID is never allocated to a real
        request, so traces can tell explicit teardowns apart). On lossy
        wires a lost teardown would strand the switch's reservation
        forever -- ``repeats`` (default :attr:`teardown_repeats`) sends
        the frame that many times, ``spacing_ns`` apart; the switch
        absorbs whichever duplicates survive.
        """
        repeats = self.teardown_repeats if repeats is None else repeats
        if repeats < 1:
            raise SimulationError(f"repeats must be >= 1, got {repeats}")
        if spacing_ns <= 0:
            raise SimulationError(
                f"spacing_ns must be positive, got {spacing_ns}"
            )
        self.rt_layer.remove_grant(channel_id)
        self._active_sources.discard(channel_id)
        self.signaling.channel_torn_down(channel_id)
        frame = TeardownFrame(
            connect_request_id=EXPLICIT_TEARDOWN_ID, rt_channel_id=channel_id
        )
        self._repeat_teardown(frame, repeats, spacing_ns)

    def _repeat_teardown(
        self, frame: TeardownFrame, repeats: int, spacing_ns: int
    ) -> None:
        """Send ``frame`` now and ``repeats - 1`` more times afterwards."""
        span_ctx = None
        if self.spans is not None:
            root = self.spans.begin_teardown(
                frame.rt_channel_id, self.name, self._sim.now
            )
            span_ctx = (root.trace_id, root.span_id)
        self._send_signaling(
            frame, payload_bytes=TEARDOWN_FRAME_BYTES, span_ctx=span_ctx
        )
        for i in range(1, repeats):
            self._sim.schedule(
                i * spacing_ns,
                lambda f=frame, ctx=span_ctx: self._send_signaling(
                    f, payload_bytes=TEARDOWN_FRAME_BYTES, span_ctx=ctx
                ),
                label=f"{self.name}:ch{frame.rt_channel_id}:teardown",
            )

    def _send_signaling(
        self, payload, payload_bytes: int, span_ctx=None
    ) -> None:
        """Encode a signalling frame to real bytes and queue it.

        Every node-originated signalling frame travels as its bit-exact
        wire encoding (Figures 18.3/18.4); the receiver runs the real
        decoder. Only the switch's grant-carrying final response uses
        structured metadata (see :mod:`repro.core.rt_layer`).
        """
        encoded = payload.encode()
        assert len(encoded) == payload_bytes
        frame = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source=self.name,
            destination=SWITCH_NAME,
            payload_bytes=payload_bytes,
            created_at=self._sim.now,
            payload_object=encoded,
        )
        if self.spans is not None and span_ctx is not None:
            self.spans.attach_frame(frame.frame_id, span_ctx[0], span_ctx[1])
        self._require_uplink().submit_be(frame)

    # -- RT data path (application API) -----------------------------------------

    def send_message(self, channel_id: int) -> int:
        """Emit one message (``C`` frames) on an established channel now.

        Returns the number of frames enqueued.
        """
        outgoing = self.rt_layer.emit_message(channel_id, self._sim.now)
        port = self._require_uplink()
        for item in outgoing:
            port.submit_rt(item.frame, item.uplink_deadline_ns)
        return len(outgoing)

    def start_periodic_source(
        self,
        channel_id: int,
        stop_after_messages: int | None = None,
        phase_ns: int = 0,
    ) -> None:
        """Generate one message every period, starting ``phase_ns`` from now.

        The first release happens at ``now + phase_ns`` (a zero phase
        means the critical-instant synchronous release the feasibility
        analysis assumes is covered when all sources start together).
        """
        grant = self.rt_layer.grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self.name!r} has no established channel {channel_id}"
            )
        if phase_ns < 0:
            raise SimulationError(f"phase must be >= 0 ns, got {phase_ns}")
        period_ns = grant.spec.period * self._phy.slot_ns
        self._active_sources.add(channel_id)
        remaining = stop_after_messages

        def fire() -> None:
            nonlocal remaining
            if channel_id not in self._active_sources:
                return
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            self.send_message(channel_id)
            self._sim.schedule(
                period_ns, fire, label=f"{self.name}:ch{channel_id}:period"
            )

        self._sim.schedule(
            phase_ns, fire, label=f"{self.name}:ch{channel_id}:start"
        )

    def start_sporadic_source(
        self,
        channel_id: int,
        rng,
        stop_after_messages: int | None = None,
        mean_extra_gap_slots: float = 50.0,
    ) -> None:
        """Generate messages sporadically: gaps of at least one period.

        The paper reserves for *periodic* traffic, but EDF theory covers
        the sporadic generalization: as long as consecutive releases are
        at least ``P_i`` apart, the demand on every link is bounded by
        the periodic case, so the admitted reservation still guarantees
        every deadline. Gaps are ``P_i + Exp(mean_extra_gap_slots)``
        slots, drawn from ``rng`` for reproducibility.

        Validated by EXP-R1c style tests: sporadic sources on a fully
        admitted set never miss.
        """
        grant = self.rt_layer.grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self.name!r} has no established channel {channel_id}"
            )
        if mean_extra_gap_slots < 0:
            raise SimulationError(
                f"mean_extra_gap_slots must be >= 0, got {mean_extra_gap_slots}"
            )
        period_ns = grant.spec.period * self._phy.slot_ns
        self._active_sources.add(channel_id)
        remaining = stop_after_messages

        def gap_ns() -> int:
            extra = float(rng.exponential(mean_extra_gap_slots))
            return period_ns + int(extra * self._phy.slot_ns)

        def fire() -> None:
            nonlocal remaining
            if channel_id not in self._active_sources:
                return
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            self.send_message(channel_id)
            self._sim.schedule(
                gap_ns(), fire, label=f"{self.name}:ch{channel_id}:sporadic"
            )

        self._sim.schedule(
            gap_ns(), fire, label=f"{self.name}:ch{channel_id}:sporadic0"
        )

    def stop_periodic_source(self, channel_id: int) -> None:
        """Stop generating messages on ``channel_id`` (grant remains)."""
        self._active_sources.discard(channel_id)

    # -- best-effort path ---------------------------------------------------------

    def send_best_effort(self, destination: str, payload_bytes: int) -> bool:
        """Queue one best-effort frame toward ``destination``.

        Returns False when the uplink best-effort buffer dropped it.
        """
        frame = EthernetFrame(
            kind=FrameKind.BEST_EFFORT,
            source=self.name,
            destination=destination,
            payload_bytes=payload_bytes,
            created_at=self._sim.now,
        )
        return self._require_uplink().submit_be(frame)

    # -- reception -----------------------------------------------------------------

    def receive(self, frame: EthernetFrame) -> None:
        """Entry point for frames arriving on this node's downlink."""
        self.frames_received += 1
        if frame.kind is FrameKind.SIGNALING:
            self._receive_signaling(frame)
            return
        self._metrics.on_delivery(frame, self._sim.now)
        if self.spans is not None:
            self.spans.frame_done(frame.frame_id)
        if self._trace.enabled_for("node.deliver"):
            self._trace.record(
                self._sim.now,
                "node.deliver",
                self.name,
                frame.describe(),
                fields={
                    "channel": frame.channel_id,
                    "delay_ns": self._sim.now - frame.created_at,
                },
            )

    def _receive_signaling(self, frame: EthernetFrame) -> None:
        self._metrics.on_delivery(frame, self._sim.now)
        span_ctx = None
        if self.spans is not None:
            span_ctx = self.spans.frame_context(frame.frame_id)
            self.spans.frame_done(frame.frame_id)
        payload = frame.payload_object
        if isinstance(payload, (bytes, bytearray)):
            # bit-exact wire encoding: run the real decoder
            payload = decode_signaling(bytes(payload))
            self.signaling_frames_decoded += 1
        # The switch attaches the channel grant to positive responses as
        # (ResponseFrame, ChannelGrant) -- management metadata riding in
        # the response's padding bytes (see repro.core.rt_layer docs).
        if isinstance(payload, tuple) and len(payload) == 2:
            response, grant = payload
            if not isinstance(response, ResponseFrame) or not isinstance(
                grant, ChannelGrant
            ):
                raise ProtocolError(
                    f"node {self.name!r} received malformed signalling tuple"
                )
            self._handle_response(response, grant)
        elif isinstance(payload, RequestFrame):
            self._handle_offer(payload, span_ctx)
        elif isinstance(payload, ResponseFrame):
            self._handle_response(payload, None)
        else:
            raise ProtocolError(
                f"node {self.name!r} received unexpected signalling payload "
                f"{type(payload).__name__}"
            )

    def _handle_offer(self, request: RequestFrame, span_ctx=None) -> None:
        """An offered channel (switch-stamped RequestFrame) arrived."""
        response = destination_response(request, self._switch_mac, self._policy)
        if response.ok:
            self.incoming_channels[request.rt_channel_id] = request.capacity
            self._metrics.register_channel(
                request.rt_channel_id, request.capacity
            )
        if self._trace.enabled_for("signal.offer"):
            self._trace.record(
                self._sim.now,
                "signal.offer",
                self.name,
                f"ch={request.rt_channel_id} ok={response.ok}",
                fields={"channel": request.rt_channel_id, "ok": response.ok},
            )
        self._send_signaling(
            response, payload_bytes=RESPONSE_FRAME_BYTES, span_ctx=span_ctx
        )

    def _handle_response(
        self, response: ResponseFrame, grant: ChannelGrant | None
    ) -> None:
        """The switch's final verdict on one of our requests arrived."""
        kind, completed = self.signaling.handle_response(response)
        if kind is ResponseKind.STALE or kind is ResponseKind.DUPLICATE:
            # Expected on lossy wires with retransmission (the switch
            # re-answers duplicated requests): absorb and count.
            self.signal_stale_frames += 1
            if self._m_stale is not None:
                self._m_stale.inc()
            if self._trace.enabled_for("signal.stale"):
                self._trace.record(
                    self._sim.now,
                    "signal.stale",
                    self.name,
                    f"req={response.connect_request_id} kind={kind.value}",
                    fields={
                        "request": response.connect_request_id,
                        "kind": kind.value,
                    },
                )
            return
        self._retry_state.pop(response.connect_request_id, None)
        if self.spans is not None:
            self.spans.end_request(
                self.name,
                response.connect_request_id,
                self._sim.now,
                "accepted" if response.ok else "rejected",
            )
        if completed.state is ConnectionRequestState.TIMED_OUT:
            # Late response for a request we already abandoned. If the
            # switch accepted, its reservation is orphaned: release it
            # (repeated per teardown_repeats so loss cannot re-strand it).
            if response.ok:
                frame = TeardownFrame(
                    connect_request_id=response.connect_request_id,
                    rt_channel_id=response.rt_channel_id,
                )
                self._repeat_teardown(
                    frame, self.teardown_repeats, TEARDOWN_SPACING_NS
                )
                if self._trace.enabled_for("signal.late_response_teardown"):
                    self._trace.record(
                        self._sim.now,
                        "signal.late_response_teardown",
                        self.name,
                        f"ch={response.rt_channel_id}",
                        fields={"channel": response.rt_channel_id},
                    )
            return
        if response.ok:
            if grant is None:
                raise ProtocolError(
                    f"positive response for request {response.connect_request_id} "
                    "arrived without a channel grant"
                )
            self.rt_layer.install_grant(grant)
        callback = self._request_callbacks.pop(response.connect_request_id, None)
        if self._trace.enabled_for("signal.response"):
            self._trace.record(
                self._sim.now,
                "signal.response",
                self.name,
                f"req={response.connect_request_id} ok={response.ok}",
                fields={
                    "request": response.connect_request_id,
                    "ok": response.ok,
                },
            )
        if callback is not None:
            callback(completed, grant)
