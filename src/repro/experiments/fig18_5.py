"""EXP-F5: reproduction of the paper's Figure 18.5.

    "We do an experiment with the network configuration of 10 master
    nodes and 50 slave nodes. [...] every requested channel [has] the
    same parameters: C_i = 3, P_i = 100, d_i = 40. The result [...]
    proved that we get much better result with asymmetric deadline
    partitioning scheme."

The figure plots *number of accepted channels* against *number of
requested channels* (20..200) for SDPS and ADPS. In the published plot
SDPS saturates near ~60 accepted channels while ADPS reaches ~110 at
200 requested -- roughly a 2x advantage, driven by the master-uplink
bottleneck (each master's uplink carries ~5x the channels of any slave
downlink when all requests flow master -> slave).

The request arrival process is not published; we draw (master, slave)
pairs uniformly (see :mod:`repro.traffic.patterns`) and average over
seeds. EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.channel import ChannelSpec
from ..core.partitioning import AsymmetricDPS, SymmetricDPS
from ..errors import ConfigurationError
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler
from .base import AcceptanceCurve, acceptance_curve

__all__ = ["Fig185Config", "Fig185Result", "run_fig18_5"]


@dataclass(frozen=True, slots=True)
class Fig185Config:
    """Parameters of the Figure 18.5 run (defaults = the paper's)."""

    n_masters: int = 10
    n_slaves: int = 50
    spec: ChannelSpec = field(
        default_factory=lambda: ChannelSpec(period=100, capacity=3, deadline=40)
    )
    requested_counts: tuple[int, ...] = tuple(range(20, 201, 20))
    trials: int = 20
    seed: int = 2004
    #: fraction of requests flowing master -> slave (the paper's pattern).
    master_to_slave_fraction: float = 1.0
    #: worker processes for the sweep (1 = serial, 0 = all CPUs); the
    #: result is identical at any value.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_masters <= 0 or self.n_slaves <= 0:
            raise ConfigurationError(
                f"need masters and slaves, got {self.n_masters}/{self.n_slaves}"
            )
        if self.trials <= 0:
            raise ConfigurationError(f"trials must be positive: {self.trials}")


@dataclass(frozen=True, slots=True)
class Fig185Result:
    """The reproduced figure plus the paper-shape checks."""

    config: Fig185Config
    curve: AcceptanceCurve

    @property
    def sdps_final_mean(self) -> float:
        """Mean accepted channels for SDPS at the largest request count."""
        return self.curve.curve("sdps").means[-1]

    @property
    def adps_final_mean(self) -> float:
        """Mean accepted channels for ADPS at the largest request count."""
        return self.curve.curve("adps").means[-1]

    @property
    def adps_advantage(self) -> float:
        """ADPS/SDPS acceptance ratio at saturation (paper: ~1.8x)."""
        if self.sdps_final_mean == 0:
            return float("inf")
        return self.adps_final_mean / self.sdps_final_mean

    def adps_dominates_everywhere(self, slack: float = 1.0) -> bool:
        """True when ADPS' mean is never below SDPS' mean minus ``slack``.

        ``slack`` absorbs seed noise in the pre-saturation region where
        both schemes accept (almost) everything.
        """
        sdps = self.curve.curve("sdps").means
        adps = self.curve.curve("adps").means
        return all(a >= s - slack for s, a in zip(sdps, adps))

    def to_table(self) -> str:
        return self.curve.to_table(
            "Figure 18.5 -- accepted vs requested channels "
            f"({self.config.n_masters} masters, {self.config.n_slaves} "
            f"slaves, C={self.config.spec.capacity}, "
            f"P={self.config.spec.period}, d={self.config.spec.deadline}, "
            f"{self.config.trials} trials)"
        )


def run_fig18_5(
    config: Fig185Config | None = None, telemetry=None
) -> Fig185Result:
    """Run the full Figure 18.5 experiment (paper defaults).

    An optional :class:`~repro.obs.Telemetry` bundle aggregates verdict
    counters and feasibility-cache statistics across every
    (trial, scheme) controller and records one ``admission.decision``
    trace event per offered request on a synthetic timeline.
    """
    config = config or Fig185Config()
    masters, slaves = master_slave_names(config.n_masters, config.n_slaves)
    sampler = FixedSpecSampler(config.spec)

    def make_requests(count, rng):
        return master_slave_requests(
            masters,
            slaves,
            count,
            sampler,
            rng,
            master_to_slave_fraction=config.master_to_slave_fraction,
        )

    curve = acceptance_curve(
        node_names=masters + slaves,
        request_factory=make_requests,
        schemes={"sdps": SymmetricDPS, "adps": AsymmetricDPS},
        requested_counts=config.requested_counts,
        trials=config.trials,
        seed=config.seed,
        telemetry=telemetry,
        workers=config.workers,
    )
    return Fig185Result(config=config, curve=curve)
