"""EXP-P1: cost of the feasibility test and the paper's reductions.

Section 18.3.2 cites two complexity reductions for the processor-demand
test: restrict the horizon to the first busy period (Eq. 18.4) and
evaluate only at the control points ``t = m*P_i + d_i`` (Eq. 18.5).
This experiment quantifies both against the naive scan that checks
every integer instant, on task sets of growing size:

* points checked (exact work measure, deterministic);
* wall-clock per test (via ``time.perf_counter``; the pytest-benchmark
  harness re-measures the same functions properly in
  ``benchmarks/bench_perf.py``).

Task sets are generated per link as in the Figure 18.5 regime (identical
parameters) and in a heterogeneous regime (uniform sampler) where the
control-point reduction matters much more.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.feasibility import is_feasible, is_feasible_naive
from ..core.task import LinkRef, LinkTask
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from ..traffic.spec import FixedSpecSampler, SpecSampler, UniformSpecSampler

__all__ = ["PerfPoint", "feasibility_cost_sweep", "make_link_tasks"]


@dataclass(frozen=True, slots=True)
class PerfPoint:
    """Cost of one feasibility test at one task-set size."""

    n_tasks: int
    feasible: bool
    fast_points_checked: int
    naive_points_checked: int
    fast_seconds: float
    naive_seconds: float

    @property
    def point_reduction(self) -> float:
        """naive/fast ratio of demand evaluations (>= 1)."""
        if self.fast_points_checked == 0:
            return float("inf") if self.naive_points_checked else 1.0
        return self.naive_points_checked / self.fast_points_checked


def make_link_tasks(
    n_tasks: int,
    sampler: SpecSampler,
    rng: np.random.Generator,
    deadline_fraction: float = 0.5,
) -> list[LinkTask]:
    """Draw ``n_tasks`` per-link tasks from a spec sampler.

    Each sampled channel contributes its *uplink half* with
    ``d_link = max(C, floor(d * deadline_fraction))`` -- the SDPS view
    of a one-link task set.
    """
    if n_tasks < 0:
        raise ConfigurationError(f"n_tasks must be >= 0, got {n_tasks}")
    link = LinkRef.uplink("perf-node")
    tasks = []
    for _ in range(n_tasks):
        spec = sampler.sample(rng)
        deadline = max(spec.capacity, int(spec.deadline * deadline_fraction))
        tasks.append(
            LinkTask(
                link=link,
                period=spec.period,
                capacity=spec.capacity,
                deadline=deadline,
            )
        )
    return tasks


def feasibility_cost_sweep(
    sizes: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    heterogeneous: bool = True,
    seed: int = 99,
) -> list[PerfPoint]:
    """Measure fast vs naive test cost across task-set sizes.

    ``heterogeneous=True`` uses the uniform sampler (long, irregular
    hyperperiods -- the regime where Eq. 18.5 pays off);
    ``False`` uses the paper's fixed triple.
    """
    sampler: SpecSampler
    if heterogeneous:
        sampler = UniformSpecSampler(
            period_range=(40, 400),
            capacity_range=(1, 6),
            deadline_range=(10, 200),
        )
    else:
        sampler = FixedSpecSampler.paper_default()
    rng = RngRegistry(seed).stream("perf-tasks")
    points = []
    for size in sizes:
        tasks = make_link_tasks(size, sampler, rng)
        t0 = time.perf_counter()
        fast = is_feasible(tasks)
        t1 = time.perf_counter()
        naive = is_feasible_naive(tasks)
        t2 = time.perf_counter()
        if fast.feasible != naive.feasible:
            raise ConfigurationError(
                "fast and naive feasibility tests disagree -- "
                f"fast={fast.feasible} naive={naive.feasible} on {size} tasks"
            )
        points.append(
            PerfPoint(
                n_tasks=size,
                feasible=fast.feasible,
                fast_points_checked=fast.points_checked,
                naive_points_checked=naive.points_checked,
                fast_seconds=t1 - t0,
                naive_seconds=t2 - t1,
            )
        )
    return points
