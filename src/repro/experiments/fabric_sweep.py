"""EXP-X3: acceptance curves over graph fabrics (fat-tree headline).

The ROADMAP's "real fabrics" sweep: build a multipath topology with the
graph builder (:mod:`repro.multiswitch.graph`), offer a seeded stream
of channel requests between uniformly drawn host pairs, and record the
acceptance curve (accepted vs offered at evenly spaced checkpoints)
for both k-way partitioning schemes -- msym (equal split) and mprop
(LinkLoad-proportional).  The default topology is a fat-tree k=4 with
enough hosts per edge switch to pass 100 end nodes, so every inter-pod
channel crosses six links through the seeded multipath tie-break.

Determinism contract (the PR 5 runner's): a work unit is one
``(trial, scheme)`` pair; it rebuilds its topology and regenerates the
trial's request stream from ``RngRegistry(seed).fork(trial)`` -- a pure
function of the trial index -- so the curve is byte-identical at any
``--workers`` count.  Each inter-checkpoint segment flows through
``admit_many`` (the PR 7/8 batch path), which is stream-equivalent to
the scalar loop.

``--cross-check`` replays trial 0 serially for both schemes and runs
the three-way netcalc/demand-test/EDF-replay oracle
(:func:`repro.oracle.netcalc.netcalc_cross_check`) on every occupied
fabric link -- the sweep-local version of the campaign gate that
``repro netcalc-diff`` runs with the ``fat-tree`` topology in rotation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.channel import ChannelSpec
from ..errors import ConfigurationError
from ..multiswitch.admission import MultiSwitchAdmission
from ..multiswitch.graph import (
    FabricGraph,
    build_chain_graph,
    build_fat_tree,
    build_star_graph,
    build_tree_graph,
)
from ..multiswitch.partitioning import (
    MultiHopDPS,
    MultiHopProportional,
    MultiHopSymmetric,
)
from ..sim.rng import RngRegistry

__all__ = [
    "FabricSweepConfig",
    "FabricSweepPoint",
    "FabricCrossCheck",
    "FabricSweepResult",
    "build_fabric_topology",
    "cross_check_fabric_admission",
    "run_fabric_sweep",
]

#: Minimum end-node count the default fat-tree density targets.
_DEFAULT_MIN_HOSTS = 100

_SCHEMES: dict[str, type[MultiHopDPS]] = {
    "msym": MultiHopSymmetric,
    "mprop": MultiHopProportional,
}


@dataclass(frozen=True, slots=True)
class FabricSweepConfig:
    """Parameters of one fabric acceptance sweep."""

    topology: str = "fat-tree:4"
    #: hosts per edge/leaf switch (None = topology-specific default;
    #: the fat-tree default scales to >= 100 end nodes).
    hosts_per_edge: int | None = None
    requests: int = 400
    checkpoints: int = 10
    spec: ChannelSpec = field(
        default_factory=lambda: ChannelSpec(period=100, capacity=3,
                                            deadline=60)
    )
    trials: int = 5
    seed: int = 2004
    workers: int = 1
    routing_seed: int = 0
    cross_check: bool = False


@dataclass(frozen=True, slots=True)
class FabricSweepPoint:
    """Mean acceptance at one offered-count for both k-way schemes."""

    requested: int
    symmetric_mean: float
    proportional_mean: float

    @property
    def advantage(self) -> float:
        if self.symmetric_mean == 0:
            return float("inf")
        return self.proportional_mean / self.symmetric_mean


@dataclass(frozen=True, slots=True)
class FabricCrossCheck:
    """Three-way oracle verdicts over every occupied link (trial 0)."""

    links_checked: int
    capped: int
    disagreements: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.disagreements


@dataclass(frozen=True, slots=True)
class FabricSweepResult:
    """One completed fabric sweep: topology facts plus the curve."""

    topology: str
    n_nodes: int
    n_switches: int
    max_hops: int
    points: tuple[FabricSweepPoint, ...]
    cross_checks: tuple[FabricCrossCheck, ...] = ()

    @property
    def cross_check_ok(self) -> bool:
        return all(check.ok for check in self.cross_checks)


def _fat_tree_density(k: int) -> int:
    """Hosts per edge switch scaling a k-ary fat-tree past 100 nodes."""
    edge_switches = k * (k // 2)
    return max(k // 2, math.ceil(_DEFAULT_MIN_HOSTS / edge_switches))


def build_fabric_topology(
    topology: str,
    hosts_per_edge: int | None = None,
    routing_seed: int = 0,
) -> FabricGraph:
    """Build a fabric from its CLI spec string.

    Accepted forms: ``fat-tree:K`` (K even; default density scales to
    >= 100 hosts), ``chain:N`` (N switches), ``tree:DEPTH:FANOUT``, and
    ``star:N`` (N end nodes).  ``hosts_per_edge`` overrides the hosts
    per edge/leaf switch where the topology has one.
    """
    kind, _, rest = topology.partition(":")
    params = rest.split(":") if rest else []
    try:
        numbers = [int(p) for p in params]
    except ValueError:
        raise ConfigurationError(
            f"non-integer parameter in topology {topology!r}"
        ) from None
    try:
        if kind == "fat-tree" and len(numbers) == 1:
            k = numbers[0]
            density = (
                hosts_per_edge if hosts_per_edge is not None
                else _fat_tree_density(k)
            )
            return build_fat_tree(
                k, hosts_per_edge=density, routing_seed=routing_seed
            )
        if kind == "chain" and len(numbers) == 1:
            return build_chain_graph(
                numbers[0],
                hosts_per_edge if hosts_per_edge is not None else 4,
                routing_seed=routing_seed,
            )
        if kind == "tree" and len(numbers) == 2:
            depth, fanout = numbers
            return build_tree_graph(
                depth,
                fanout,
                hosts_per_edge if hosts_per_edge is not None else fanout,
                routing_seed=routing_seed,
            )
        if kind == "star" and len(numbers) == 1:
            if numbers[0] < 1:
                raise ConfigurationError(
                    f"star needs >= 1 end node, got {numbers[0]}"
                )
            return build_star_graph(
                [f"n{i}" for i in range(numbers[0])],
                routing_seed=routing_seed,
            )
    except ConfigurationError:
        raise
    except Exception as exc:
        raise ConfigurationError(
            f"cannot build topology {topology!r}: {exc}"
        ) from exc
    raise ConfigurationError(
        f"unknown topology {topology!r} (use fat-tree:K, chain:N, "
        "tree:DEPTH:FANOUT or star:N)"
    )


def _request_stream(
    graph: FabricGraph, seed: int, trial: int, n: int
) -> list[tuple[str, str]]:
    """The trial's (source, destination) pairs -- pure in (seed, trial)."""
    rng = RngRegistry(seed).fork(trial).stream("fabric-requests")
    names = list(graph.node_order)
    if len(names) < 2:
        raise ConfigurationError(
            f"topology has {len(names)} end node(s); a sweep needs >= 2"
        )
    pairs = []
    for _ in range(n):
        i = int(rng.integers(0, len(names)))
        j = int(rng.integers(0, len(names) - 1))
        if j >= i:  # uniform over the n-1 non-self destinations
            j += 1
        pairs.append((names[i], names[j]))
    return pairs


def _checkpoint_counts(requests: int, checkpoints: int) -> list[int]:
    if requests <= 0 or checkpoints <= 0:
        raise ConfigurationError(
            f"requests and checkpoints must be positive, got "
            f"{requests}/{checkpoints}"
        )
    counts = sorted({
        round(requests * (i + 1) / checkpoints) for i in range(checkpoints)
    })
    return [c for c in counts if c > 0]


def cross_check_fabric_admission(
    admission: MultiSwitchAdmission,
) -> FabricCrossCheck:
    """Run the three-way oracle on every occupied link of a fabric."""
    from ..oracle.netcalc import NetcalcAgreement, netcalc_cross_check

    capped = 0
    disagreements: list[str] = []
    links = admission.occupied_links()
    for link in links:
        verdict = netcalc_cross_check(admission.tasks_on(link))
        if verdict.agreement is NetcalcAgreement.HORIZON_CAPPED:
            capped += 1
        elif verdict.agreement.is_disagreement:
            disagreements.append(
                f"{link}: {verdict.agreement.value}: {verdict.detail}"
            )
    return FabricCrossCheck(
        links_checked=len(links),
        capped=capped,
        disagreements=tuple(disagreements),
    )


def run_fabric_sweep(config: FabricSweepConfig) -> FabricSweepResult:
    """EXP-X3: the msym-vs-mprop acceptance curve on a graph fabric."""
    from .runner import parallel_map

    if config.trials <= 0:
        raise ConfigurationError(
            f"trials must be positive, got {config.trials}"
        )
    probe = build_fabric_topology(
        config.topology, config.hosts_per_edge, config.routing_seed
    )
    probe.validate_connected()
    names = probe.node_order
    if len(names) < 2:
        raise ConfigurationError(
            f"topology {config.topology!r} has {len(names)} end node(s); "
            "a sweep needs >= 2"
        )
    max_hops = max(
        probe.hop_count(names[0], other) for other in names[1:]
    )
    counts = _checkpoint_counts(config.requests, config.checkpoints)

    def run_unit(unit: tuple[int, str]) -> list[float]:
        trial, key = unit
        graph = build_fabric_topology(
            config.topology, config.hosts_per_edge, config.routing_seed
        )
        pairs = _request_stream(
            graph, config.seed, trial, config.requests
        )
        admission = MultiSwitchAdmission(
            fabric=graph, dps=_SCHEMES[key]()
        )
        row: list[float] = []
        start = 0
        for count in counts:
            admission.admit_many(
                (source, destination, config.spec)
                for source, destination in pairs[start:count]
            )
            row.append(float(admission.accept_count))
            start = count
        return row

    units = [
        (trial, key)
        for trial in range(config.trials)
        for key in _SCHEMES
    ]
    rows = parallel_map(run_unit, units, config.workers)
    totals: dict[str, list[list[float]]] = {key: [] for key in _SCHEMES}
    for (trial, key), row in zip(units, rows):
        totals[key].append(row)
    points = tuple(
        FabricSweepPoint(
            requested=count,
            symmetric_mean=(
                sum(r[i] for r in totals["msym"]) / config.trials
            ),
            proportional_mean=(
                sum(r[i] for r in totals["mprop"]) / config.trials
            ),
        )
        for i, count in enumerate(counts)
    )

    cross_checks: tuple[FabricCrossCheck, ...] = ()
    if config.cross_check:
        checks = []
        for key in sorted(_SCHEMES):
            graph = build_fabric_topology(
                config.topology, config.hosts_per_edge, config.routing_seed
            )
            pairs = _request_stream(
                graph, config.seed, 0, config.requests
            )
            admission = MultiSwitchAdmission(
                fabric=graph, dps=_SCHEMES[key]()
            )
            admission.admit_many(
                (source, destination, config.spec)
                for source, destination in pairs
            )
            checks.append(cross_check_fabric_admission(admission))
        cross_checks = tuple(checks)

    return FabricSweepResult(
        topology=config.topology,
        n_nodes=len(names),
        n_switches=len(probe.switches),
        max_hops=max_hops,
        points=points,
        cross_checks=cross_checks,
    )
