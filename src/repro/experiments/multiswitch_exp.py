"""EXP-X1: acceptance on switch trees (the paper's future work).

Generalizes the Figure 18.5 comparison to multi-switch fabrics built
with :mod:`repro.multiswitch`: masters hang off one switch, slaves are
spread over the remaining switches of a chain, so master->slave channels
cross 2..(k+1) links. Compared schemes are the k-way generalizations of
SDPS (equal split) and ADPS (LinkLoad-proportional split).

Expected shape (no published reference exists): the proportional scheme
retains an advantage because the master uplinks *and* the inter-switch
trunks are bottlenecks, and equal splitting wastes deadline budget on
the lightly loaded leaf links. Longer chains shrink both schemes'
absolute acceptance (the per-hop floor ``d >= k*C`` bites).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import ChannelSpec
from ..errors import ConfigurationError
from ..multiswitch.admission import MultiSwitchAdmission
from ..multiswitch.fabric import SwitchFabric
from ..multiswitch.partitioning import (
    MultiHopProportional,
    MultiHopSymmetric,
)
from ..sim.rng import RngRegistry

__all__ = [
    "MultiSwitchPoint",
    "FabricValidationReport",
    "build_master_slave_fabric",
    "run_multiswitch_comparison",
    "run_fabric_validation",
]


@dataclass(frozen=True, slots=True)
class MultiSwitchPoint:
    """Acceptance at one requested-count for both k-way schemes."""

    requested: int
    symmetric_mean: float
    proportional_mean: float

    @property
    def advantage(self) -> float:
        if self.symmetric_mean == 0:
            return float("inf")
        return self.proportional_mean / self.symmetric_mean


def build_master_slave_fabric(
    n_switches: int, n_masters: int, n_slaves: int
) -> tuple[SwitchFabric, list[str], list[str]]:
    """A chain of switches with all masters on sw0, slaves spread evenly."""
    if n_switches <= 0:
        raise ConfigurationError(f"need >= 1 switch, got {n_switches}")
    if n_masters <= 0 or n_slaves <= 0:
        raise ConfigurationError(
            f"need masters and slaves, got {n_masters}/{n_slaves}"
        )
    fabric = SwitchFabric()
    for i in range(n_switches):
        fabric.add_switch(f"sw{i}")
        if i > 0:
            fabric.connect_switches(f"sw{i - 1}", f"sw{i}")
    masters = [f"m{i}" for i in range(n_masters)]
    for master in masters:
        fabric.add_node(master, "sw0")
    slaves = [f"s{i}" for i in range(n_slaves)]
    for index, slave in enumerate(slaves):
        fabric.add_node(slave, f"sw{index % n_switches}")
    return fabric, masters, slaves


def run_multiswitch_comparison(
    n_switches: int = 3,
    n_masters: int = 10,
    n_slaves: int = 50,
    requested_counts: tuple[int, ...] = tuple(range(20, 201, 20)),
    spec: ChannelSpec | None = None,
    trials: int = 10,
    seed: int = 303,
    workers: int = 1,
) -> list[MultiSwitchPoint]:
    """Paired acceptance comparison of the two k-way schemes.

    ``workers`` fans the (trial, scheme) grid across processes (0 = all
    CPUs). A work unit regenerates its trial's (master, slave) pairs
    from ``RngRegistry(seed).fork(trial)`` -- a pure function of the
    trial index -- so the points are identical at any worker count.
    """
    from .runner import parallel_map

    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    spec = spec or ChannelSpec(period=100, capacity=3, deadline=60)
    counts = sorted(set(requested_counts))
    max_count = counts[-1]
    schemes = {"sym": MultiHopSymmetric, "prop": MultiHopProportional}

    def run_unit(unit: tuple[int, str]) -> list[float]:
        trial, key = unit
        rng = RngRegistry(seed).fork(trial).stream("multiswitch-requests")
        pairs = [
            (
                f"m{int(rng.integers(0, n_masters))}",
                f"s{int(rng.integers(0, n_slaves))}",
            )
            for _ in range(max_count)
        ]
        fabric, _, _ = build_master_slave_fabric(
            n_switches, n_masters, n_slaves
        )
        admission = MultiSwitchAdmission(fabric=fabric, dps=schemes[key]())
        row = [0.0] * len(counts)
        checkpoint = 0
        for offered, (source, destination) in enumerate(pairs, start=1):
            admission.request(source, destination, spec)
            while (
                checkpoint < len(counts) and counts[checkpoint] == offered
            ):
                row[checkpoint] = admission.accept_count
                checkpoint += 1
        return row

    units = [
        (trial, key) for trial in range(trials) for key in schemes
    ]
    rows = parallel_map(run_unit, units, workers)
    totals: dict[str, list[list[float]]] = {key: [] for key in schemes}
    for (trial, key), row in zip(units, rows):
        totals[key].append(row)
    points = []
    for i, requested in enumerate(counts):
        sym = sum(totals["sym"][t][i] for t in range(trials)) / trials
        prop = sum(totals["prop"][t][i] for t in range(trials)) / trials
        points.append(
            MultiSwitchPoint(
                requested=requested,
                symmetric_mean=sym,
                proportional_mean=prop,
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class FabricValidationReport:
    """EXP-X2: outcome of one fabric data-plane validation run."""

    n_switches: int
    channels_requested: int
    channels_admitted: int
    max_hop_count: int
    messages_completed: int
    end_to_end_misses: int
    per_link_misses: int
    worst_delay_ns: int
    guarantee_bound_ns: int

    @property
    def holds(self) -> bool:
        """True when the generalized Eq. 18.1 held for every frame."""
        return (
            self.end_to_end_misses == 0
            and self.per_link_misses == 0
            and self.worst_delay_ns <= self.guarantee_bound_ns
        )

    @property
    def worst_delay_fraction(self) -> float:
        if self.guarantee_bound_ns == 0:
            return 0.0
        return self.worst_delay_ns / self.guarantee_bound_ns


def run_fabric_validation(
    n_switches: int = 3,
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 3,
    spec: ChannelSpec | None = None,
    seed: int = 404,
) -> FabricValidationReport:
    """EXP-X2: simulate an admitted multi-hop set; verify the guarantee.

    The fabric analogue of EXP-V1: masters on sw0, slaves spread over
    the chain, centralized admission with the k-way proportional DPS,
    critical-instant release, per-hop and end-to-end deadline checks.
    """
    from ..multiswitch.simnet import build_fabric_network
    from ..multiswitch.partitioning import MultiHopProportional

    spec = spec or ChannelSpec(period=100, capacity=3, deadline=60)
    fabric, masters, slaves = build_master_slave_fabric(
        n_switches, n_masters, n_slaves
    )
    net = build_fabric_network(fabric, dps=MultiHopProportional())
    rng = RngRegistry(seed).stream("fabric-validation")
    admitted = []
    for _ in range(n_requests):
        source = masters[int(rng.integers(0, n_masters))]
        destination = slaves[int(rng.integers(0, n_slaves))]
        channel = net.establish(source, destination, spec)
        if channel is not None:
            admitted.append(channel)
    net.start_all_sources(stop_after_messages=messages)
    net.sim.run()
    max_hops = max((c.hop_count for c in admitted), default=2)
    bound = (
        spec.deadline * net.phy.slot_ns
        + net.metrics.t_latency_ns
    )
    return FabricValidationReport(
        n_switches=n_switches,
        channels_requested=n_requests,
        channels_admitted=len(admitted),
        max_hop_count=max_hops,
        messages_completed=net.metrics.total_rt_messages,
        end_to_end_misses=net.metrics.total_deadline_misses,
        per_link_misses=net.per_link_misses(),
        worst_delay_ns=net.metrics.worst_rt_delay_ns,
        guarantee_bound_ns=bound,
    )
