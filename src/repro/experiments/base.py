"""Shared experiment machinery: acceptance curves over request sequences.

The paper's headline metric is *accepted channels vs requested
channels*. Because admission is strictly incremental -- the decision on
request ``i`` depends only on requests ``1..i-1`` -- a whole acceptance
curve for one trial is computed in a single pass: feed the longest
request sequence once and record the running acceptance count at each
x-axis checkpoint. Both schemes see the *same* request sequence per
trial (paired comparison), which removes workload noise from the
SDPS-vs-ADPS contrast exactly like the paper's single-workload plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..analysis.report import format_series_table
from ..analysis.stats import SeriesSummary, summarize
from ..core.admission import AdmissionController, SystemState
from ..core.partitioning import DeadlinePartitioningScheme
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from ..traffic.patterns import ChannelRequest

__all__ = [
    "run_requests",
    "TraceLane",
    "SchemeCurve",
    "AcceptanceCurve",
    "acceptance_curve",
]

#: Builds a fresh DPS instance per trial (schemes may be stateful).
SchemeFactory = Callable[[], DeadlinePartitioningScheme]

#: Builds one trial's request sequence: (count, rng) -> requests.
RequestFactory = Callable[[int, np.random.Generator], list[ChannelRequest]]


#: Synthetic trace timeline for analytic (no data plane) admission runs:
#: request ``i`` is stamped at ``i`` microseconds so verdict streams are
#: browsable on the Chrome-trace timeline even without a simulator.
_ANALYTIC_TICK_NS = 1_000_000


@dataclass(frozen=True, slots=True)
class TraceLane:
    """Distinct trace identity of one (trial, scheme) run in a sweep.

    Without a lane, every run of a sweep stamps its ``admission.decision``
    events at the same synthetic timestamps (``offered`` ticks), so a
    20-trial two-scheme sweep collapses into one indistinguishable pile
    on the Perfetto timeline. A lane shifts the run by ``offset_ns``
    (sweeps space runs so their tick ranges never overlap) and tags each
    event's ``fields`` with the trial and scheme.
    """

    trial: int
    scheme: str
    offset_ns: int = 0


def run_requests(
    node_names: Sequence[str],
    requests: Sequence[ChannelRequest],
    dps: DeadlinePartitioningScheme,
    checkpoints: Sequence[int] | None = None,
    telemetry=None,
    lane: TraceLane | None = None,
    batch: bool = True,
) -> list[int]:
    """Feed ``requests`` to a fresh admission controller.

    Returns the running acceptance count at each checkpoint (after that
    many requests have been offered). With ``checkpoints=None`` a single
    final count is returned (as a one-element list). An optional
    :class:`~repro.obs.Telemetry` bundle collects verdict counters,
    feasibility-cache statistics and (when tracing is on) one
    ``admission.decision`` trace event per request; the controller's
    cache is retired into the bundle's running totals when the run
    completes, so sweeps do not accumulate dead caches. ``lane`` gives
    this run a distinct timeline in a multi-run sweep (see
    :class:`TraceLane`).

    ``batch=True`` (the default) drives the hot path through
    :meth:`~repro.core.admission.AdmissionController.admit_many`, one
    burst per inter-checkpoint segment, so sweeps benefit from pooled
    prefetching and the saturated-tail decision template. The decision
    stream, trace records, counts and span stream are byte-identical to
    the scalar path (``batch=False``) -- the batch engine's own stream
    equality guarantee plus checkpoint-aligned segmentation make the
    two indistinguishable to every observer.
    """
    if checkpoints is None:
        checkpoints = [len(requests)]
    checkpoints = sorted(set(checkpoints))
    if checkpoints and checkpoints[-1] > len(requests):
        raise ConfigurationError(
            f"checkpoint {checkpoints[-1]} exceeds the number of requests "
            f"({len(requests)})"
        )
    state = SystemState(nodes=node_names)
    controller = AdmissionController(
        state=state,
        dps=dps,
        metrics=None if telemetry is None else telemetry.registry,
    )
    recorder = None
    spans = None
    if telemetry is not None:
        telemetry.track_cache(controller.cache)
        if telemetry.recorder.enabled_for("admission.decision"):
            recorder = telemetry.recorder
        spans = telemetry.spans
    offset_ns = 0 if lane is None else lane.offset_ns
    root = None
    if spans is not None:
        if lane is None:
            subject, fields = "sweep", None
        else:
            subject = f"trial{lane.trial}:{lane.scheme}"
            fields = {"trial": lane.trial, "scheme": lane.scheme}
        root = spans.begin_trace("sweep.run", subject, offset_ns, fields)
    counts: list[int] = []
    next_checkpoint = 0
    while (
        next_checkpoint < len(checkpoints)
        and checkpoints[next_checkpoint] == 0
    ):
        counts.append(0)
        next_checkpoint += 1

    # Burst boundaries: one admit_many() per inter-checkpoint segment
    # (and a final tail segment past the last checkpoint). The scalar
    # path observes the same boundaries so its span stream -- one
    # "admission" span per segment -- is byte-identical.
    bounds = [c for c in checkpoints if c > 0]
    if not bounds or bounds[-1] < len(requests):
        bounds.append(len(requests))
    segment_ends = set(bounds)

    def decisions():
        if not batch:
            for request in requests:
                yield controller.request(
                    request.source, request.destination, request.spec
                )
            return
        # Counts are observed at exactly the controller states the
        # scalar loop would see, because the generator is lazy -- a
        # checkpoint is read after its segment's burst and before the
        # next one starts.
        start = 0
        for stop in bounds:
            if stop > start:
                yield from controller.admit_many(
                    (r.source, r.destination, r.spec)
                    for r in requests[start:stop]
                )
                start = stop

    accepted_running = 0
    segment_start = 0
    segment_accepted = 0
    for offered, (request, decision) in enumerate(
        zip(requests, decisions()), start=1
    ):
        if decision.accepted:
            accepted_running += 1
            segment_accepted += 1
        if recorder is not None:
            verdict = (
                "accept" if decision.accepted else decision.reason.value
            )
            fields = {
                "verdict": verdict,
                "accepted_so_far": accepted_running,
            }
            if lane is not None:
                fields["trial"] = lane.trial
                fields["scheme"] = lane.scheme
            recorder.record(
                offset_ns + offered * _ANALYTIC_TICK_NS,
                "admission.decision",
                request.source,
                f"{request.source}->{request.destination} {verdict}",
                fields=fields,
            )
        if offered in segment_ends:
            if root is not None:
                spans.child(
                    root.trace_id, root.span_id, "admission",
                    root.subject,
                    offset_ns + (segment_start + 1) * _ANALYTIC_TICK_NS,
                    offset_ns + offered * _ANALYTIC_TICK_NS,
                    {
                        "offered": offered - segment_start,
                        "accepted": segment_accepted,
                        "accepted_so_far": accepted_running,
                    },
                )
            segment_start = offered
            segment_accepted = 0
        while (
            next_checkpoint < len(checkpoints)
            and checkpoints[next_checkpoint] == offered
        ):
            counts.append(accepted_running)
            next_checkpoint += 1
    while next_checkpoint < len(checkpoints):  # checkpoint 0, or empty input
        counts.append(accepted_running)
        next_checkpoint += 1
    if root is not None:
        root.end_ns = offset_ns + len(requests) * _ANALYTIC_TICK_NS
        root.fields = dict(root.fields or {})
        root.fields["accepted"] = accepted_running
        root.fields["offered"] = len(requests)
    if telemetry is not None:
        telemetry.retire_cache(controller.cache)
    return counts


@dataclass(frozen=True, slots=True)
class SchemeCurve:
    """Acceptance statistics of one scheme across the x-axis."""

    scheme: str
    #: per-x summaries over trials
    summaries: tuple[SeriesSummary, ...]

    @property
    def means(self) -> list[float]:
        return [s.mean for s in self.summaries]

    @property
    def ci_half_widths(self) -> list[float]:
        return [s.ci_half_width for s in self.summaries]


@dataclass(frozen=True, slots=True)
class AcceptanceCurve:
    """A full accepted-vs-requested figure: several schemes, shared x."""

    requested: tuple[int, ...]
    curves: tuple[SchemeCurve, ...]
    trials: int
    seed: int

    def curve(self, scheme: str) -> SchemeCurve:
        for curve in self.curves:
            if curve.scheme == scheme:
                return curve
        raise ConfigurationError(
            f"no scheme {scheme!r} in this result "
            f"(have {[c.scheme for c in self.curves]})"
        )

    def to_table(self, title: str) -> str:
        """Render as the figure-as-a-table format the benches print."""
        series = {c.scheme: [round(m, 1) for m in c.means] for c in self.curves}
        return format_series_table(
            "requested", list(self.requested), series, title=title
        )


def trial_requests(
    request_factory: RequestFactory,
    seed: int,
    trial: int,
    max_count: int,
) -> list[ChannelRequest]:
    """One trial's request sequence -- a pure function of (seed, trial).

    Every sweep path (serial loop, parallel work unit) draws requests
    through this helper, so a (trial, scheme) unit regenerated in a
    worker process sees byte-for-byte the sequence the serial loop
    would have fed it.
    """
    rng = RngRegistry(seed).fork(trial).stream("requests")
    requests = request_factory(max_count, rng)
    if len(requests) != max_count:
        raise ConfigurationError(
            f"request factory produced {len(requests)} requests, "
            f"expected {max_count}"
        )
    return requests


def acceptance_curve(
    node_names: Sequence[str],
    request_factory: RequestFactory,
    schemes: Mapping[str, SchemeFactory],
    requested_counts: Sequence[int],
    trials: int,
    seed: int,
    telemetry=None,
    workers: int = 1,
) -> AcceptanceCurve:
    """Run the paired acceptance experiment.

    For each trial, one request sequence of length ``max(requested_counts)``
    is drawn from the trial's RNG stream and fed to every scheme;
    acceptance counts are read at each checkpoint. Results are
    summarized over trials per (scheme, x) pair.

    ``workers`` fans the (trial, scheme) work units across a process
    pool (see :mod:`repro.experiments.runner`): 1 (the default) runs
    today's in-process serial loop, 0 uses every available CPU, N > 1
    uses N processes. The returned curve -- and, with ``telemetry``, the
    merged metrics/trace bundle -- is identical at any worker count.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    counts = sorted(set(int(c) for c in requested_counts))
    if not counts or counts[0] < 0:
        raise ConfigurationError(
            f"requested_counts must be non-negative, got {requested_counts!r}"
        )
    from .runner import sweep_counts

    per_scheme = sweep_counts(
        node_names=node_names,
        request_factory=request_factory,
        schemes=schemes,
        checkpoints=counts,
        trials=trials,
        seed=seed,
        telemetry=telemetry,
        workers=workers,
    )
    curves = []
    for name in schemes:
        matrix = np.asarray(per_scheme[name], dtype=np.float64)
        summaries = tuple(
            summarize(matrix[:, i]) for i in range(len(counts))
        )
        curves.append(SchemeCurve(scheme=name, summaries=summaries))
    return AcceptanceCurve(
        requested=tuple(counts),
        curves=tuple(curves),
        trials=trials,
        seed=seed,
    )
