"""Shared experiment machinery: acceptance curves over request sequences.

The paper's headline metric is *accepted channels vs requested
channels*. Because admission is strictly incremental -- the decision on
request ``i`` depends only on requests ``1..i-1`` -- a whole acceptance
curve for one trial is computed in a single pass: feed the longest
request sequence once and record the running acceptance count at each
x-axis checkpoint. Both schemes see the *same* request sequence per
trial (paired comparison), which removes workload noise from the
SDPS-vs-ADPS contrast exactly like the paper's single-workload plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..analysis.report import format_series_table
from ..analysis.stats import SeriesSummary, summarize
from ..core.admission import AdmissionController, SystemState
from ..core.partitioning import DeadlinePartitioningScheme
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from ..traffic.patterns import ChannelRequest

__all__ = [
    "run_requests",
    "SchemeCurve",
    "AcceptanceCurve",
    "acceptance_curve",
]

#: Builds a fresh DPS instance per trial (schemes may be stateful).
SchemeFactory = Callable[[], DeadlinePartitioningScheme]

#: Builds one trial's request sequence: (count, rng) -> requests.
RequestFactory = Callable[[int, np.random.Generator], list[ChannelRequest]]


#: Synthetic trace timeline for analytic (no data plane) admission runs:
#: request ``i`` is stamped at ``i`` microseconds so verdict streams are
#: browsable on the Chrome-trace timeline even without a simulator.
_ANALYTIC_TICK_NS = 1_000_000


def run_requests(
    node_names: Sequence[str],
    requests: Sequence[ChannelRequest],
    dps: DeadlinePartitioningScheme,
    checkpoints: Sequence[int] | None = None,
    telemetry=None,
) -> list[int]:
    """Feed ``requests`` to a fresh admission controller.

    Returns the running acceptance count at each checkpoint (after that
    many requests have been offered). With ``checkpoints=None`` a single
    final count is returned (as a one-element list). An optional
    :class:`~repro.obs.Telemetry` bundle collects verdict counters,
    feasibility-cache statistics and (when tracing is on) one
    ``admission.decision`` trace event per request.
    """
    if checkpoints is None:
        checkpoints = [len(requests)]
    checkpoints = sorted(set(checkpoints))
    if checkpoints and checkpoints[-1] > len(requests):
        raise ConfigurationError(
            f"checkpoint {checkpoints[-1]} exceeds the number of requests "
            f"({len(requests)})"
        )
    state = SystemState(nodes=node_names)
    controller = AdmissionController(
        state=state,
        dps=dps,
        metrics=None if telemetry is None else telemetry.registry,
    )
    recorder = None
    if telemetry is not None:
        telemetry.track_cache(controller.cache)
        if telemetry.recorder.enabled_for("admission.decision"):
            recorder = telemetry.recorder
    counts: list[int] = []
    next_checkpoint = 0
    while (
        next_checkpoint < len(checkpoints)
        and checkpoints[next_checkpoint] == 0
    ):
        counts.append(0)
        next_checkpoint += 1
    for offered, request in enumerate(requests, start=1):
        decision = controller.request(
            request.source, request.destination, request.spec
        )
        if recorder is not None:
            verdict = (
                "accept" if decision.accepted else decision.reason.value
            )
            recorder.record(
                offered * _ANALYTIC_TICK_NS,
                "admission.decision",
                request.source,
                f"{request.source}->{request.destination} {verdict}",
                fields={
                    "verdict": verdict,
                    "accepted_so_far": controller.accept_count,
                },
            )
        while (
            next_checkpoint < len(checkpoints)
            and checkpoints[next_checkpoint] == offered
        ):
            counts.append(controller.accept_count)
            next_checkpoint += 1
    while next_checkpoint < len(checkpoints):  # checkpoint 0, or empty input
        counts.append(controller.accept_count)
        next_checkpoint += 1
    return counts


@dataclass(frozen=True, slots=True)
class SchemeCurve:
    """Acceptance statistics of one scheme across the x-axis."""

    scheme: str
    #: per-x summaries over trials
    summaries: tuple[SeriesSummary, ...]

    @property
    def means(self) -> list[float]:
        return [s.mean for s in self.summaries]

    @property
    def ci_half_widths(self) -> list[float]:
        return [s.ci_half_width for s in self.summaries]


@dataclass(frozen=True, slots=True)
class AcceptanceCurve:
    """A full accepted-vs-requested figure: several schemes, shared x."""

    requested: tuple[int, ...]
    curves: tuple[SchemeCurve, ...]
    trials: int
    seed: int

    def curve(self, scheme: str) -> SchemeCurve:
        for curve in self.curves:
            if curve.scheme == scheme:
                return curve
        raise ConfigurationError(
            f"no scheme {scheme!r} in this result "
            f"(have {[c.scheme for c in self.curves]})"
        )

    def to_table(self, title: str) -> str:
        """Render as the figure-as-a-table format the benches print."""
        series = {c.scheme: [round(m, 1) for m in c.means] for c in self.curves}
        return format_series_table(
            "requested", list(self.requested), series, title=title
        )


def acceptance_curve(
    node_names: Sequence[str],
    request_factory: RequestFactory,
    schemes: Mapping[str, SchemeFactory],
    requested_counts: Sequence[int],
    trials: int,
    seed: int,
    telemetry=None,
) -> AcceptanceCurve:
    """Run the paired acceptance experiment.

    For each trial, one request sequence of length ``max(requested_counts)``
    is drawn from the trial's RNG stream and fed to every scheme;
    acceptance counts are read at each checkpoint. Results are
    summarized over trials per (scheme, x) pair.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    counts = sorted(set(int(c) for c in requested_counts))
    if not counts or counts[0] < 0:
        raise ConfigurationError(
            f"requested_counts must be non-negative, got {requested_counts!r}"
        )
    max_count = counts[-1]
    per_scheme: dict[str, list[list[int]]] = {name: [] for name in schemes}
    for trial in range(trials):
        rng = RngRegistry(seed).fork(trial).stream("requests")
        requests = request_factory(max_count, rng)
        if len(requests) != max_count:
            raise ConfigurationError(
                f"request factory produced {len(requests)} requests, "
                f"expected {max_count}"
            )
        for name, factory in schemes.items():
            per_scheme[name].append(
                run_requests(
                    node_names, requests, factory(), counts,
                    telemetry=telemetry,
                )
            )
    curves = []
    for name in schemes:
        matrix = np.asarray(per_scheme[name], dtype=np.float64)
        summaries = tuple(
            summarize(matrix[:, i]) for i in range(len(counts))
        )
        curves.append(SchemeCurve(scheme=name, summaries=summaries))
    return AcceptanceCurve(
        requested=tuple(counts),
        curves=tuple(curves),
        trials=trials,
        seed=seed,
    )
