"""Per-channel network-calculus bounds for the Fig. 18.5 workload.

A *regression surface* for the curve algebra: replay the paper's
Figure 18.5 request sequence (trial 0 of the published seed) into an
admission controller for each scheme, stop at fixed checkpoints, and
tabulate every admitted channel's end-to-end network-calculus bound
exactly (:class:`~repro.netcalc.bounds.PathBound`). The rendered CSV is
checked into ``results/netcalc_bounds.csv`` and compared byte-identical
in CI, so any change to the curve algebra, the admission order, or the
workload generator shows up as a diff instead of a silent drift.

All bound arithmetic is exact (``fractions.Fraction``); the CSV renders
``bound_slots`` via ``str(Fraction)`` ("47/3"), so the fixture is
independent of float formatting across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..core.admission import AdmissionController, SystemState
from ..core.partitioning import AsymmetricDPS, SymmetricDPS
from ..errors import ConfigurationError
from ..netcalc.bounds import path_bound_ns
from ..network.phy import PhyProfile
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler
from .base import trial_requests
from .fig18_5 import Fig185Config

__all__ = [
    "DEFAULT_CHECKPOINTS",
    "BoundRow",
    "netcalc_bound_rows",
    "render_bounds_csv",
]

#: Offered-request checkpoints: pre-saturation, mid-curve, full sweep.
DEFAULT_CHECKPOINTS = (20, 100, 200)

_SCHEMES = (("sdps", SymmetricDPS), ("adps", AsymmetricDPS))

_CSV_HEADER = (
    "scheme,checkpoint,channel,source,destination,hops,"
    "bound_slots,bound_ns,paper_bound_ns"
)


@dataclass(frozen=True, slots=True)
class BoundRow:
    """One admitted channel's bounds at one (scheme, checkpoint)."""

    scheme: str
    checkpoint: int
    channel_id: int
    source: str
    destination: str
    hops: int
    #: exact end-to-end curve bound, in slots.
    bound_slots: Fraction
    #: ceil'd physical bound including propagation and switch latency.
    bound_ns: int
    #: Eq. 18.1's promise for the same channel (``d*slot + T_latency``).
    paper_bound_ns: int

    def to_csv(self) -> str:
        return (
            f"{self.scheme},{self.checkpoint},{self.channel_id},"
            f"{self.source},{self.destination},{self.hops},"
            f"{self.bound_slots},{self.bound_ns},{self.paper_bound_ns}"
        )


def netcalc_bound_rows(
    config: Fig185Config | None = None,
    checkpoints: Sequence[int] = DEFAULT_CHECKPOINTS,
    phy: PhyProfile | None = None,
) -> list[BoundRow]:
    """Bound table for trial 0 of the Fig. 18.5 workload.

    Pure in its arguments: the request sequence is
    :func:`~repro.experiments.base.trial_requests` at trial 0 of the
    config's seed -- byte-for-byte what the acceptance-curve sweep
    feeds its first trial.
    """
    config = config or Fig185Config()
    checkpoints = sorted(set(checkpoints))
    if not checkpoints or checkpoints[0] <= 0:
        raise ConfigurationError(
            f"checkpoints must be positive, got {checkpoints}"
        )
    phy = phy or PhyProfile.fast_ethernet()
    masters, slaves = master_slave_names(config.n_masters, config.n_slaves)
    sampler = FixedSpecSampler(config.spec)

    def make_requests(count, rng):
        return master_slave_requests(
            masters,
            slaves,
            count,
            sampler,
            rng,
            master_to_slave_fraction=config.master_to_slave_fraction,
        )

    requests = trial_requests(
        make_requests, config.seed, 0, checkpoints[-1]
    )
    rows: list[BoundRow] = []
    for scheme_name, scheme_cls in _SCHEMES:
        state = SystemState(nodes=masters + slaves)
        controller = AdmissionController(state=state, dps=scheme_cls())
        remaining = list(checkpoints)
        for offered, request in enumerate(requests, start=1):
            controller.request(
                request.source, request.destination, request.spec
            )
            if remaining and offered == remaining[0]:
                remaining.pop(0)
                bounds = state.channel_delay_bounds()
                for channel_id in sorted(bounds):
                    bound = bounds[channel_id]
                    channel = state.channels[channel_id]
                    rows.append(
                        BoundRow(
                            scheme=scheme_name,
                            checkpoint=offered,
                            channel_id=channel_id,
                            source=channel.source,
                            destination=channel.destination,
                            hops=bound.hops,
                            bound_slots=bound.bound_slots,
                            bound_ns=path_bound_ns(
                                bound,
                                phy.slot_ns,
                                phy.propagation_ns,
                                phy.switch_processing_ns,
                            ),
                            paper_bound_ns=(
                                channel.spec.deadline * phy.slot_ns
                                + phy.t_latency_ns
                            ),
                        )
                    )
    return rows


def render_bounds_csv(rows: Sequence[BoundRow]) -> str:
    """Deterministic CSV text (trailing newline, ``\\n`` separators)."""
    lines = [_CSV_HEADER]
    lines.extend(row.to_csv() for row in rows)
    return "\n".join(lines) + "\n"
