"""EXP-B1: RT guarantees under saturating best-effort traffic.

Section 18.2.1's design point is that "regular non-real-time traffic is
supported at the same time" with RT traffic unharmed: best-effort frames
wait in the FCFS queue and are served only when the deadline-sorted
queue is empty, and the worst they can do to an RT frame is one frame of
non-preemption blocking (absorbed by ``T_latency``).

This experiment runs the validation workload twice -- once clean, once
with every master additionally blasting saturating best-effort traffic
at the slaves -- and reports:

* RT deadline misses in both runs (must be zero in both);
* the worst RT delay inflation caused by the background load (bounded
  by ``T_latency``'s blocking allowance);
* best-effort goodput, which should soak up close to the residual link
  bandwidth left by the RT reservation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import ChannelSpec
from ..core.partitioning import AsymmetricDPS
from ..errors import ConfigurationError
from ..network.topology import build_star
from ..sim.rng import RngRegistry
from ..traffic.besteffort import BestEffortInjector
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler

__all__ = [
    "CoexistenceReport",
    "BeLoadPoint",
    "run_coexistence",
    "be_latency_vs_rt_load",
]


@dataclass(frozen=True, slots=True)
class CoexistenceReport:
    """Paired clean / loaded observations."""

    channels_admitted: int
    clean_misses: int
    loaded_misses: int
    clean_worst_delay_ns: int
    loaded_worst_delay_ns: int
    be_frames_delivered: int
    be_goodput_bps: float
    link_rate_bps: int
    n_injectors: int
    rt_reserved_fraction: float
    simulated_ns: int

    @property
    def rt_unharmed(self) -> bool:
        """Zero misses with and without background pressure."""
        return self.clean_misses == 0 and self.loaded_misses == 0

    @property
    def be_goodput_fraction(self) -> float:
        """Best-effort goodput as a fraction of the injecting uplinks' rate.

        Each saturating master can at most fill its own uplink, so the
        aggregate BE ceiling is ``n_injectors x link rate`` minus the RT
        reservation and per-frame overheads.
        """
        return self.be_goodput_bps / (self.link_rate_bps * self.n_injectors)

    def summary(self) -> str:
        return (
            f"RT {'unharmed' if self.rt_unharmed else 'HARMED'}: "
            f"misses clean={self.clean_misses} loaded={self.loaded_misses}; "
            f"worst delay {self.clean_worst_delay_ns} -> "
            f"{self.loaded_worst_delay_ns} ns; BE goodput "
            f"{self.be_goodput_fraction:.1%} of link rate "
            f"(RT reserves {self.rt_reserved_fraction:.1%})"
        )


def _run_once(
    with_besteffort: bool,
    n_masters: int,
    n_slaves: int,
    n_requests: int,
    messages: int,
    seed: int,
):
    masters, slaves = master_slave_names(n_masters, n_slaves)
    rng = RngRegistry(seed).stream("coexist-requests")
    sampler = FixedSpecSampler(ChannelSpec(period=100, capacity=3, deadline=40))
    requests = master_slave_requests(masters, slaves, n_requests, sampler, rng)
    net = build_star(masters + slaves, dps=AsymmetricDPS())
    for request in requests:
        net.establish_analytically(
            request.source, request.destination, request.spec
        )
    injectors = []
    if with_besteffort:
        for master in masters:
            injectors.append(
                BestEffortInjector(
                    sim=net.sim,
                    node=net.nodes[master],
                    destinations=slaves,
                    mode="saturate",
                )
            )
            injectors[-1].start()
    net.start_all_sources(stop_after_messages=messages)
    start = net.sim.now
    horizon = start + messages * 100 * net.phy.slot_ns + 100 * net.phy.slot_ns
    net.sim.run(until=horizon)
    for injector in injectors:
        injector.stop()
    net.sim.run(until=horizon + 10 * net.phy.slot_ns)
    return net, net.sim.now - start


def run_coexistence(
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 8,
    seed: int = 77,
) -> CoexistenceReport:
    """Run the paired clean/loaded coexistence experiment."""
    if messages <= 0:
        raise ConfigurationError(f"messages must be positive, got {messages}")
    clean_net, _ = _run_once(
        False, n_masters, n_slaves, n_requests, messages, seed
    )
    loaded_net, elapsed = _run_once(
        True, n_masters, n_slaves, n_requests, messages, seed
    )
    # The admitted sets are identical (same seed, same admission path).
    reserved = sum(
        grant.spec.capacity / grant.spec.period for grant in loaded_net.grants
    ) / max(1, n_masters)
    return CoexistenceReport(
        channels_admitted=len(loaded_net.grants),
        clean_misses=clean_net.metrics.total_deadline_misses,
        loaded_misses=loaded_net.metrics.total_deadline_misses,
        clean_worst_delay_ns=clean_net.metrics.worst_rt_delay_ns,
        loaded_worst_delay_ns=loaded_net.metrics.worst_rt_delay_ns,
        be_frames_delivered=loaded_net.metrics.be_frames_delivered,
        be_goodput_bps=loaded_net.metrics.be_goodput_bps(elapsed),
        link_rate_bps=loaded_net.phy.timebase.bits_per_second,
        n_injectors=n_masters,
        rt_reserved_fraction=reserved,
        simulated_ns=elapsed,
    )


@dataclass(frozen=True, slots=True)
class BeLoadPoint:
    """EXP-B2: best-effort service quality at one RT load level."""

    rt_channels: int
    rt_reserved_fraction: float
    rt_misses: int
    be_goodput_bps: float
    be_mean_delay_ns: float


def be_latency_vs_rt_load(
    rt_channel_counts: tuple[int, ...] = (0, 12, 24, 36),
    n_masters: int = 4,
    n_slaves: int = 12,
    messages: int = 6,
    seed: int = 88,
) -> list[BeLoadPoint]:
    """EXP-B2: what RT reservations cost the best-effort traffic.

    One saturating best-effort injector per master runs against a
    growing admitted RT set. Expected shape: best-effort goodput falls
    roughly linearly with the reserved utilization, its queueing delay
    rises, and RT misses stay at zero throughout -- the strict-priority
    design gives RT its guarantee and best-effort *all* of the rest,
    no more, no less.
    """
    points = []
    for count in rt_channel_counts:
        masters, slaves = master_slave_names(n_masters, n_slaves)
        net = build_star(masters + slaves, dps=AsymmetricDPS())
        rng = RngRegistry(seed).stream("be-load-requests")
        sampler = FixedSpecSampler(
            ChannelSpec(period=100, capacity=3, deadline=40)
        )
        requests = master_slave_requests(
            masters, slaves, count, sampler, rng
        )
        for request in requests:
            net.establish_analytically(
                request.source, request.destination, request.spec
            )
        injectors = []
        for master in masters:
            injector = BestEffortInjector(
                sim=net.sim, node=net.nodes[master], destinations=slaves
            )
            injector.start()
            injectors.append(injector)
        net.start_all_sources(stop_after_messages=messages)
        start = net.sim.now
        horizon = start + (messages + 1) * 100 * net.phy.slot_ns
        net.sim.run(until=horizon)
        for injector in injectors:
            injector.stop()
        net.sim.run(until=horizon + 5 * net.phy.slot_ns)
        elapsed = net.sim.now - start
        reserved = sum(
            grant.spec.capacity / grant.spec.period
            for grant in net.grants
        ) / n_masters
        points.append(
            BeLoadPoint(
                rt_channels=len(net.grants),
                rt_reserved_fraction=reserved,
                rt_misses=net.metrics.total_deadline_misses,
                be_goodput_bps=net.metrics.be_goodput_bps(elapsed),
                be_mean_delay_ns=net.metrics.be_mean_delay_ns,
            )
        )
    return points
