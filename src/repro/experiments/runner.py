"""Deterministic parallel sweep runner.

Every acceptance-curve experiment is a grid of independent work units:
one (trial, scheme) pair is a pure function of ``(root seed, trial
index)`` -- the request sequence comes from
``RngRegistry(seed).fork(trial)`` and the admission controller starts
empty. That makes the sweep embarrassingly parallel *without* giving up
reproducibility: this module fans the units across a ``multiprocessing``
pool and reassembles results in work-unit order, so the
:class:`~repro.experiments.base.AcceptanceCurve` (and, when telemetry is
attached, the merged metrics snapshot and trace) is identical at any
worker count.

Determinism contract
--------------------
* Seeds: each unit re-derives its RNG stream from ``(seed, trial)``
  exactly as the serial loop does -- no worker-local entropy.
* Order: results are collected with an order-preserving ``Pool.map``
  and folded trial-major / scheme-inner, the serial execution order.
* Telemetry: each worker runs with its *own*
  :class:`~repro.obs.Telemetry`; the parent absorbs the resulting
  :class:`~repro.obs.TelemetryShard` per unit, in unit order. Counter
  totals, cache-stat gauges, histogram buckets and the trace-record
  sequence therefore match the serial bundle.

Processes are started with the ``fork`` method so work units (closures
over the experiment's request factory) reach the children by
inheritance rather than pickling; on platforms without ``fork`` the
runner silently degrades to the in-process serial loop, which is always
a correct (just slower) execution of the same units.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Mapping, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["resolve_workers", "parallel_map", "sweep_counts"]

T = TypeVar("T")
R = TypeVar("R")

#: The active (fn, items) job, published module-globally so forked pool
#: workers inherit it at fork time; only small indices cross the pipe.
_ACTIVE_JOB: tuple[Callable, list] | None = None


def _run_indexed(index: int):
    fn, items = _ACTIVE_JOB
    return fn(items[index])


def resolve_workers(workers: int) -> int:
    """Normalize a ``--workers`` value to a process count.

    1 means the serial in-process path, N > 1 means N worker processes,
    and 0 means one worker per CPU this process may run on.
    """
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (0 = all CPUs), got {workers}"
        )
    if workers == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without affinity masks
            return os.cpu_count() or 1
    return workers


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], workers: int
) -> list[R]:
    """Order-preserving map over a fork pool (serial when it must be).

    Falls back to the plain in-process loop when the effective worker
    count is 1, the item list is trivial, the platform cannot fork, or
    a parallel map is already running in this process (work units that
    themselves sweep -- e.g. an ablation point calling a parallel
    acceptance curve -- run their inner sweep serially instead of
    forking from a forked worker). Results always come back in item
    order; a work-unit exception propagates to the caller.
    """
    items = list(items)
    count = min(resolve_workers(workers), len(items))
    global _ACTIVE_JOB
    if (
        count <= 1
        or _ACTIVE_JOB is not None
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return [fn(item) for item in items]
    _ACTIVE_JOB = (fn, items)
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=count) as pool:
            return pool.map(_run_indexed, range(len(items)), chunksize=1)
    finally:
        _ACTIVE_JOB = None


def sweep_counts(
    *,
    node_names: Sequence[str],
    request_factory,
    schemes: Mapping[str, Callable],
    checkpoints: Sequence[int],
    trials: int,
    seed: int,
    telemetry=None,
    workers: int = 1,
) -> dict[str, list[list[int]]]:
    """Run an acceptance sweep's (trial, scheme) grid; collect counts.

    The engine behind :func:`~repro.experiments.base.acceptance_curve`:
    returns ``{scheme: [per-trial checkpoint-count lists]}`` with trials
    in index order. ``checkpoints`` must be sorted and deduplicated
    (the caller validates). With ``workers`` resolving to 1 this is the
    classic serial loop -- one request sequence per trial, fed to every
    scheme against the caller's telemetry bundle directly; otherwise
    each (trial, scheme) unit regenerates its trial's sequence in a
    worker (same bytes -- see
    :func:`~repro.experiments.base.trial_requests`) and ships its
    telemetry back as a shard.
    """
    from .base import _ANALYTIC_TICK_NS, TraceLane, run_requests, trial_requests

    scheme_names = list(schemes)
    max_count = checkpoints[-1] if checkpoints else 0
    #: one run's synthetic trace span; lanes are spaced this far apart
    span_ns = (max_count + 1) * _ANALYTIC_TICK_NS

    def lane_for(trial: int, scheme_index: int) -> TraceLane:
        run_index = trial * len(scheme_names) + scheme_index
        return TraceLane(
            trial=trial,
            scheme=scheme_names[scheme_index],
            offset_ns=run_index * span_ns,
        )

    per_scheme: dict[str, list[list[int]]] = {
        name: [] for name in scheme_names
    }
    effective = min(resolve_workers(workers), trials * len(scheme_names))
    if effective <= 1:
        for trial in range(trials):
            requests = trial_requests(
                request_factory, seed, trial, max_count
            )
            for index, name in enumerate(scheme_names):
                per_scheme[name].append(
                    run_requests(
                        node_names, requests, schemes[name](), checkpoints,
                        telemetry=telemetry, lane=lane_for(trial, index),
                    )
                )
        return per_scheme

    config = None if telemetry is None else telemetry.config

    def run_unit(unit: tuple[int, int]):
        trial, index = unit
        worker_telemetry = None
        if config is not None:
            from ..obs import Telemetry

            worker_telemetry = Telemetry(config)
        requests = trial_requests(request_factory, seed, trial, max_count)
        counts = run_requests(
            node_names, requests, schemes[scheme_names[index]](),
            checkpoints, telemetry=worker_telemetry,
            lane=lane_for(trial, index),
        )
        shard = (
            None if worker_telemetry is None
            else worker_telemetry.export_shard()
        )
        return counts, shard

    units = [
        (trial, index)
        for trial in range(trials)
        for index in range(len(scheme_names))
    ]
    results = parallel_map(run_unit, units, effective)
    for (trial, index), (counts, shard) in zip(units, results):
        per_scheme[scheme_names[index]].append(counts)
        if telemetry is not None and shard is not None:
            telemetry.absorb_shard(shard)
    return per_scheme
