"""EXP-R1: behaviour outside the paper's model (fault injection).

The paper's guarantee assumes error-free wires and synchronized
critical-instant analysis. Two robustness questions a deployer asks:

1. **Random phases** -- real stations are not released synchronously.
   The critical instant is the provable worst case, so random phases
   must also be miss-free (and typically show *lower* worst-case
   delays). :func:`run_phase_robustness` checks this.
2. **Frame loss** -- with corrupted frames the guarantee degrades from
   "every message within the bound" to "every *delivered* frame within
   the bound"; messages lose fragments but never arrive late.
   :func:`run_loss_robustness` injects Bernoulli loss on every wire and
   verifies exactly that degradation: completeness suffers in
   proportion to the loss rate, timeliness does not.

Both are extensions (no paper counterpart) and are labelled as such in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.partitioning import AsymmetricDPS
from ..errors import ConfigurationError
from ..network.topology import build_star
from ..sim.rng import RngRegistry
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler

__all__ = [
    "PhaseRobustnessReport",
    "LossRobustnessReport",
    "run_phase_robustness",
    "run_loss_robustness",
]


@dataclass(frozen=True, slots=True)
class PhaseRobustnessReport:
    """Critical-instant vs random-phase comparison."""

    channels_admitted: int
    synchronous_misses: int
    random_misses: int
    synchronous_worst_delay_ns: int
    random_worst_delay_ns: int

    @property
    def holds(self) -> bool:
        return self.synchronous_misses == 0 and self.random_misses == 0

    @property
    def critical_instant_is_worst(self) -> bool:
        """Random phases never exceed the synchronous worst case."""
        return self.random_worst_delay_ns <= self.synchronous_worst_delay_ns


@dataclass(frozen=True, slots=True)
class LossRobustnessReport:
    """Timeliness vs completeness under Bernoulli frame loss."""

    loss_rate: float
    frames_sent: int
    frames_delivered: int
    frames_lost_on_wires: int
    messages_expected: int
    messages_completed: int
    deadline_misses: int

    @property
    def delivery_ratio(self) -> float:
        if self.frames_sent == 0:
            return 1.0
        return self.frames_delivered / self.frames_sent

    @property
    def timeliness_preserved(self) -> bool:
        """Every frame that did arrive met its deadline bound."""
        return self.deadline_misses == 0


def _admitted_network(n_masters, n_slaves, n_requests, seed, **net_kwargs):
    masters, slaves = master_slave_names(n_masters, n_slaves)
    net = build_star(masters + slaves, dps=AsymmetricDPS(), **net_kwargs)
    rng = RngRegistry(seed).stream("robustness-requests")
    requests = master_slave_requests(
        masters, slaves, n_requests, FixedSpecSampler.paper_default(), rng
    )
    for request in requests:
        net.establish_analytically(
            request.source, request.destination, request.spec
        )
    return net


def run_phase_robustness(
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 6,
    seed: int = 808,
) -> PhaseRobustnessReport:
    """Run the same admitted set synchronously and with random phases."""
    if messages <= 0:
        raise ConfigurationError(f"messages must be positive: {messages}")
    sync_net = _admitted_network(n_masters, n_slaves, n_requests, seed)
    sync_net.start_all_sources(stop_after_messages=messages)
    sync_net.sim.run()

    rand_net = _admitted_network(n_masters, n_slaves, n_requests, seed)
    phase_rng = RngRegistry(seed).stream("phases")
    rand_net.start_all_sources(
        stop_after_messages=messages, random_phases_rng=phase_rng
    )
    rand_net.sim.run()

    return PhaseRobustnessReport(
        channels_admitted=len(sync_net.grants),
        synchronous_misses=sync_net.metrics.total_deadline_misses,
        random_misses=rand_net.metrics.total_deadline_misses,
        synchronous_worst_delay_ns=sync_net.metrics.worst_rt_delay_ns,
        random_worst_delay_ns=rand_net.metrics.worst_rt_delay_ns,
    )


def run_loss_robustness(
    loss_rate: float = 0.01,
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 10,
    seed: int = 909,
) -> LossRobustnessReport:
    """Inject Bernoulli frame loss and separate timeliness from loss."""
    if not (0.0 <= loss_rate < 1.0):
        raise ConfigurationError(f"loss_rate must be in [0,1): {loss_rate}")
    net = _admitted_network(
        n_masters,
        n_slaves,
        n_requests,
        seed,
        loss_rate=loss_rate,
        loss_seed=seed,
    )
    net.start_all_sources(stop_after_messages=messages)
    net.sim.run()
    frames_sent = sum(
        grant.spec.capacity * messages for grant in net.grants
    )
    lost = sum(
        node.uplink.link.frames_lost
        for node in net.nodes.values()
        if node.uplink is not None
    ) + sum(
        port.link.frames_lost for port in net.switch.ports.values()
    )
    return LossRobustnessReport(
        loss_rate=loss_rate,
        frames_sent=frames_sent,
        frames_delivered=net.metrics.total_rt_frames,
        frames_lost_on_wires=lost,
        messages_expected=len(net.grants) * messages,
        messages_completed=net.metrics.total_rt_messages,
        deadline_misses=net.metrics.total_deadline_misses,
    )
