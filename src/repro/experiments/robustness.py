"""EXP-R1/EXP-R2: behaviour outside the paper's model (fault injection).

The paper's guarantee assumes error-free wires and synchronized
critical-instant analysis. Three robustness questions a deployer asks:

1. **Random phases** -- real stations are not released synchronously.
   The critical instant is the provable worst case, so random phases
   must also be miss-free (and typically show *lower* worst-case
   delays). :func:`run_phase_robustness` checks this.
2. **Frame loss** -- with corrupted frames the guarantee degrades from
   "every message within the bound" to "every *delivered* frame within
   the bound"; messages lose fragments but never arrive late.
   :func:`run_loss_robustness` injects Bernoulli loss on every wire and
   verifies exactly that degradation: completeness suffers in
   proportion to the loss rate, timeliness does not.
3. **Signalling loss** (EXP-R2) -- the handshake of Figures 18.3/18.4
   is stateful, so losing a control frame is worse than losing a data
   frame: a naive implementation strands reservations at the switch or
   crashes on duplicates. :func:`run_signal_loss_robustness` drops a
   hard fraction of *every* signalling class and checks the liveness
   contract of the retry/lease/idempotence machinery: every requested
   channel is eventually established or cleanly rejected, and when the
   dust settles the switch's admission state matches the surviving
   grants exactly -- zero leaked reservations.

All are extensions (no paper counterpart) and are labelled as such in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.partitioning import AsymmetricDPS
from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..network.topology import build_star
from ..protocol.signaling import ConnectionRequestState, RetryPolicy
from ..sim.rng import RngRegistry
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler

__all__ = [
    "PhaseRobustnessReport",
    "LossRobustnessReport",
    "SignalLossReport",
    "SIGNAL_RETRY_POLICY",
    "run_phase_robustness",
    "run_loss_robustness",
    "run_signal_loss_robustness",
]


@dataclass(frozen=True, slots=True)
class PhaseRobustnessReport:
    """Critical-instant vs random-phase comparison."""

    channels_admitted: int
    synchronous_misses: int
    random_misses: int
    synchronous_worst_delay_ns: int
    random_worst_delay_ns: int

    @property
    def holds(self) -> bool:
        return self.synchronous_misses == 0 and self.random_misses == 0

    @property
    def critical_instant_is_worst(self) -> bool:
        """Random phases never exceed the synchronous worst case."""
        return self.random_worst_delay_ns <= self.synchronous_worst_delay_ns


@dataclass(frozen=True, slots=True)
class LossRobustnessReport:
    """Timeliness vs completeness under Bernoulli frame loss."""

    loss_rate: float
    frames_sent: int
    frames_delivered: int
    frames_lost_on_wires: int
    messages_expected: int
    messages_completed: int
    deadline_misses: int

    @property
    def delivery_ratio(self) -> float:
        if self.frames_sent == 0:
            return 1.0
        return self.frames_delivered / self.frames_sent

    @property
    def timeliness_preserved(self) -> bool:
        """Every frame that did arrive met its deadline bound."""
        return self.deadline_misses == 0


@dataclass(frozen=True, slots=True)
class SignalLossReport:
    """EXP-R2: the signalling plane under targeted control-frame loss.

    The liveness contract under loss (:attr:`ok`) is: every request
    resolves (granted or rejected, never abandoned), and after the
    teardown phase the switch holds *exactly* the reservations of the
    surviving grants -- no stranded pending offers, no leaked admission
    capacity, schedules consistent with the active channel set.
    """

    loss_rate: float
    seed: int
    requests: int
    granted: int
    rejected: int
    timed_out: int
    torn_down: int
    #: signalling frames the fault plan destroyed on the wires.
    signalling_drops: int
    #: RequestFrame retransmissions across all source nodes.
    retries: int
    #: duplicate/stale signalling frames absorbed (nodes + switch).
    stale_absorbed: int
    #: retransmitted requests the switch answered without re-admission.
    duplicate_requests: int
    #: reservations the switch reclaimed on lease expiry.
    lease_reclaims: int
    #: offers still awaiting a destination response after the run drained.
    pending_offers: int
    #: symmetric difference between installed reservations and the
    #: surviving grants (must be zero).
    leaked_reservations: int
    #: every per-link EDF task belongs to an active channel.
    schedules_consistent: bool

    @property
    def resolved(self) -> int:
        return self.granted + self.rejected

    @property
    def ok(self) -> bool:
        return (
            self.timed_out == 0
            and self.pending_offers == 0
            and self.leaked_reservations == 0
            and self.schedules_consistent
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else "LEAK/LIVENESS FAILURE"
        return (
            f"EXP-R2 signalling loss at {self.loss_rate:.0%} (seed "
            f"{self.seed}): {self.resolved}/{self.requests} requests "
            f"resolved ({self.granted} granted, {self.rejected} rejected, "
            f"{self.timed_out} timed out) despite {self.signalling_drops} "
            f"control frames lost; {self.retries} retransmissions, "
            f"{self.duplicate_requests} duplicates re-answered, "
            f"{self.stale_absorbed} stale frames absorbed, "
            f"{self.lease_reclaims} leases reclaimed; "
            f"{self.torn_down} channels torn down -> "
            f"{self.pending_offers} pending offers, "
            f"{self.leaked_reservations} leaked reservations "
            f"[{verdict}]"
        )


#: EXP-R2's retransmission schedule (module-level so tests and the CLI
#: agree on the same deterministic run): first retry after 3 ms, x1.5
#: backoff with +/-25% jitter, capped at 40 ms, up to 12 retransmissions.
#: Total horizon ~0.3 s of sim time -- comfortably inside the switch's
#: 1 s re-answer cache, so every retransmission of an already-decided
#: request is answered from cache instead of re-running admission.
SIGNAL_RETRY_POLICY = RetryPolicy(
    timeout_ns=3_000_000,
    max_retries=12,
    backoff=1.5,
    jitter=0.25,
    max_timeout_ns=40_000_000,
)


def _admitted_network(n_masters, n_slaves, n_requests, seed, **net_kwargs):
    masters, slaves = master_slave_names(n_masters, n_slaves)
    net = build_star(masters + slaves, dps=AsymmetricDPS(), **net_kwargs)
    rng = RngRegistry(seed).stream("robustness-requests")
    requests = master_slave_requests(
        masters, slaves, n_requests, FixedSpecSampler.paper_default(), rng
    )
    for request in requests:
        net.establish_analytically(
            request.source, request.destination, request.spec
        )
    return net


def run_phase_robustness(
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 6,
    seed: int = 808,
) -> PhaseRobustnessReport:
    """Run the same admitted set synchronously and with random phases."""
    if messages <= 0:
        raise ConfigurationError(f"messages must be positive: {messages}")
    sync_net = _admitted_network(n_masters, n_slaves, n_requests, seed)
    sync_net.start_all_sources(stop_after_messages=messages)
    sync_net.sim.run()

    rand_net = _admitted_network(n_masters, n_slaves, n_requests, seed)
    phase_rng = RngRegistry(seed).stream("phases")
    rand_net.start_all_sources(
        stop_after_messages=messages, random_phases_rng=phase_rng
    )
    rand_net.sim.run()

    return PhaseRobustnessReport(
        channels_admitted=len(sync_net.grants),
        synchronous_misses=sync_net.metrics.total_deadline_misses,
        random_misses=rand_net.metrics.total_deadline_misses,
        synchronous_worst_delay_ns=sync_net.metrics.worst_rt_delay_ns,
        random_worst_delay_ns=rand_net.metrics.worst_rt_delay_ns,
    )


def run_loss_robustness(
    loss_rate: float = 0.01,
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 10,
    seed: int = 909,
) -> LossRobustnessReport:
    """Inject Bernoulli frame loss and separate timeliness from loss."""
    if not (0.0 <= loss_rate < 1.0):
        raise ConfigurationError(f"loss_rate must be in [0,1): {loss_rate}")
    net = _admitted_network(
        n_masters,
        n_slaves,
        n_requests,
        seed,
        loss_rate=loss_rate,
        loss_seed=seed,
    )
    net.start_all_sources(stop_after_messages=messages)
    net.sim.run()
    frames_sent = sum(
        grant.spec.capacity * messages for grant in net.grants
    )
    lost = sum(
        node.uplink.link.frames_lost
        for node in net.nodes.values()
        if node.uplink is not None
    ) + sum(
        port.link.frames_lost for port in net.switch.ports.values()
    )
    return LossRobustnessReport(
        loss_rate=loss_rate,
        frames_sent=frames_sent,
        frames_delivered=net.metrics.total_rt_frames,
        frames_lost_on_wires=lost,
        messages_expected=len(net.grants) * messages,
        messages_completed=net.metrics.total_rt_messages,
        deadline_misses=net.metrics.total_deadline_misses,
    )


def run_signal_loss_robustness(
    loss_rate: float = 0.2,
    n_masters: int = 3,
    n_slaves: int = 9,
    n_requests: int = 40,
    teardown_fraction: float = 0.5,
    seed: int = 808,
    retry: RetryPolicy | None = None,
    lease_ns: int = 25_000_000,
    telemetry=None,
) -> SignalLossReport:
    """EXP-R2: run the full wire handshake under signalling-frame loss.

    Every one of the five control-plane classes (request, offer,
    destination response, final response, teardown) is dropped with
    probability ``loss_rate`` by a deterministic :class:`FaultPlan`;
    RT data is untouched, isolating the signalling machinery. Requests
    are issued sequentially over the simulated wires with
    :data:`SIGNAL_RETRY_POLICY` retransmission, then
    ``teardown_fraction`` of the granted channels is released (each
    TeardownFrame sent 4 times -- loss must not strand the release).

    The report's :attr:`~SignalLossReport.ok` asserts the liveness and
    leak-freedom contract; see the class docstring.
    """
    if not (0.0 <= loss_rate < 1.0):
        raise ConfigurationError(f"loss_rate must be in [0,1): {loss_rate}")
    if not (0.0 <= teardown_fraction <= 1.0):
        raise ConfigurationError(
            f"teardown_fraction must be in [0,1]: {teardown_fraction}"
        )
    retry = retry or SIGNAL_RETRY_POLICY
    retry_rng = RngRegistry(seed).stream("signal-retry-jitter")
    plan = FaultPlan.signalling_loss(loss_rate, seed=seed)
    masters, slaves = master_slave_names(n_masters, n_slaves)
    net = build_star(
        masters + slaves,
        dps=AsymmetricDPS(),
        fault_plan=plan,
        signal_lease_ns=lease_ns,
        telemetry=telemetry,
    )
    for node in net.nodes.values():
        node.teardown_repeats = 4

    request_rng = RngRegistry(seed).stream("robustness-requests")
    outcomes: list[tuple[object, object]] = []
    for request in master_slave_requests(
        masters, slaves, n_requests,
        FixedSpecSampler.paper_default(), request_rng,
    ):
        destination = net.node(request.destination)
        net.node(request.source).request_channel(
            destination_mac=destination.mac,
            destination_ip=destination.ip,
            destination_name=request.destination,
            spec=request.spec,
            on_complete=lambda record, grant: outcomes.append(
                (record, grant)
            ),
            retry=retry,
            retry_rng=retry_rng,
        )
        net.sim.run()

    grants = [
        grant
        for record, grant in outcomes
        if record.state is ConnectionRequestState.ACCEPTED
        and grant is not None
    ]
    rejected = sum(
        1 for record, _ in outcomes
        if record.state is ConnectionRequestState.REJECTED
    )
    timed_out = sum(
        1 for record, _ in outcomes
        if record.state is ConnectionRequestState.TIMED_OUT
    )

    torn = [
        grant.channel_id
        for grant in grants[: round(len(grants) * teardown_fraction)]
    ]
    for grant in grants[: len(torn)]:
        net.node(grant.source).teardown_channel(grant.channel_id)
    net.sim.run()

    expected_active = {g.channel_id for g in grants} - set(torn)
    installed = set(net.admission.state.channels.keys())
    leaked = len(installed ^ expected_active)
    state = net.admission.state
    schedules_consistent = all(
        task.channel_id in expected_active
        for link in state.occupied_links()
        for task in state.tasks_on(link)
    )

    manager = net.switch.manager
    stale = manager.stale_frames + sum(
        node.signal_stale_frames for node in net.nodes.values()
    )
    return SignalLossReport(
        loss_rate=loss_rate,
        seed=seed,
        requests=len(outcomes),
        granted=len(grants),
        rejected=rejected,
        timed_out=timed_out,
        torn_down=len(torn),
        signalling_drops=plan.signalling_drops(),
        retries=sum(n.signal_retries for n in net.nodes.values()),
        stale_absorbed=stale,
        duplicate_requests=manager.duplicate_requests,
        lease_reclaims=manager.lease_reclaims,
        pending_offers=manager.pending_offers,
        leaked_reservations=leaked,
        schedules_consistent=schedules_consistent,
    )
