"""EXP-V1: simulate an admitted channel set and verify Eq. 18.1.

Admission control *claims* that every message on an admitted channel is
delivered within ``d_i + T_latency``. This experiment closes the loop:

1. build the full simulated network (star, EDF/FCFS ports, wires);
2. establish a randomly generated admitted channel set through the real
   signalling handshake;
3. release all periodic sources at the same instant -- the critical
   instant of the feasibility analysis -- and run several hyperperiods;
4. assert **zero** end-to-end deadline misses and **zero** per-link
   deadline misses, and report the worst observed delay against the
   guarantee bound.

A failure here would mean the feasibility analysis admitted a channel
set the EDF scheduler cannot actually serve -- the strongest internal
consistency check this reproduction has.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.partitioning import DeadlinePartitioningScheme, AsymmetricDPS
from ..errors import ConfigurationError
from ..network.topology import StarNetwork, build_star
from ..sim.rng import RngRegistry
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler, SpecSampler

__all__ = [
    "ValidationReport",
    "ChannelDecomposition",
    "run_validation",
    "run_validation_sweep",
    "run_decomposition",
]


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Outcome of one guarantee-validation run."""

    channels_requested: int
    channels_admitted: int
    messages_completed: int
    frames_delivered: int
    end_to_end_misses: int
    per_link_misses: int
    worst_delay_ns: int
    guarantee_bound_ns: int
    simulated_ns: int

    @property
    def holds(self) -> bool:
        """True when the paper's guarantee held for every frame."""
        return (
            self.end_to_end_misses == 0
            and self.per_link_misses == 0
            and self.worst_delay_ns <= self.guarantee_bound_ns
        )

    @property
    def worst_delay_fraction(self) -> float:
        """Worst delay as a fraction of the guaranteed bound."""
        if self.guarantee_bound_ns == 0:
            return 0.0
        return self.worst_delay_ns / self.guarantee_bound_ns

    def summary(self) -> str:
        status = "HOLDS" if self.holds else "VIOLATED"
        return (
            f"guarantee {status}: {self.channels_admitted}/"
            f"{self.channels_requested} channels admitted, "
            f"{self.messages_completed} messages, "
            f"{self.end_to_end_misses} e2e misses, "
            f"{self.per_link_misses} link misses, worst delay "
            f"{self.worst_delay_ns} ns of {self.guarantee_bound_ns} ns "
            f"budget ({self.worst_delay_fraction:.1%})"
        )


def run_validation(
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 60,
    hyperperiods: int = 3,
    dps: DeadlinePartitioningScheme | None = None,
    sampler: SpecSampler | None = None,
    seed: int = 55,
    use_wire_handshake: bool = True,
    telemetry=None,
) -> ValidationReport:
    """Admit a workload, simulate it, and check every delivered frame.

    Parameters
    ----------
    n_masters, n_slaves, n_requests:
        Workload shape (master-slave, like Figure 18.5 but smaller by
        default so the test suite stays fast).
    hyperperiods:
        How many hyperperiods of the admitted set to simulate. The first
        one contains the critical instant; extra ones catch phase
        effects of the two-hop pipeline.
    dps:
        Partitioning scheme under test (default ADPS, the harder case:
        asymmetric partitions stress the per-link accounting more).
    sampler:
        Channel parameter sampler (default: the paper's fixed triple).
    use_wire_handshake:
        Establish channels through the simulated signalling protocol
        (slower, exercises more code) or analytically.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` bundle; the network is
        fully instrumented (see :func:`~repro.network.topology.build_star`).
    """
    if hyperperiods <= 0:
        raise ConfigurationError(
            f"hyperperiods must be positive, got {hyperperiods}"
        )
    masters, slaves = master_slave_names(n_masters, n_slaves)
    sampler = sampler or FixedSpecSampler.paper_default()
    rng = RngRegistry(seed).stream("validation-requests")
    requests = master_slave_requests(
        masters, slaves, n_requests, sampler, rng
    )
    net: StarNetwork = build_star(
        masters + slaves, dps=dps or AsymmetricDPS(), telemetry=telemetry
    )

    for request in requests:
        if use_wire_handshake:
            net.establish(request.source, request.destination, request.spec)
        else:
            net.establish_analytically(
                request.source, request.destination, request.spec
            )

    # Longest period among admitted channels bounds one "hyperperiod"
    # (identical periods in the default workload; mixed samplers get an
    # approximation via the max period, enough messages either way).
    if net.grants:
        max_period = max(g.spec.period for g in net.grants)
    else:
        max_period = 1
    messages_per_source = hyperperiods * max(
        1, max_period // min((g.spec.period for g in net.grants), default=1)
    )
    net.start_all_sources(stop_after_messages=messages_per_source)
    start_ns = net.sim.now
    net.sim.run()
    simulated_ns = net.sim.now - start_ns

    per_link_misses = sum(
        node.uplink.stats.rt_link_deadline_misses
        for node in net.nodes.values()
        if node.uplink is not None
    ) + sum(
        port.stats.rt_link_deadline_misses
        for port in net.switch.ports.values()
    )
    max_deadline_slots = max(
        (g.spec.deadline for g in net.grants), default=0
    )
    bound = max_deadline_slots * net.phy.slot_ns + net.phy.t_latency_ns
    return ValidationReport(
        channels_requested=n_requests,
        channels_admitted=len(net.grants),
        messages_completed=net.metrics.total_rt_messages,
        frames_delivered=net.metrics.total_rt_frames,
        end_to_end_misses=net.metrics.total_deadline_misses,
        per_link_misses=per_link_misses,
        worst_delay_ns=net.metrics.worst_rt_delay_ns,
        guarantee_bound_ns=bound,
        simulated_ns=simulated_ns,
    )


def run_validation_sweep(
    trials: int,
    workers: int = 1,
    *,
    seed: int = 55,
    **kwargs,
) -> list[ValidationReport]:
    """Run :func:`run_validation` over ``trials`` seeds, optionally in
    parallel.

    Trial 0 uses ``seed`` itself (so a one-trial sweep is exactly the
    classic single run); trial ``i > 0`` derives its seed as
    ``RngRegistry(seed).fork(i).seed``, the same trial fan-out every
    acceptance sweep uses. Each trial builds a complete simulated
    network, so this is where extra workers pay off most; reports come
    back in trial order and are identical at any worker count.

    ``kwargs`` are forwarded to :func:`run_validation` (except
    ``telemetry`` -- per-worker simulator bundles cannot be merged into
    one timeline, so a sweep refuses it).
    """
    from .runner import parallel_map

    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if kwargs.get("telemetry") is not None:
        raise ConfigurationError(
            "run_validation_sweep cannot merge simulator telemetry; "
            "attach a bundle to a single run_validation instead"
        )
    kwargs.pop("telemetry", None)
    seeds = [
        seed if trial == 0 else RngRegistry(seed).fork(trial).seed
        for trial in range(trials)
    ]

    def run_trial(trial_seed: int) -> ValidationReport:
        return run_validation(seed=trial_seed, **kwargs)

    return parallel_map(run_trial, seeds, workers)


@dataclass(frozen=True, slots=True)
class ChannelDecomposition:
    """EXP-V2: per-channel budget vs observed, split by hop."""

    channel_id: int
    uplink_budget_slots: int
    uplink_worst_slots: float
    total_budget_slots: int
    total_worst_slots: float

    @property
    def uplink_within_budget(self) -> bool:
        """Worst first-hop response within d_iu plus ~1 slot allowance."""
        return self.uplink_worst_slots <= self.uplink_budget_slots + 1.1

    @property
    def total_within_budget(self) -> bool:
        return self.total_worst_slots <= self.total_budget_slots + 2.2


def run_decomposition(
    n_masters: int = 4,
    n_slaves: int = 12,
    n_requests: int = 40,
    messages: int = 4,
    dps: DeadlinePartitioningScheme | None = None,
    seed: int = 606,
) -> list[ChannelDecomposition]:
    """EXP-V2: decompose each channel's delay into its per-hop budgets.

    Runs the admitted set at the critical instant and reports, per
    channel, the worst *uplink* response against the DPS-chosen ``d_iu``
    and the worst end-to-end delay against ``d`` -- making the deadline
    partition's meaning empirically visible (ADPS channels on loaded
    uplinks get big ``d_iu`` and genuinely use it).
    """
    masters, slaves = master_slave_names(n_masters, n_slaves)
    sampler = FixedSpecSampler.paper_default()
    rng = RngRegistry(seed).stream("decomposition-requests")
    requests = master_slave_requests(masters, slaves, n_requests, sampler, rng)
    net = build_star(masters + slaves, dps=dps or AsymmetricDPS())
    for request in requests:
        net.establish_analytically(
            request.source, request.destination, request.spec
        )
    net.start_all_sources(stop_after_messages=messages)
    net.sim.run()
    slot = net.phy.slot_ns
    rows = []
    for grant in net.grants:
        stats = net.metrics.channels.get(grant.channel_id)
        worst_total = stats.worst_delay_ns if stats else 0
        worst_up = net.metrics.uplink_worst_response_ns(grant.channel_id)
        rows.append(
            ChannelDecomposition(
                channel_id=grant.channel_id,
                uplink_budget_slots=grant.uplink_deadline_slots,
                uplink_worst_slots=worst_up / slot,
                total_budget_slots=grant.spec.deadline,
                total_worst_slots=worst_total / slot,
            )
        )
    return rows
