"""EXP-P2: admission fast-path timing (cached vs from-scratch).

Times the Figure 18.5 admission sweep -- the reproduction's hot path --
through two controllers fed the identical request sequence: one deciding
through the incremental
:class:`~repro.core.feasibility_cache.FeasibilityCache`, one re-running
the from-scratch :func:`~repro.core.feasibility.is_feasible` per
request. Besides wall-clock, the run cross-checks the full decision
stream (a free differential test: any cached-vs-naive divergence fails
loudly here before it could skew a reported speedup).

This module is deliberately dependency-light (no pytest-benchmark) so
the CLI's ``repro bench-admission`` and CI's ``--smoke`` variant can use
it directly; ``benchmarks/bench_admission.py`` wraps it for calibrated
pytest-benchmark runs.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field

from ..core.admission import AdmissionController, SystemState
from ..core.channel import ChannelSpec
from ..core.partitioning import (
    AsymmetricDPS,
    DeadlinePartitioningScheme,
    SymmetricDPS,
)
from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from ..traffic.patterns import (
    ChannelRequest,
    master_slave_names,
    master_slave_requests,
)
from ..traffic.spec import FixedSpecSampler

__all__ = [
    "AdmissionPerfConfig",
    "AdmissionPerfResult",
    "BatchPerfResult",
    "run_admission_perf",
    "run_batch_perf",
]

_SCHEMES: dict[str, type[DeadlinePartitioningScheme]] = {
    "sdps": SymmetricDPS,
    "adps": AsymmetricDPS,
}


@dataclass(frozen=True, slots=True)
class AdmissionPerfConfig:
    """One timing run's parameters (defaults = Fig. 18.5 at 200 req)."""

    n_masters: int = 10
    n_slaves: int = 50
    spec: ChannelSpec = field(
        default_factory=lambda: ChannelSpec(period=100, capacity=3, deadline=40)
    )
    requests: int = 200
    trials: int = 5
    seed: int = 2004
    scheme: str = "adps"
    #: Timing repetitions per side; the *minimum* elapsed over the
    #: repeats is reported (the standard noise-robust estimator for
    #: deterministic workloads: every disturbance -- GC left-overs,
    #: scheduler preemption, thermal throttling -- only ever adds time).
    repeats: int = 3
    #: When True, an extra *untimed* instrumented pass runs after the
    #: timed loops and the registry snapshot (verdict counters +
    #: feasibility-cache stats) is attached to the result. The timed
    #: loops themselves always run telemetry-free, so enabling this
    #: cannot perturb the reported numbers.
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r} (have {sorted(_SCHEMES)})"
            )
        if self.requests <= 0 or self.trials <= 0 or self.repeats <= 0:
            raise ConfigurationError(
                f"requests, trials and repeats must be positive, got "
                f"{self.requests}/{self.trials}/{self.repeats}"
            )


@dataclass(frozen=True, slots=True)
class AdmissionPerfResult:
    """Timing plus the built-in parity check of one run."""

    config: AdmissionPerfConfig
    naive_seconds: float
    cached_seconds: float
    decisions: int
    accepts: int
    #: True when cached and naive produced the identical decision stream.
    parity: bool
    cache_stats: dict[str, int]
    #: flattened registry snapshot from the untimed instrumented pass
    #: (None unless ``config.collect_metrics``).
    registry_metrics: dict[str, float] | None = None

    @property
    def speedup(self) -> float:
        if self.cached_seconds == 0:
            return float("inf")
        return self.naive_seconds / self.cached_seconds

    def summary(self) -> str:
        lines = [
            "admission fast-path timing "
            f"({self.config.scheme}, {self.config.requests} requests x "
            f"{self.config.trials} trials, seed {self.config.seed})",
            f"  naive  : {self.naive_seconds * 1000:9.1f} ms",
            f"  cached : {self.cached_seconds * 1000:9.1f} ms",
            f"  speedup: {self.speedup:9.2f}x",
            f"  decisions {self.decisions} ({self.accepts} accepted), "
            f"parity {'OK' if self.parity else 'VIOLATED'}",
            f"  cache stats: {self.cache_stats}",
        ]
        if self.registry_metrics is not None:
            lines.append("  registry metrics:")
            for key, value in sorted(self.registry_metrics.items()):
                lines.append(f"    {key} = {value:g}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "scheme": self.config.scheme,
            "requests": self.config.requests,
            "trials": self.config.trials,
            "seed": self.config.seed,
            "naive_seconds": self.naive_seconds,
            "cached_seconds": self.cached_seconds,
            "speedup": self.speedup,
            "decisions": self.decisions,
            "accepts": self.accepts,
            "parity": self.parity,
            "cache_stats": self.cache_stats,
            **(
                {"registry_metrics": self.registry_metrics}
                if self.registry_metrics is not None
                else {}
            ),
        }


def _request_sequences(
    config: AdmissionPerfConfig,
) -> tuple[list[str], list[list[ChannelRequest]]]:
    masters, slaves = master_slave_names(config.n_masters, config.n_slaves)
    sampler = FixedSpecSampler(config.spec)
    sequences = []
    for trial in range(config.trials):
        rng = RngRegistry(config.seed).fork(trial).stream("requests")
        sequences.append(
            master_slave_requests(
                masters, slaves, config.requests, sampler, rng
            )
        )
    return masters + slaves, sequences


def _run_side(
    nodes: list[str],
    sequences: list[list[ChannelRequest]],
    config: AdmissionPerfConfig,
    use_cache: bool,
) -> tuple[float, list[bool], dict[str, int]]:
    """Feed every sequence to fresh controllers; time only admission.

    The whole sweep is repeated ``config.repeats`` times and the
    *minimum* total elapsed is reported (the workload is deterministic,
    so every disturbance only adds time). The collector is paused
    around the timed loops -- standard micro-benchmark hygiene, applied
    identically to both sides so the reported ratio reflects admission
    work, not allocation-triggered GC pauses landing on whichever side
    the heap happened to cross a threshold in.
    """
    best = float("inf")
    decisions: list[bool] = []
    stats: dict[str, int] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(config.repeats):
            repeat_decisions: list[bool] = []
            repeat_stats: dict[str, int] = {}
            elapsed = 0.0
            for requests in sequences:
                controller = AdmissionController(
                    SystemState(nodes=nodes),
                    _SCHEMES[config.scheme](),
                    use_cache=use_cache,
                )
                start = time.perf_counter()
                for request in requests:
                    decision = controller.request(
                        request.source, request.destination, request.spec
                    )
                    repeat_decisions.append(decision.accepted)
                elapsed += time.perf_counter() - start
                if controller.cache is not None:
                    for key, value in (
                        controller.cache.stats.as_dict().items()
                    ):
                        repeat_stats[key] = repeat_stats.get(key, 0) + value
            if elapsed < best:
                best = elapsed
            # Deterministic workload: every repeat produces the same
            # decision stream and counters; keep the last.
            decisions = repeat_decisions
            stats = repeat_stats
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, decisions, stats


def _flatten_snapshot(snapshot: dict) -> dict[str, float]:
    """``{"name{label=value}": value}`` view of a registry snapshot."""
    flat: dict[str, float] = {}
    for name, family in snapshot.items():
        for series in family["series"]:
            value = series.get("value")
            if value is None:
                continue
            labels = series["labels"]
            key = name
            if labels:
                inner = ",".join(f"{k}={v}" for k, v in labels.items())
                key = f"{name}{{{inner}}}"
            flat[key] = value
    return flat


def _instrumented_pass(
    nodes: list[str],
    sequences: list[list[ChannelRequest]],
    config: AdmissionPerfConfig,
) -> dict[str, float]:
    """Replay the cached sweep once with a metrics registry attached."""
    from ..obs import Telemetry, TelemetryConfig

    telemetry = Telemetry(TelemetryConfig(tracing=False))
    for requests in sequences:
        controller = AdmissionController(
            SystemState(nodes=nodes),
            _SCHEMES[config.scheme](),
            use_cache=True,
            metrics=telemetry.registry,
        )
        telemetry.track_cache(controller.cache)
        for request in requests:
            controller.request(
                request.source, request.destination, request.spec
            )
    return _flatten_snapshot(telemetry.snapshot())


@dataclass(frozen=True, slots=True)
class BatchPerfResult:
    """EXP-P7 timing: scalar-cached vs ``admit_many`` on one workload.

    Three measurements over identical request sequences:

    ``scalar_seconds``
        the PR 2 cached path -- a loop of ``request()`` calls against a
        fresh controller per sequence;
    ``batched_seconds``
        one ``admit_many()`` burst per fresh controller (the cold case:
        every distinct candidate is assessed at least once);
    ``storm_seconds``
        one ``admit_many()`` burst against an *already saturated*
        controller (the steady-state request storm the ROADMAP's
        10^6 decisions/sec target is about: links full, every repeat
        answered from an epoch-validated template).

    Parity here compares accepted/rejected streams; the byte-level
    stream equality (reasons, channel IDs, reports, serialized state)
    is enforced by ``repro admission-diff --batch`` and the batch test
    suite.
    """

    config: AdmissionPerfConfig
    scalar_seconds: float
    batched_seconds: float
    storm_seconds: float
    decisions: int
    accepts: int
    batch_parity: bool
    storm_parity: bool
    template_hits: int
    storm_template_hits: int
    cache_stats: dict[str, int]

    @property
    def scalar_rate(self) -> float:
        """Scalar cached decisions/sec (cold controllers)."""
        return self.decisions / self.scalar_seconds

    @property
    def batched_rate(self) -> float:
        """admit_many decisions/sec, cold controllers."""
        return self.decisions / self.batched_seconds

    @property
    def storm_rate(self) -> float:
        """admit_many decisions/sec against saturated controllers."""
        return self.decisions / self.storm_seconds

    @property
    def batch_speedup(self) -> float:
        if self.batched_seconds == 0:
            return float("inf")
        return self.scalar_seconds / self.batched_seconds

    @property
    def storm_speedup(self) -> float:
        if self.storm_seconds == 0:
            return float("inf")
        return self.scalar_seconds / self.storm_seconds

    def summary(self) -> str:
        return "\n".join(
            [
                "batch admission timing "
                f"({self.config.scheme}, {self.config.requests} requests x "
                f"{self.config.trials} trials, seed {self.config.seed})",
                f"  scalar cached : {self.scalar_seconds * 1000:9.1f} ms "
                f"({self.scalar_rate:,.0f} dec/s)",
                f"  admit_many    : {self.batched_seconds * 1000:9.1f} ms "
                f"({self.batched_rate:,.0f} dec/s, "
                f"{self.batch_speedup:.2f}x)",
                f"  storm (sat.)  : {self.storm_seconds * 1000:9.1f} ms "
                f"({self.storm_rate:,.0f} dec/s, "
                f"{self.storm_speedup:.2f}x)",
                f"  decisions {self.decisions} ({self.accepts} accepted), "
                f"template hits {self.template_hits} cold / "
                f"{self.storm_template_hits} storm",
                "  parity "
                f"{'OK' if self.batch_parity and self.storm_parity else 'VIOLATED'}",
                f"  cache stats: {self.cache_stats}",
            ]
        )

    def to_json_dict(self) -> dict:
        return {
            "scheme": self.config.scheme,
            "requests": self.config.requests,
            "trials": self.config.trials,
            "seed": self.config.seed,
            "scalar_seconds": self.scalar_seconds,
            "batched_seconds": self.batched_seconds,
            "storm_seconds": self.storm_seconds,
            "scalar_rate": self.scalar_rate,
            "batched_rate": self.batched_rate,
            "storm_rate": self.storm_rate,
            "batch_speedup": self.batch_speedup,
            "storm_speedup": self.storm_speedup,
            "decisions": self.decisions,
            "accepts": self.accepts,
            "batch_parity": self.batch_parity,
            "storm_parity": self.storm_parity,
            "template_hits": self.template_hits,
            "storm_template_hits": self.storm_template_hits,
            "cache_stats": self.cache_stats,
        }


def _controller(
    nodes: list[str], config: AdmissionPerfConfig
) -> AdmissionController:
    return AdmissionController(
        SystemState(nodes=nodes), _SCHEMES[config.scheme](), use_cache=True
    )


def run_batch_perf(
    config: AdmissionPerfConfig | None = None,
) -> BatchPerfResult:
    """Time scalar-cached vs batched admission on identical sequences.

    Every side sees the same sequences via fresh controllers; the storm
    side additionally pre-saturates its controller with one untimed
    pass of the same burst, then times a second burst (steady state:
    the links are full, so the whole burst is template/memo traffic --
    the regime the 10^6 decisions/sec ROADMAP target describes).
    """
    config = config or AdmissionPerfConfig()
    nodes, sequences = _request_sequences(config)
    bursts = [
        [(r.source, r.destination, r.spec) for r in requests]
        for requests in sequences
    ]
    scalar_s, scalar_decisions, _ = _run_side(
        nodes, sequences, config, use_cache=True
    )

    best_batch = float("inf")
    best_storm = float("inf")
    batch_decisions: list[bool] = []
    storm_decisions: list[bool] = []
    storm_scalar: list[bool] = []
    template_hits = 0
    storm_hits = 0
    stats: dict[str, int] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(config.repeats):
            batch_decisions = []
            elapsed = 0.0
            stats = {}
            template_hits = 0
            for burst in bursts:
                controller = _controller(nodes, config)
                start = time.perf_counter()
                decided = controller.admit_many(burst)
                elapsed += time.perf_counter() - start
                batch_decisions.extend(d.accepted for d in decided)
                template_hits += controller.batch_template_hits
                for key, value in controller.cache.stats.as_dict().items():
                    stats[key] = stats.get(key, 0) + value
            best_batch = min(best_batch, elapsed)
        for _ in range(config.repeats):
            storm_decisions = []
            elapsed = 0.0
            storm_hits = 0
            for burst in bursts:
                controller = _controller(nodes, config)
                controller.admit_many(burst)  # saturate, untimed
                before = controller.batch_template_hits
                start = time.perf_counter()
                decided = controller.admit_many(burst)
                elapsed += time.perf_counter() - start
                storm_decisions.extend(d.accepted for d in decided)
                storm_hits += controller.batch_template_hits - before
            best_storm = min(best_storm, elapsed)
        # Storm reference: the scalar loop against an identically
        # pre-saturated controller must produce the same stream.
        for burst in bursts:
            controller = _controller(nodes, config)
            controller.admit_many(burst)
            storm_scalar.extend(
                controller.request(s, d, spec).accepted
                for s, d, spec in burst
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return BatchPerfResult(
        config=config,
        scalar_seconds=scalar_s,
        batched_seconds=best_batch,
        storm_seconds=best_storm,
        decisions=len(batch_decisions),
        accepts=sum(batch_decisions),
        batch_parity=batch_decisions == scalar_decisions,
        storm_parity=storm_decisions == storm_scalar,
        template_hits=template_hits,
        storm_template_hits=storm_hits,
        cache_stats=stats,
    )


def run_admission_perf(
    config: AdmissionPerfConfig | None = None,
) -> AdmissionPerfResult:
    """Time the sweep cached-vs-naive on identical request sequences."""
    config = config or AdmissionPerfConfig()
    nodes, sequences = _request_sequences(config)
    naive_s, naive_decisions, _ = _run_side(
        nodes, sequences, config, use_cache=False
    )
    cached_s, cached_decisions, stats = _run_side(
        nodes, sequences, config, use_cache=True
    )
    registry_metrics = (
        _instrumented_pass(nodes, sequences, config)
        if config.collect_metrics
        else None
    )
    return AdmissionPerfResult(
        config=config,
        naive_seconds=naive_s,
        cached_seconds=cached_s,
        decisions=len(cached_decisions),
        accepts=sum(cached_decisions),
        parity=naive_decisions == cached_decisions,
        cache_stats=stats,
        registry_metrics=registry_metrics,
    )
