"""EXP-A1..A4: parameter ablations around the Figure 18.5 workload.

The paper evaluates one point in parameter space; these sweeps map the
neighbourhood so the mechanism behind the ADPS advantage is visible:

* **EXP-A1 deadline sweep** -- the advantage should grow as deadlines
  tighten relative to periods (more demand-constrained) and vanish as
  ``d -> P`` (the Liu & Layland regime where only utilization matters,
  which no DPS can improve).
* **EXP-A2 symmetric traffic** -- uniform all-to-all load gives both
  links the same LinkLoad, so ADPS degenerates to SDPS; acceptance
  should be statistically indistinguishable.
* **EXP-A3 capacity sweep** -- larger ``C`` at fixed ``d`` leaves less
  partitionable slack (Eq. 18.9 floor), compressing the advantage.
* **EXP-A4 master-ratio sweep** -- the advantage should shrink as the
  master:slave ratio approaches 1 (bottleneck disappears).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import ChannelSpec
from ..core.partitioning import AsymmetricDPS, SymmetricDPS
from ..errors import ConfigurationError
from ..traffic.patterns import (
    master_slave_names,
    master_slave_requests,
    uniform_requests,
)
from ..traffic.spec import FixedSpecSampler
from .base import AcceptanceCurve, acceptance_curve

__all__ = [
    "SweepPoint",
    "SpeedScalingPoint",
    "deadline_sweep",
    "capacity_sweep",
    "master_ratio_sweep",
    "symmetric_traffic_curve",
    "speed_scaling",
]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """Final acceptance means of both schemes at one swept value."""

    value: int
    sdps_mean: float
    adps_mean: float

    @property
    def advantage(self) -> float:
        """ADPS/SDPS ratio (inf when SDPS accepted nothing)."""
        if self.sdps_mean == 0:
            return float("inf")
        return self.adps_mean / self.sdps_mean


def _final_acceptance(
    n_masters: int,
    n_slaves: int,
    spec: ChannelSpec,
    requests: int,
    trials: int,
    seed: int,
    workers: int = 1,
) -> tuple[float, float]:
    """(sdps, adps) mean accepted at ``requests`` offered channels."""
    masters, slaves = master_slave_names(n_masters, n_slaves)
    sampler = FixedSpecSampler(spec)
    curve = acceptance_curve(
        node_names=masters + slaves,
        request_factory=lambda count, rng: master_slave_requests(
            masters, slaves, count, sampler, rng
        ),
        schemes={"sdps": SymmetricDPS, "adps": AsymmetricDPS},
        requested_counts=[requests],
        trials=trials,
        seed=seed,
        workers=workers,
    )
    return curve.curve("sdps").means[-1], curve.curve("adps").means[-1]


def deadline_sweep(
    deadlines: tuple[int, ...] = (20, 30, 40, 50, 60, 80, 100),
    requests: int = 200,
    trials: int = 10,
    seed: int = 181,
    workers: int = 1,
) -> list[SweepPoint]:
    """EXP-A1: vary the end-to-end deadline, other F5 parameters fixed."""
    if not deadlines:
        raise ConfigurationError("deadline sweep needs at least one value")
    points = []
    for deadline in deadlines:
        spec = ChannelSpec(period=100, capacity=3, deadline=deadline)
        sdps, adps = _final_acceptance(
            10, 50, spec, requests, trials, seed, workers
        )
        points.append(SweepPoint(value=deadline, sdps_mean=sdps, adps_mean=adps))
    return points


def capacity_sweep(
    capacities: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8),
    requests: int = 200,
    trials: int = 10,
    seed: int = 182,
    workers: int = 1,
) -> list[SweepPoint]:
    """EXP-A3: vary the per-period capacity, deadline fixed at 40."""
    if not capacities:
        raise ConfigurationError("capacity sweep needs at least one value")
    points = []
    for capacity in capacities:
        spec = ChannelSpec(period=100, capacity=capacity, deadline=40)
        sdps, adps = _final_acceptance(
            10, 50, spec, requests, trials, seed, workers
        )
        points.append(SweepPoint(value=capacity, sdps_mean=sdps, adps_mean=adps))
    return points


def master_ratio_sweep(
    master_counts: tuple[int, ...] = (5, 10, 15, 20, 30),
    total_nodes: int = 60,
    requests: int = 200,
    trials: int = 10,
    seed: int = 183,
    workers: int = 1,
) -> list[SweepPoint]:
    """EXP-A4: vary the master share of a fixed 60-node population."""
    points = []
    for n_masters in master_counts:
        n_slaves = total_nodes - n_masters
        if n_slaves <= 0:
            raise ConfigurationError(
                f"{n_masters} masters leaves no slaves out of {total_nodes}"
            )
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        sdps, adps = _final_acceptance(
            n_masters, n_slaves, spec, requests, trials, seed, workers
        )
        points.append(
            SweepPoint(value=n_masters, sdps_mean=sdps, adps_mean=adps)
        )
    return points


def symmetric_traffic_curve(
    n_nodes: int = 60,
    requested_counts: tuple[int, ...] = tuple(range(20, 201, 20)),
    trials: int = 10,
    seed: int = 184,
    workers: int = 1,
) -> AcceptanceCurve:
    """EXP-A2: uniform all-to-all traffic -- ADPS should match SDPS."""
    nodes = [f"n{i}" for i in range(n_nodes)]
    sampler = FixedSpecSampler(ChannelSpec(period=100, capacity=3, deadline=40))
    return acceptance_curve(
        node_names=nodes,
        request_factory=lambda count, rng: uniform_requests(
            nodes, count, sampler, rng
        ),
        schemes={"sdps": SymmetricDPS, "adps": AsymmetricDPS},
        requested_counts=requested_counts,
        trials=trials,
        seed=seed,
        workers=workers,
    )


@dataclass(frozen=True, slots=True)
class SpeedScalingPoint:
    """EXP-S1: one link speed's simulated outcome for a fixed workload."""

    mbps: int
    slot_ns: int
    worst_delay_ns: int
    deadline_misses: int

    @property
    def worst_delay_slots(self) -> float:
        """Worst delay normalized to slot-times (speed-invariant part)."""
        return self.worst_delay_ns / self.slot_ns


def speed_scaling(
    speeds_mbps: tuple[int, ...] = (10, 100, 1000),
    n_masters: int = 3,
    n_slaves: int = 9,
    n_requests: int = 24,
    messages: int = 3,
    seed: int = 515,
) -> list[SpeedScalingPoint]:
    """EXP-S1: the analysis is slot-relative, so behaviour must scale.

    Admission control never sees the link speed (everything is in
    timeslots), so the admitted set is identical at every speed; the
    simulator's absolute delays scale with the slot duration while the
    slot-normalized delays coincide up to the non-scaling constants
    (propagation, switch processing). This invariance is a strong
    whole-stack consistency check.
    """
    from ..network.phy import PhyProfile
    from ..network.topology import build_star
    from ..sim.rng import RngRegistry
    from ..units import TimeBase

    points = []
    for mbps in speeds_mbps:
        masters, slaves = master_slave_names(n_masters, n_slaves)
        phy = PhyProfile(timebase=TimeBase.for_speed_mbps(mbps))
        net = build_star(masters + slaves, dps=AsymmetricDPS(), phy=phy)
        rng = RngRegistry(seed).stream("speed-scaling")
        sampler = FixedSpecSampler(
            ChannelSpec(period=100, capacity=3, deadline=40)
        )
        requests = master_slave_requests(
            masters, slaves, n_requests, sampler, rng
        )
        for request in requests:
            net.establish_analytically(
                request.source, request.destination, request.spec
            )
        net.start_all_sources(stop_after_messages=messages)
        net.sim.run()
        points.append(
            SpeedScalingPoint(
                mbps=mbps,
                slot_ns=phy.slot_ns,
                worst_delay_ns=net.metrics.worst_rt_delay_ns,
                deadline_misses=net.metrics.total_deadline_misses,
            )
        )
    return points
