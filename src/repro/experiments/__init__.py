"""Experiment harness: one module per reproduced artifact.

* :mod:`~repro.experiments.base` -- shared machinery: acceptance-curve
  runner, trial seeding, result containers.
* :mod:`~repro.experiments.runner` -- deterministic parallel sweep
  runner (``workers=N`` fan-out with byte-identical results).
* :mod:`~repro.experiments.fig18_5` -- **EXP-F5**, the paper's
  Figure 18.5 (accepted vs requested channels, SDPS vs ADPS,
  10 masters / 50 slaves, C=3 P=100 d=40).
* :mod:`~repro.experiments.ablations` -- EXP-A1..A4 parameter sweeps.
* :mod:`~repro.experiments.validation` -- EXP-V1, simulation check of
  the Eq. 18.1 delay guarantee.
* :mod:`~repro.experiments.coexistence` -- EXP-B1, RT + best-effort.
* :mod:`~repro.experiments.perf` -- EXP-P1, feasibility-test cost.
* :mod:`~repro.experiments.multiswitch_exp` -- EXP-X1, switch trees.
* :mod:`~repro.experiments.fabric_sweep` -- EXP-X3, graph fabrics
  (fat-tree headline sweep at 100+ end nodes).
* :mod:`~repro.experiments.dps_comparison` -- EXP-D1, all DPS schemes.
"""

from .base import (
    AcceptanceCurve,
    SchemeCurve,
    TraceLane,
    acceptance_curve,
    run_requests,
)
from .runner import parallel_map, resolve_workers
from .fig18_5 import Fig185Config, Fig185Result, run_fig18_5
from .ablations import (
    SweepPoint,
    capacity_sweep,
    deadline_sweep,
    master_ratio_sweep,
    symmetric_traffic_curve,
)
from .validation import (
    ValidationReport,
    run_validation,
    run_validation_sweep,
)
from .coexistence import CoexistenceReport, run_coexistence
from .perf import PerfPoint, feasibility_cost_sweep, make_link_tasks
from .multiswitch_exp import (
    MultiSwitchPoint,
    build_master_slave_fabric,
    run_multiswitch_comparison,
)
from .fabric_sweep import (
    FabricCrossCheck,
    FabricSweepConfig,
    FabricSweepPoint,
    FabricSweepResult,
    build_fabric_topology,
    cross_check_fabric_admission,
    run_fabric_sweep,
)
from .dps_comparison import DEFAULT_SCHEMES, run_dps_comparison

__all__ = [
    "AcceptanceCurve",
    "SchemeCurve",
    "TraceLane",
    "acceptance_curve",
    "run_requests",
    "parallel_map",
    "resolve_workers",
    "Fig185Config",
    "Fig185Result",
    "run_fig18_5",
    "SweepPoint",
    "deadline_sweep",
    "capacity_sweep",
    "master_ratio_sweep",
    "symmetric_traffic_curve",
    "ValidationReport",
    "run_validation",
    "run_validation_sweep",
    "CoexistenceReport",
    "run_coexistence",
    "PerfPoint",
    "feasibility_cost_sweep",
    "make_link_tasks",
    "MultiSwitchPoint",
    "build_master_slave_fabric",
    "run_multiswitch_comparison",
    "FabricCrossCheck",
    "FabricSweepConfig",
    "FabricSweepPoint",
    "FabricSweepResult",
    "build_fabric_topology",
    "cross_check_fabric_admission",
    "run_fabric_sweep",
    "DEFAULT_SCHEMES",
    "run_dps_comparison",
]
