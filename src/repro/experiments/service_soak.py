"""EXP-X4: long-lived service soak with kill-and-resume under loss.

The headline scenario of the resident-service work: a two-switch
shared-link fabric runs a churn workload at 20% control-frame loss;
midway the whole process is killed and restarted from its latest
checkpoint. The experiment then checks, against an uninterrupted
reference run of the same seed:

* the decision ledger (announce/commit/abort/reject/depart stream) is
  **byte-identical** -- prefix from the killed run, suffix from the
  resumed one;
* the final coordinator states (committed trunk views, versions,
  dedup sets) are byte-identical;
* after quiescence, the invariant monitor finds **zero double-booked
  shared links** and the per-switch trunk views have converged;
* **zero leaked reservations** -- every access-link entry belongs to a
  live channel or an unresolved intent.

A single-switch :class:`~repro.service.service.AdmissionService`
kill-and-resume rides along as a second determinism gate exercising the
schema-v2 persistence path (snapshot -> restore -> identical decision
stream).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.admission import AdmissionController, SystemState
from ..core.partitioning import SymmetricDPS
from ..faults.plan import FaultPlan
from ..obs.monitor import InvariantMonitor
from ..service import (
    AdmissionService,
    ChurnConfig,
    ChurnProcess,
    SharedLinkFabric,
    resume,
)
from ..sim.rng import RngRegistry

__all__ = ["ServiceSoakResult", "run_service_soak"]


@dataclass(slots=True)
class ServiceSoakResult:
    """Everything EXP-X4 measured, plus the pass/fail verdict."""

    duration_ns: int
    loss: float
    kill_at_ns: int
    seed: int
    fabric_counters: dict = field(default_factory=dict)
    fabric_ledger_len: int = 0
    fabric_ledger_identical: bool = False
    fabric_state_identical: bool = False
    views_converged: bool = False
    double_bookings: int = 0
    leaked_reservations: int = 0
    service_ledger_identical: bool = False
    service_state_identical: bool = False
    anomalies: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.fabric_ledger_identical
            and self.fabric_state_identical
            and self.views_converged
            and self.double_bookings == 0
            and self.leaked_reservations == 0
            and self.service_ledger_identical
            and self.service_state_identical
        )

    def summary(self) -> str:
        lines = [
            "EXP-X4 service soak "
            f"(duration {self.duration_ns} ns, loss {self.loss:.0%}, "
            f"kill at {self.kill_at_ns} ns, seed {self.seed})",
            f"  fabric: {self.fabric_counters.get('arrivals', 0)} arrivals, "
            f"{self.fabric_counters.get('commits', 0)} commits, "
            f"{self.fabric_counters.get('aborts', 0)} aborts, "
            f"{self.fabric_counters.get('retransmissions', 0)} "
            f"retransmissions, "
            f"{self.fabric_counters.get('reconciliations', 0)} "
            f"reconciliations",
            f"  kill-and-resume ledger identical: "
            f"{self.fabric_ledger_identical}",
            f"  final coordinator state identical: "
            f"{self.fabric_state_identical}",
            f"  trunk views converged: {self.views_converged}",
            f"  double-booked shared links: {self.double_bookings}",
            f"  leaked reservations: {self.leaked_reservations}",
            f"  single-switch service resume identical: "
            f"ledger={self.service_ledger_identical} "
            f"state={self.service_state_identical}",
            f"  verdict: {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "experiment": "EXP-X4",
            "duration_ns": self.duration_ns,
            "loss": self.loss,
            "kill_at_ns": self.kill_at_ns,
            "seed": self.seed,
            "fabric_counters": dict(self.fabric_counters),
            "fabric_ledger_len": self.fabric_ledger_len,
            "fabric_ledger_identical": self.fabric_ledger_identical,
            "fabric_state_identical": self.fabric_state_identical,
            "views_converged": self.views_converged,
            "double_bookings": self.double_bookings,
            "leaked_reservations": self.leaked_reservations,
            "service_ledger_identical": self.service_ledger_identical,
            "service_state_identical": self.service_state_identical,
            "anomalies": list(self.anomalies),
            "ok": self.ok,
        }


def _fabric(seed: int, loss: float, checkpoint_every_ns: int) -> SharedLinkFabric:
    plan = (
        FaultPlan.control_loss(loss, seed=seed) if loss > 0.0 else None
    )
    return SharedLinkFabric(
        n_switches=2,
        nodes_per_switch=4,
        seed=seed,
        fault_plan=plan,
        checkpoint_every_ns=checkpoint_every_ns,
    )


def _coordinator_states(fabric: SharedLinkFabric) -> list[dict]:
    return json.loads(
        json.dumps([c.export_state() for c in fabric.coordinators])
    )


def run_service_soak(
    duration_ns: int = 120_000_000,
    seed: int = 2004,
    *,
    loss: float = 0.2,
    kill_at_ns: int | None = None,
    checkpoint_every_ns: int = 10_000_000,
) -> ServiceSoakResult:
    """Run EXP-X4 and return its result record."""
    if kill_at_ns is None:
        kill_at_ns = duration_ns // 2
    if not (0 < kill_at_ns < duration_ns):
        raise ValueError(
            f"kill_at_ns must fall inside the soak, got {kill_at_ns} "
            f"of {duration_ns}"
        )
    if checkpoint_every_ns > kill_at_ns:
        raise ValueError(
            "kill point precedes the first checkpoint; nothing to resume"
        )
    result = ServiceSoakResult(
        duration_ns=duration_ns,
        loss=loss,
        kill_at_ns=kill_at_ns,
        seed=seed,
    )

    # -- fabric: uninterrupted reference -----------------------------------
    reference = _fabric(seed, loss, checkpoint_every_ns)
    reference.start()
    reference.run_until(duration_ns)

    # -- fabric: kill at kill_at_ns, resume from the latest checkpoint -----
    victim = _fabric(seed, loss, checkpoint_every_ns)
    victim.start()
    victim.run_until(kill_at_ns)
    checkpoint = json.loads(json.dumps(victim.checkpoints[-1]))
    resumed = SharedLinkFabric.resume(
        checkpoint,
        fault_plan=(
            FaultPlan.control_loss(loss, seed=seed) if loss > 0.0 else None
        ),
        checkpoint_every_ns=checkpoint_every_ns,
    )
    resumed.run_until(duration_ns)

    prefix = victim.ledger[: checkpoint["ledger_len"]]
    reconstructed = [list(e) for e in prefix] + [
        list(e) for e in resumed.ledger
    ]
    result.fabric_ledger_len = len(reference.ledger)
    result.fabric_ledger_identical = (
        [list(e) for e in reference.ledger] == reconstructed
    )
    result.fabric_state_identical = _coordinator_states(
        reference
    ) == _coordinator_states(resumed)
    result.fabric_counters = dict(resumed.counters)

    # -- quiesce the resumed fabric and gate the invariants ----------------
    resumed.quiesce()
    monitor = InvariantMonitor()
    monitor.check_shared_links(
        resumed, resumed.now, require_converged=True
    )
    result.anomalies = list(monitor.anomalies)
    result.double_bookings = sum(
        1
        for a in monitor.anomalies
        if a["invariant"] == "shared-link-double-book"
    )
    result.views_converged = not any(
        a["invariant"] == "shared-link-divergence" for a in monitor.anomalies
    )
    result.leaked_reservations = len(resumed.leaked_reservations())

    # -- single-switch service determinism gate ----------------------------
    nodes = tuple(f"m{i}" for i in range(6))
    config = ChurnConfig(nodes=nodes)

    def build_service() -> AdmissionService:
        controller = AdmissionController(SystemState(nodes), SymmetricDPS())
        churn = ChurnProcess(RngRegistry(seed), config)
        return AdmissionService(
            controller, churn, checkpoint_every_ns=checkpoint_every_ns
        )

    svc_ref = build_service()
    svc_ref.start()
    svc_ref.run_until(duration_ns)

    svc_victim = build_service()
    svc_victim.start()
    svc_victim.run_until(kill_at_ns)
    svc_cp = svc_victim.last_checkpoint
    assert svc_cp is not None  # guaranteed by the kill/checkpoint guard
    svc_resumed = resume(
        json.loads(json.dumps(svc_cp.data)),
        SymmetricDPS(),
        RngRegistry(seed),
        config,
    )
    svc_resumed.run_until(duration_ns)
    svc_prefix = svc_victim.ledger[: svc_cp.data["ledger_len"] + 1]
    result.service_ledger_identical = [
        list(e) for e in svc_ref.ledger
    ] == [list(e) for e in svc_prefix] + [
        list(e) for e in svc_resumed.ledger
    ]
    result.service_state_identical = (
        svc_ref.final_state_json() == svc_resumed.final_state_json()
    )
    return result
