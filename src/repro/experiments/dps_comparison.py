"""EXP-D1: the full DPS design space on the Figure 18.5 workload.

Beyond the paper's SDPS/ADPS pair, this reproduction implements three
further schemes (:mod:`repro.core.partitioning_ext`); this experiment
ranks all five on the exact Figure 18.5 workload:

* ``sdps``   -- half/half (paper baseline);
* ``adps``   -- LinkLoad-proportional (paper's proposal);
* ``udps``   -- utilization-proportional (our refinement: weigh links by
  reserved bandwidth rather than channel count);
* ``ldps``   -- LinkLoad-proportional over the *slack* ``d - 2C`` only;
* ``search`` -- probe splits through the admission test until one fits:
  the per-channel greedy optimum, an upper bound for every one-shot DPS.

The ordering expected (and observed): sdps < {adps, udps, ldps} <=
search. On the identical-channel workload adps/udps coincide (loads and
utilizations are proportional); they separate on mixed-size workloads.
"""

from __future__ import annotations

from ..core.partitioning import AsymmetricDPS, SymmetricDPS
from ..core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from ..errors import ConfigurationError
from ..traffic.patterns import master_slave_names, master_slave_requests
from ..traffic.spec import FixedSpecSampler, SpecSampler
from .base import AcceptanceCurve, acceptance_curve

__all__ = ["run_dps_comparison", "DEFAULT_SCHEMES"]

DEFAULT_SCHEMES = {
    "sdps": SymmetricDPS,
    "adps": AsymmetricDPS,
    "udps": UtilizationDPS,
    "ldps": LaxityDPS,
    "search": SearchDPS,
}


def run_dps_comparison(
    n_masters: int = 10,
    n_slaves: int = 50,
    requested_counts: tuple[int, ...] = tuple(range(20, 201, 20)),
    sampler: SpecSampler | None = None,
    trials: int = 10,
    seed: int = 405,
    schemes: dict | None = None,
    telemetry=None,
    workers: int = 1,
) -> AcceptanceCurve:
    """Paired acceptance comparison across all DPS schemes.

    ``workers`` fans the (trial, scheme) grid across processes (0 = all
    CPUs); results are identical at any worker count.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    masters, slaves = master_slave_names(n_masters, n_slaves)
    sampler = sampler or FixedSpecSampler.paper_default()
    return acceptance_curve(
        node_names=masters + slaves,
        request_factory=lambda count, rng: master_slave_requests(
            masters, slaves, count, sampler, rng
        ),
        schemes=schemes or DEFAULT_SCHEMES,
        requested_counts=requested_counts,
        trials=trials,
        seed=seed,
        telemetry=telemetry,
        workers=workers,
    )
