"""repro: Real-Time Communication over Switched Ethernet (Hoang & Jonsson, 2004).

A full reproduction of the paper's system: EDF-scheduled RT channels
over full-duplex switched Ethernet with switch-based admission control
and deadline partitioning (SDPS / ADPS), plus the discrete-event
simulation substrate needed to validate the guarantees and regenerate
the paper's evaluation.

Quickstart
----------
>>> from repro import (
...     AsymmetricDPS, ChannelSpec, SymmetricDPS, build_star,
... )
>>> net = build_star([f"m{i}" for i in range(2)] + [f"s{i}" for i in range(4)],
...                  dps=AsymmetricDPS())
>>> grant = net.establish("m0", "s1", ChannelSpec(period=100, capacity=3,
...                                               deadline=40))
>>> grant is not None
True

Package map
-----------
``repro.core``
    The paper's contribution: channels, feasibility analysis,
    partitioning schemes, admission control, RT layer, channel manager.
``repro.protocol``
    Wire formats: Request/Response frames, RT header mangling.
``repro.sim``
    Deterministic discrete-event kernel.
``repro.network``
    Ethernet substrate: links, ports, nodes, switch, topology builder.
``repro.traffic``
    Workload generators (master-slave pattern of Figure 18.1, etc.).
``repro.analysis``
    Metrics, statistics, report tables.
``repro.experiments``
    One module per reproduced figure/table and per extension study.
``repro.multiswitch``
    Future-work extension: per-hop partitioning on switch trees.
``repro.oracle``
    Differential validation: brute-force EDF timeline replay
    cross-checked against the analytical admission test, plus the
    seeded fuzz campaigns that keep them agreeing.
"""

from .errors import (
    AdmissionError,
    ChannelParameterError,
    CodecError,
    ConfigurationError,
    FieldRangeError,
    InfeasibleChannelError,
    PartitioningError,
    ProtocolError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    TopologyError,
    UnknownChannelError,
)
from .units import TimeBase
from .core import (
    AdmissionController,
    AdmissionDecision,
    AsymmetricDPS,
    ChannelGrant,
    ChannelSpec,
    ChannelState,
    DeadlinePartition,
    DeadlinePartitioningScheme,
    EDFQueue,
    FCFSQueue,
    FeasibilityReport,
    LaxityDPS,
    LinkDirection,
    LinkRef,
    LinkTask,
    RejectionReason,
    RTChannel,
    RTLayer,
    SearchDPS,
    SymmetricDPS,
    SystemState,
    UtilizationDPS,
    busy_period,
    control_points,
    demand,
    hyperperiod,
    is_feasible,
    utilization,
)
from .network import PhyProfile, StarNetwork, build_star
from .oracle import (
    OracleVerdict,
    TimelineResult,
    cross_check,
    run_campaign,
    simulate_edf,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "ChannelParameterError",
    "PartitioningError",
    "AdmissionError",
    "InfeasibleChannelError",
    "UnknownChannelError",
    "ProtocolError",
    "CodecError",
    "FieldRangeError",
    "SimulationError",
    "SchedulingError",
    "TopologyError",
    "RoutingError",
    # units
    "TimeBase",
    # core
    "ChannelSpec",
    "DeadlinePartition",
    "RTChannel",
    "ChannelState",
    "LinkTask",
    "LinkRef",
    "LinkDirection",
    "EDFQueue",
    "FCFSQueue",
    "FeasibilityReport",
    "utilization",
    "hyperperiod",
    "demand",
    "busy_period",
    "control_points",
    "is_feasible",
    "DeadlinePartitioningScheme",
    "SymmetricDPS",
    "AsymmetricDPS",
    "UtilizationDPS",
    "LaxityDPS",
    "SearchDPS",
    "AdmissionController",
    "AdmissionDecision",
    "RejectionReason",
    "SystemState",
    "RTLayer",
    "ChannelGrant",
    # network / sim
    "PhyProfile",
    "StarNetwork",
    "build_star",
    "Simulator",
    # oracle
    "OracleVerdict",
    "TimelineResult",
    "cross_check",
    "run_campaign",
    "simulate_edf",
    "__version__",
]
