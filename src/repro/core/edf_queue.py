"""Frame-level output queues: deadline-sorted (EDF) and FCFS.

Figure 18.2 of the paper gives every transmitter -- each end node's
uplink and each switch port's downlink -- **two** output queues:

* a *deadline-sorted* queue for real-time frames, served in Earliest
  Deadline First order, and
* a *FCFS* queue for best-effort (TCP-style) frames.

The RT queue has strict priority: a best-effort frame is only started
when the RT queue is empty. Service is non-preemptive at frame
granularity (Ethernet cannot abort a frame mid-wire); the resulting
one-frame blocking is absorbed by the paper's ``T_latency`` term in
Eq. 18.1 rather than by the per-link deadlines.

:class:`EDFQueue` breaks deadline ties in FIFO order of insertion, which
makes simulation runs fully deterministic and matches the natural
behaviour of an insertion-sorted hardware queue.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from ..errors import SchedulingError

__all__ = ["QueuedFrame", "EDFQueue", "FCFSQueue"]

PayloadT = TypeVar("PayloadT")


@dataclass(frozen=True, slots=True)
class QueuedFrame(Generic[PayloadT]):
    """One frame waiting in an output queue.

    Attributes
    ----------
    payload:
        The frame object itself (opaque to the queue).
    absolute_deadline:
        Per-link absolute EDF deadline, in simulator time units. This is
        the value the RT layer writes into the (repurposed) IP address
        fields of the datagram -- see :mod:`repro.protocol.headers`.
    enqueued_at:
        Time the frame entered the queue; used for queueing-delay
        statistics.
    channel_id:
        Originating RT channel (``-1`` for best-effort frames).
    """

    payload: PayloadT
    absolute_deadline: int
    enqueued_at: int
    channel_id: int = -1
    #: Per-frame completion allowance beyond the deadline (cumulative
    #: non-preemption blocking + propagation for this frame's hop depth);
    #: -1 means "use the port's default" (a first-hop allowance).
    allowance_ns: int = -1


class EDFQueue(Generic[PayloadT]):
    """Deadline-sorted queue with deterministic FIFO tie-breaking.

    Implemented as a binary heap keyed on ``(absolute_deadline, seq)``
    where ``seq`` is a monotone insertion counter, giving O(log n) push
    and pop with total, reproducible order.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, QueuedFrame[PayloadT]]] = []
        self._seq = itertools.count()
        self._pushed = 0
        self._popped = 0
        self._max_depth = 0

    def push(self, frame: QueuedFrame[PayloadT]) -> None:
        """Insert a frame; O(log n)."""
        heapq.heappush(
            self._heap, (frame.absolute_deadline, next(self._seq), frame)
        )
        self._pushed += 1
        if len(self._heap) > self._max_depth:
            self._max_depth = len(self._heap)

    def pop(self) -> QueuedFrame[PayloadT]:
        """Remove and return the earliest-deadline frame; O(log n)."""
        if not self._heap:
            raise SchedulingError("pop from an empty EDF queue")
        _, _, frame = heapq.heappop(self._heap)
        self._popped += 1
        return frame

    def peek(self) -> QueuedFrame[PayloadT]:
        """Return (without removing) the earliest-deadline frame."""
        if not self._heap:
            raise SchedulingError("peek into an empty EDF queue")
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[QueuedFrame[PayloadT]]:
        """Iterate frames in EDF order without disturbing the queue."""
        return (entry[2] for entry in sorted(self._heap))

    @property
    def total_pushed(self) -> int:
        """Lifetime number of frames inserted (for statistics)."""
        return self._pushed

    @property
    def total_popped(self) -> int:
        """Lifetime number of frames served (for statistics)."""
        return self._popped

    @property
    def max_depth(self) -> int:
        """High-watermark of simultaneous queued frames (for statistics)."""
        return self._max_depth

    def clear(self) -> None:
        self._heap.clear()


class FCFSQueue(Generic[PayloadT]):
    """Plain first-come-first-served queue for best-effort frames.

    A bounded capacity may be supplied to model finite switch buffers;
    when full, :meth:`push` reports the drop by returning ``False``
    (best-effort traffic is droppable -- RT frames never enter this
    queue, so an RT frame can never be lost to buffer pressure here).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SchedulingError(
                f"FCFS queue capacity must be positive or None, got {capacity}"
            )
        self._queue: deque[QueuedFrame[PayloadT]] = deque()
        self._capacity = capacity
        self._pushed = 0
        self._popped = 0
        self._dropped = 0

    def push(self, frame: QueuedFrame[PayloadT]) -> bool:
        """Append a frame. Returns ``False`` (and drops) when full."""
        if self._capacity is not None and len(self._queue) >= self._capacity:
            self._dropped += 1
            return False
        self._queue.append(frame)
        self._pushed += 1
        return True

    def pop(self) -> QueuedFrame[PayloadT]:
        """Remove and return the oldest frame."""
        if not self._queue:
            raise SchedulingError("pop from an empty FCFS queue")
        self._popped += 1
        return self._queue.popleft()

    def peek(self) -> QueuedFrame[PayloadT]:
        if not self._queue:
            raise SchedulingError("peek into an empty FCFS queue")
        return self._queue[0]

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[QueuedFrame[PayloadT]]:
        return iter(self._queue)

    @property
    def total_pushed(self) -> int:
        return self._pushed

    @property
    def total_popped(self) -> int:
        return self._popped

    @property
    def total_dropped(self) -> int:
        """Frames refused because the buffer was full."""
        return self._dropped

    def clear(self) -> None:
        self._queue.clear()
