"""Deadline partitioning schemes: SDPS and ADPS (Section 18.4).

A **deadline-partitioning scheme (DPS)** maps the end-to-end deadline
``d_i`` of every channel onto a pair ``(d_iu, d_id)`` with
``d_iu + d_id == d_i`` (Eq. 18.8) and ``d_iu, d_id >= C_i`` (Eq. 18.9).
The paper presents two schemes:

**SDPS** (symmetric, Section 18.4.1)
    ``d_iu = d_id = d_i / 2`` -- ignores the system state entirely
    (Eq. 18.14/18.15).

**ADPS** (asymmetric, Section 18.4.2)
    gives a larger share of the deadline to whichever of the two links is
    more heavily loaded, where the **LinkLoad** ``LL`` of a link is the
    number of channels traversing it::

        Upart_i = LL(Source_i) / (LL(Source_i) + LL(Destination_i))   (Eq. 18.16)
        Dpart_i = LL(Destination_i) / (LL(Source_i) + LL(Destination_i))

    A more loaded link hosts more supposed tasks, so giving its tasks
    looser deadlines relieves the bottleneck that the processor-demand
    test would otherwise hit first.

Integer rounding
----------------
The paper works in whole timeslots, so fractional splits must be
rounded. This implementation computes the uplink share with round-half-
up integer arithmetic and then **clamps** both parts into
``[C_i, d_i - C_i]`` so Eq. 18.9 always holds for any partitionable
channel (``d_i >= 2 C_i``); :func:`clamp_partition` is exposed separately
because every scheme (including user-supplied ones) needs it.

Link-load accounting
--------------------
ADPS is evaluated *at admission time* with loads that already include
the candidate channel on both its links (so the ratio is defined even in
an empty system, and a channel's own presence is weighed equally on both
sides). Already-admitted channels keep the partition they were given; the
paper's dynamic-admission setting does not re-balance old channels.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Callable, Protocol, runtime_checkable

from ..errors import PartitioningError
from .channel import ChannelSpec, DeadlinePartition
from .task import LinkRef

__all__ = [
    "LoadView",
    "FeasibilityProbe",
    "clamp_partition",
    "intern_partition",
    "split_round_half_up",
    "DeadlinePartitioningScheme",
    "SymmetricDPS",
    "AsymmetricDPS",
]


@runtime_checkable
class LoadView(Protocol):
    """Read-only view of per-link state that partitioning schemes may use.

    :class:`~repro.core.admission.SystemState` implements this protocol;
    tests may supply a stub.
    """

    def link_load(self, link: LinkRef) -> int:
        """Number of channels traversing ``link`` (the paper's ``LL``)."""
        ...  # pragma: no cover - protocol

    def link_utilization(self, link: LinkRef) -> Fraction:
        """Total utilization ``sum C/P`` of the tasks on ``link``."""
        ...  # pragma: no cover - protocol


#: Signature of the feasibility probe handed to
#: :meth:`DeadlinePartitioningScheme.partition_with_probe`: given a
#: candidate partition it answers whether *both* links of the channel
#: would remain feasible under it.
FeasibilityProbe = Callable[[DeadlinePartition], bool]


#: Interned partitions keyed by ``(uplink, downlink)``. Every admission
#: request builds at least one DeadlinePartition and its validating
#: constructor is measurable on that hot path; the sweep workloads
#: revisit the same few dozen splits constantly. Safe because the class
#: is frozen and the first construction still validates. Bounded by a
#: wholesale clear at capacity.
_PARTITIONS: dict[tuple[int, int], DeadlinePartition] = {}
_PARTITIONS_MAX = 1 << 15


def intern_partition(uplink: int, downlink: int) -> DeadlinePartition:
    """The interned ``DeadlinePartition(uplink, downlink)``."""
    key = (uplink, downlink)
    part = _PARTITIONS.get(key)
    if part is None:
        if len(_PARTITIONS) >= _PARTITIONS_MAX:
            _PARTITIONS.clear()
        part = DeadlinePartition(uplink=uplink, downlink=downlink)
        _PARTITIONS[key] = part
    return part


def clamp_partition(spec: ChannelSpec, uplink_part: int) -> DeadlinePartition:
    """Build a valid partition from a desired (possibly out-of-range) split.

    Clamps ``uplink_part`` into ``[C, d - C]`` and assigns the remainder
    to the downlink, so the result always satisfies Eq. 18.8 and Eq. 18.9.

    Raises
    ------
    PartitioningError
        if the channel is not partitionable at all (``d < 2 C``); no
        clamping can rescue such a channel (see the paper's discussion of
        Eq. 18.9 -- it can never be EDF-feasible through a
        store-and-forward switch).
    """
    if not spec.is_partitionable():
        raise PartitioningError(
            f"channel with C={spec.capacity}, d={spec.deadline} cannot be "
            "partitioned: the deadline is below twice the capacity (Eq. 18.9)"
        )
    lo, hi = spec.capacity, spec.deadline - spec.capacity
    clamped = min(max(uplink_part, lo), hi)
    return intern_partition(clamped, spec.deadline - clamped)


def split_round_half_up(deadline: int, numerator: int, denominator: int) -> int:
    """Integer ``round(deadline * numerator / denominator)`` with .5 up.

    Used to turn the rational shares of Eq. 18.16 into whole timeslots
    deterministically (Python's banker's rounding would make outcomes
    depend on parity, which is hostile to reproducibility).
    """
    if denominator <= 0:
        raise PartitioningError(
            f"share denominator must be positive, got {denominator}"
        )
    if numerator < 0:
        raise PartitioningError(f"share numerator must be >= 0, got {numerator}")
    return (2 * deadline * numerator + denominator) // (2 * denominator)


class DeadlinePartitioningScheme(abc.ABC):
    """Abstract base for deadline-partitioning schemes.

    Concrete schemes implement :meth:`partition`. Schemes that want to
    *search* over partitions using admission-control feedback (e.g.
    :class:`~repro.core.partitioning_ext.SearchDPS`) override
    :meth:`partition_with_probe` instead; the default implementation
    ignores the probe.
    """

    #: Short name used in reports and experiment legends.
    name: str = "dps"

    #: True when the scheme's choice (and any probing) depends *only* on
    #: the candidate's two endpoint links -- the source uplink and the
    #: destination downlink. The admission controller then memoizes whole
    #: assessments keyed by ``(source, destination, spec)`` and
    #: invalidates them via those two links' cache epochs alone. A scheme
    #: that consults any other link (or non-link state) must leave this
    #: False (the conservative default) or the memo would serve stale
    #: decisions.
    local_only: bool = False

    @abc.abstractmethod
    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        """Choose ``(d_iu, d_id)`` for a candidate channel.

        Parameters
        ----------
        source, destination:
            End-node names; the relevant links are ``source``'s uplink
            and ``destination``'s downlink.
        spec:
            The candidate channel's ``{P, C, d}``.
        loads:
            Current per-link state *including the candidate channel*.

        Returns a partition satisfying Eq. 18.8/18.9, or raises
        :class:`~repro.errors.PartitioningError` when none exists.
        """

    def partition_with_probe(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
        probe: FeasibilityProbe,
    ) -> DeadlinePartition:
        """Like :meth:`partition` but with access to a feasibility probe.

        Admission control always calls this entry point. The base
        implementation simply delegates to :meth:`partition`; the
        returned partition may still fail the probe, in which case the
        channel is rejected (that is the behaviour the paper evaluates
        for SDPS and ADPS).
        """
        del probe  # unused by non-searching schemes
        return self.partition(source, destination, spec, loads)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class SymmetricDPS(DeadlinePartitioningScheme):
    """SDPS: split every deadline in half (Eq. 18.14/18.15).

    ``Upart_i = Dpart_i = 1/2`` regardless of the system state. For odd
    deadlines the uplink gets the smaller half (``d // 2``); the choice
    is arbitrary and documented rather than configurable, matching the
    paper's presentation where deadlines are even in every experiment.
    """

    name = "sdps"
    local_only = True  # state-invariant, a fortiori endpoint-local

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        del source, destination, loads  # SDPS is state-invariant by design
        return clamp_partition(spec, spec.deadline // 2)


class AsymmetricDPS(DeadlinePartitioningScheme):
    """ADPS: split proportionally to LinkLoad (Eq. 18.16/18.17).

    The uplink share is ``LL(source uplink) / (LL(source uplink) +
    LL(destination downlink))`` where ``LL`` counts channels *including*
    the candidate. With round-half-up integer rounding and Eq. 18.9
    clamping.
    """

    name = "adps"
    local_only = True  # reads only the two endpoint LinkLoads

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        ll_up = loads.link_load(LinkRef.uplink(source))
        ll_down = loads.link_load(LinkRef.downlink(destination))
        if ll_up < 0 or ll_down < 0:
            raise PartitioningError(
                f"negative link load reported: uplink={ll_up}, downlink={ll_down}"
            )
        total = ll_up + ll_down
        if total == 0:
            # Candidate not counted by this view -- fall back to an even
            # split, which is what Eq. 18.16 yields for LL_u == LL_d anyway.
            return clamp_partition(spec, spec.deadline // 2)
        uplink_part = split_round_half_up(spec.deadline, ll_up, total)
        return clamp_partition(spec, uplink_part)
