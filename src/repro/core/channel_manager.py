"""Switch-side RT channel management (Section 18.2.2, Figure 18.2).

The *RT channel management software* in the switch mediates every
channel establishment:

1. receive a RequestFrame from a source node;
2. run admission control (feasibility on uplink and downlink with the
   DPS-chosen deadline partition);
3. on failure, answer the source directly with a negative ResponseFrame
   ("the RequestFrame is not forwarded to the destination node");
4. on success, reserve the channel, stamp the network-unique RT channel
   ID into the request and forward it to the destination;
5. receive the destination's ResponseFrame; if the destination declines,
   release the reservation; either way forward the verdict to the
   source, attaching the :class:`~repro.core.rt_layer.ChannelGrant` on
   acceptance so the source learns its ``d_iu``.

This class is pure protocol logic: it consumes decoded frames and
returns :class:`SignalAction` records naming which node should receive
which frame. The network-layer :class:`~repro.network.switch.Switch`
turns the actions into Ethernet frames on the right output ports, and
unit tests drive the manager directly with no simulator at all.

The reservation is taken *before* the destination answers (step 4), so
two racing requests can never both pass feasibility into the same
capacity; a declined offer releases it (step 5). This resolves a race
the paper does not discuss but any implementation must.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError
from ..protocol.frames import RequestFrame, ResponseFrame, TeardownFrame
from .admission import AdmissionController, AdmissionDecision
from .channel import ChannelSpec, ChannelState, RTChannel
from .rt_layer import ChannelGrant

__all__ = ["NodeDirectory", "SignalAction", "SwitchChannelManager"]


@dataclass(frozen=True, slots=True)
class NodeAddress:
    """MAC/IP pair registered for one end node."""

    name: str
    mac: int
    ip: int


class NodeDirectory:
    """Name <-> address resolution for the switch.

    The signalling frames carry MAC and IP addresses (Figure 18.3); the
    admission machinery works with node names. Registration happens when
    the topology is built -- the paper's system state ``{N, K}`` lists
    connected nodes explicitly.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, NodeAddress] = {}
        self._by_mac: dict[int, NodeAddress] = {}

    def register(self, name: str, mac: int, ip: int) -> None:
        if name in self._by_name:
            raise ProtocolError(f"node {name!r} is already registered")
        if mac in self._by_mac:
            raise ProtocolError(
                f"MAC {mac:#014x} is already registered to "
                f"{self._by_mac[mac].name!r}"
            )
        address = NodeAddress(name=name, mac=mac, ip=ip)
        self._by_name[name] = address
        self._by_mac[mac] = address

    def by_name(self, name: str) -> NodeAddress:
        address = self._by_name.get(name)
        if address is None:
            raise ProtocolError(f"unknown node name {name!r}")
        return address

    def by_mac(self, mac: int) -> NodeAddress:
        address = self._by_mac.get(mac)
        if address is None:
            raise ProtocolError(f"unknown MAC address {mac:#014x}")
        return address

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))


@dataclass(frozen=True, slots=True)
class SignalAction:
    """One frame the switch should emit toward one node.

    ``grant`` is attached on the final positive response to the source
    (management metadata riding in the response's padding; see
    :mod:`repro.core.rt_layer`).
    """

    target: str
    frame: RequestFrame | ResponseFrame | TeardownFrame
    grant: ChannelGrant | None = None


class SwitchChannelManager:
    """The establishment/teardown state machine around admission control.

    Parameters
    ----------
    admission:
        The switch's admission controller (owns the system state).
    directory:
        Address resolution for the connected nodes.
    switch_mac:
        The switch's own MAC, written into every ResponseFrame it
        originates (Figure 18.4's source field).
    """

    def __init__(
        self,
        admission: AdmissionController,
        directory: NodeDirectory,
        switch_mac: int,
    ) -> None:
        self._admission = admission
        self._directory = directory
        self._switch_mac = switch_mac
        #: channels reserved but awaiting the destination's verdict,
        #: keyed by channel ID; values remember the requesting source.
        self._awaiting_destination: dict[int, tuple[RTChannel, RequestFrame]] = {}
        self.decisions: list[AdmissionDecision] = []

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def pending_offers(self) -> int:
        """Channels reserved but not yet confirmed by their destination."""
        return len(self._awaiting_destination)

    # -- request path -----------------------------------------------------

    def handle_request(self, request: RequestFrame) -> list[SignalAction]:
        """Process a source node's RequestFrame (steps 2-4 above)."""
        source = self._directory.by_mac(request.source_mac)
        destination = self._directory.by_mac(request.destination_mac)
        spec = ChannelSpec(
            period=request.period,
            capacity=request.capacity,
            deadline=request.deadline,
        )
        decision = self._admission.request(source.name, destination.name, spec)
        self.decisions.append(decision)
        if not decision.accepted:
            reject = ResponseFrame(
                connect_request_id=request.connect_request_id,
                rt_channel_id=0,
                switch_mac=self._switch_mac,
                ok=False,
            )
            return [SignalAction(target=source.name, frame=reject)]
        channel = decision.channel
        stamped = request.with_channel_id(channel.channel_id)
        self._awaiting_destination[channel.channel_id] = (channel, stamped)
        channel.state = ChannelState.OFFERED
        return [SignalAction(target=destination.name, frame=stamped)]

    # -- response path ------------------------------------------------------

    def handle_response(self, response: ResponseFrame) -> list[SignalAction]:
        """Process the destination's ResponseFrame (step 5 above)."""
        pending = self._awaiting_destination.pop(response.rt_channel_id, None)
        if pending is None:
            raise ProtocolError(
                f"response for channel {response.rt_channel_id}, which is "
                "not awaiting a destination verdict"
            )
        channel, request = pending
        source = self._directory.by_mac(request.source_mac)
        forwarded = ResponseFrame(
            connect_request_id=request.connect_request_id,
            rt_channel_id=channel.channel_id,
            switch_mac=self._switch_mac,
            ok=response.ok,
        )
        if not response.ok:
            self._admission.release(channel.channel_id)
            channel.state = ChannelState.REJECTED
            return [SignalAction(target=source.name, frame=forwarded)]
        channel.state = ChannelState.ACTIVE
        grant = ChannelGrant(
            channel_id=channel.channel_id,
            source=channel.source,
            destination=channel.destination,
            spec=channel.spec,
            uplink_deadline_slots=channel.uplink_deadline,
        )
        return [SignalAction(target=source.name, frame=forwarded, grant=grant)]

    # -- teardown path --------------------------------------------------------

    def handle_teardown(self, teardown: TeardownFrame) -> list[SignalAction]:
        """Release an active channel (extension; see frames module).

        Fire-and-forget: the source already dropped its grant before
        sending the teardown, so no confirmation flows back (a stray
        confirmation would collide with the connect-request ID space --
        the paper defines no release handshake at all).
        """
        self._admission.release(teardown.rt_channel_id)
        return []

    # -- forwarding-plane lookups -----------------------------------------------

    def destination_of(self, channel_id: int) -> str:
        """Where the forwarding plane should send frames of ``channel_id``."""
        return self._admission.state.channel(channel_id).destination
