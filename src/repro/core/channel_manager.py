"""Switch-side RT channel management (Section 18.2.2, Figure 18.2).

The *RT channel management software* in the switch mediates every
channel establishment:

1. receive a RequestFrame from a source node;
2. run admission control (feasibility on uplink and downlink with the
   DPS-chosen deadline partition);
3. on failure, answer the source directly with a negative ResponseFrame
   ("the RequestFrame is not forwarded to the destination node");
4. on success, reserve the channel, stamp the network-unique RT channel
   ID into the request and forward it to the destination;
5. receive the destination's ResponseFrame; if the destination declines,
   release the reservation; either way forward the verdict to the
   source, attaching the :class:`~repro.core.rt_layer.ChannelGrant` on
   acceptance so the source learns its ``d_iu``.

This class is pure protocol logic: it consumes decoded frames and
returns :class:`SignalAction` records naming which node should receive
which frame. The network-layer :class:`~repro.network.switch.Switch`
turns the actions into Ethernet frames on the right output ports, and
unit tests drive the manager directly with no simulator at all.

The reservation is taken *before* the destination answers (step 4), so
two racing requests can never both pass feasibility into the same
capacity; a declined offer releases it (step 5). This resolves a race
the paper does not discuss but any implementation must.

Loss tolerance
--------------
On lossy wires the manager must survive three situations the error-free
paper never meets:

* a **lost destination response** strands the step-4 reservation; with
  ``lease_ns`` set, every pending offer carries a sim-time expiry and
  :meth:`reclaim_expired` releases the capacity back to admission
  control (counted as ``signal.lease_reclaims``);
* a **retransmitted RequestFrame** must not run admission twice --
  duplicates of a still-pending offer re-forward the stamped offer (and
  refresh its lease), duplicates of an already-decided request are
  re-answered from a bounded completed-verdict cache so the source
  eventually hears the verdict even when the first response was lost;
* **stale/duplicate ResponseFrames and TeardownFrames** (for channels
  already resolved or released) are absorbed and counted
  (``signal.stale_frames``), never raised.

With ``lease_ns=None`` (the default) every one of these behaviours is
disabled and the manager is byte-for-byte the paper's error-free state
machine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ProtocolError, UnknownChannelError
from ..protocol.frames import RequestFrame, ResponseFrame, TeardownFrame
from .admission import AdmissionController, AdmissionDecision
from .channel import ChannelSpec, ChannelState, RTChannel
from .rt_layer import ChannelGrant

__all__ = ["NodeDirectory", "SignalAction", "SwitchChannelManager"]

#: How long a completed verdict stays re-answerable (sim ns) when leases
#: are enabled and no explicit ``response_cache_ns`` was configured.
#: Source retry schedules must finish within this window.
DEFAULT_RESPONSE_CACHE_NS = 1_000_000_000

#: Completed-verdict cache capacity (entries); oldest evicted first.
_RESPONSE_CACHE_MAX = 4096


@dataclass(frozen=True, slots=True)
class NodeAddress:
    """MAC/IP pair registered for one end node."""

    name: str
    mac: int
    ip: int


class NodeDirectory:
    """Name <-> address resolution for the switch.

    The signalling frames carry MAC and IP addresses (Figure 18.3); the
    admission machinery works with node names. Registration happens when
    the topology is built -- the paper's system state ``{N, K}`` lists
    connected nodes explicitly.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, NodeAddress] = {}
        self._by_mac: dict[int, NodeAddress] = {}

    def register(self, name: str, mac: int, ip: int) -> None:
        if name in self._by_name:
            raise ProtocolError(f"node {name!r} is already registered")
        if mac in self._by_mac:
            raise ProtocolError(
                f"MAC {mac:#014x} is already registered to "
                f"{self._by_mac[mac].name!r}"
            )
        address = NodeAddress(name=name, mac=mac, ip=ip)
        self._by_name[name] = address
        self._by_mac[mac] = address

    def by_name(self, name: str) -> NodeAddress:
        address = self._by_name.get(name)
        if address is None:
            raise ProtocolError(f"unknown node name {name!r}")
        return address

    def by_mac(self, mac: int) -> NodeAddress:
        address = self._by_mac.get(mac)
        if address is None:
            raise ProtocolError(f"unknown MAC address {mac:#014x}")
        return address

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))


@dataclass(frozen=True, slots=True)
class SignalAction:
    """One frame the switch should emit toward one node.

    ``grant`` is attached on the final positive response to the source
    (management metadata riding in the response's padding; see
    :mod:`repro.core.rt_layer`).
    """

    target: str
    frame: RequestFrame | ResponseFrame | TeardownFrame
    grant: ChannelGrant | None = None


@dataclass(slots=True)
class _PendingOffer:
    """One channel reserved but awaiting the destination's verdict."""

    channel: RTChannel
    #: the stamped request forwarded to the destination (kept verbatim
    #: so a retransmitted source request re-forwards the same offer).
    request: RequestFrame
    #: sim time at which the reservation lease expires (None = forever).
    expires_at: int | None


@dataclass(slots=True)
class _CompletedVerdict:
    """The final answer for one decided logical request, re-answerable."""

    ok: bool
    channel_id: int
    grant: ChannelGrant | None
    #: sim time after which a same-keyed request is treated as *new*.
    expires_at: int
    #: (destination_mac, period, capacity, deadline) of the request that
    #: produced this verdict. A node that reuses a connect-request ID
    #: under churn produces the *same* cache key for a *different*
    #: logical request; the fingerprint tells them apart so the stale
    #: verdict is flushed instead of re-answered. ``None`` only for
    #: verdicts imported from pre-fingerprint snapshots (treated as
    #: matching, preserving the old behaviour for old data).
    fingerprint: tuple[int, int, int, int] | None = None


class SwitchChannelManager:
    """The establishment/teardown state machine around admission control.

    Parameters
    ----------
    admission:
        The switch's admission controller (owns the system state).
    directory:
        Address resolution for the connected nodes.
    switch_mac:
        The switch's own MAC, written into every ResponseFrame it
        originates (Figure 18.4's source field).
    lease_ns:
        Reservation-lease duration. ``None`` (default) disables every
        loss-tolerance behaviour (see module docstring); the network
        layer is then responsible for never losing signalling frames.
    response_cache_ns:
        How long completed verdicts stay re-answerable for duplicate
        requests. Defaults to :data:`DEFAULT_RESPONSE_CACHE_NS` when
        leases are enabled, disabled otherwise.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, ``signal.lease_reclaims``, ``signal.stale_frames``
        (site="switch") and ``signal.duplicate_requests`` are pre-bound
        so the per-frame cost is one ``is not None`` check.
    """

    def __init__(
        self,
        admission: AdmissionController,
        directory: NodeDirectory,
        switch_mac: int,
        *,
        lease_ns: int | None = None,
        response_cache_ns: int | None = None,
        metrics=None,
    ) -> None:
        if lease_ns is not None and lease_ns <= 0:
            raise ProtocolError(f"lease_ns must be positive, got {lease_ns}")
        if response_cache_ns is None and lease_ns is not None:
            response_cache_ns = DEFAULT_RESPONSE_CACHE_NS
        if response_cache_ns is not None and response_cache_ns <= 0:
            raise ProtocolError(
                f"response_cache_ns must be positive, got {response_cache_ns}"
            )
        self._admission = admission
        self._directory = directory
        self._switch_mac = switch_mac
        self._lease_ns = lease_ns
        self._response_cache_ns = response_cache_ns
        #: channels reserved but awaiting the destination's verdict,
        #: keyed by channel ID.
        self._awaiting_destination: dict[int, _PendingOffer] = {}
        #: (source MAC, connect request ID) -> channel ID of the pending
        #: offer, so a retransmitted request finds its reservation.
        self._offer_by_request: dict[tuple[int, int], int] = {}
        #: decided logical requests, re-answerable while fresh; ordered
        #: oldest-first for O(1) expiry/eviction.
        self._completed: OrderedDict[tuple[int, int], _CompletedVerdict] = (
            OrderedDict()
        )
        self.decisions: list[AdmissionDecision] = []
        # loss-tolerance statistics (plain ints; always maintained)
        self.stale_frames = 0
        self.lease_reclaims = 0
        self.duplicate_requests = 0
        #: lease reclaims that found the capacity already released by a
        #: racing teardown (counted, never raised; see reclaim_expired).
        self.reclaim_races = 0
        # optional pre-bound registry counters (None = no telemetry)
        if metrics is not None:
            self._m_stale = metrics.counter(
                "signal.stale_frames",
                help="duplicate/stale signalling frames absorbed",
                labels=("site",),
            ).labels("switch")
            self._m_reclaims = metrics.counter(
                "signal.lease_reclaims",
                help="reservations reclaimed after lease expiry",
            ).labels()
            self._m_duplicates = metrics.counter(
                "signal.duplicate_requests",
                help="retransmitted RequestFrames answered without "
                "re-running admission",
            ).labels()
        else:
            self._m_stale = None
            self._m_reclaims = None
            self._m_duplicates = None

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def pending_offers(self) -> int:
        """Channels reserved but not yet confirmed by their destination."""
        return len(self._awaiting_destination)

    @property
    def lease_ns(self) -> int | None:
        return self._lease_ns

    def pending_offer_leases(self) -> tuple[tuple[int, int], ...]:
        """``(channel_id, lease_expiry_ns)`` of every leased pending offer.

        Sorted by channel ID for determinism. Offers without a lease
        (``lease_ns=None``) are omitted -- they cannot leak by
        construction because the error-free state machine always
        resolves them. The invariant monitor polls this to assert no
        expiry lies in the past.
        """
        return tuple(
            (channel_id, offer.expires_at)
            for channel_id, offer in sorted(
                self._awaiting_destination.items()
            )
            if offer.expires_at is not None
        )

    # -- request path -----------------------------------------------------

    def handle_request(
        self, request: RequestFrame, now: int = 0
    ) -> list[SignalAction]:
        """Process a source node's RequestFrame (steps 2-4 above).

        ``now`` is the switch's sim clock; it stamps lease expiries and
        ages the completed-verdict cache. The default keeps direct
        (simulator-less) unit-test drives working unchanged.
        """
        self._purge_completed(now)
        source = self._directory.by_mac(request.source_mac)
        destination = self._directory.by_mac(request.destination_mac)
        key = (request.source_mac, request.connect_request_id)
        # A retransmission of an offer still awaiting its destination:
        # re-forward the identical stamped offer, refresh the lease, and
        # do NOT run admission again (the reservation already exists).
        offered_id = self._offer_by_request.get(key)
        if offered_id is not None:
            offer = self._awaiting_destination[offered_id]
            if offer.expires_at is not None:
                offer.expires_at = now + self._lease_ns
            self.duplicate_requests += 1
            if self._m_duplicates is not None:
                self._m_duplicates.inc()
            return [SignalAction(target=destination.name, frame=offer.request)]
        # A retransmission of an already-decided request: re-answer from
        # the cache (the first final response was evidently lost). A
        # cached verdict whose fingerprint does not match the incoming
        # parameters is a *reused* request ID carrying a new logical
        # request -- flush it and run fresh admission below.
        verdict = self._completed.get(key)
        if verdict is not None and not self._fingerprint_matches(
            verdict, request
        ):
            del self._completed[key]
            verdict = None
        if verdict is not None:
            self.duplicate_requests += 1
            if self._m_duplicates is not None:
                self._m_duplicates.inc()
            reply = ResponseFrame(
                connect_request_id=request.connect_request_id,
                rt_channel_id=verdict.channel_id if verdict.ok else 0,
                switch_mac=self._switch_mac,
                ok=verdict.ok,
            )
            return [
                SignalAction(
                    target=source.name, frame=reply, grant=verdict.grant
                )
            ]
        spec = ChannelSpec(
            period=request.period,
            capacity=request.capacity,
            deadline=request.deadline,
        )
        decision = self._admission.request(source.name, destination.name, spec)
        self.decisions.append(decision)
        if not decision.accepted:
            self._record_verdict(
                key,
                ok=False,
                channel_id=0,
                grant=None,
                now=now,
                fingerprint=self._fingerprint_of(request),
            )
            reject = ResponseFrame(
                connect_request_id=request.connect_request_id,
                rt_channel_id=0,
                switch_mac=self._switch_mac,
                ok=False,
            )
            return [SignalAction(target=source.name, frame=reject)]
        channel = decision.channel
        stamped = request.with_channel_id(channel.channel_id)
        expires = None if self._lease_ns is None else now + self._lease_ns
        self._awaiting_destination[channel.channel_id] = _PendingOffer(
            channel=channel, request=stamped, expires_at=expires
        )
        self._offer_by_request[key] = channel.channel_id
        channel.state = ChannelState.OFFERED
        return [SignalAction(target=destination.name, frame=stamped)]

    # -- response path ------------------------------------------------------

    def handle_response(
        self, response: ResponseFrame, now: int = 0
    ) -> list[SignalAction]:
        """Process the destination's ResponseFrame (step 5 above).

        A response for a channel that is not awaiting a verdict (already
        resolved, or its lease was reclaimed) is absorbed and counted,
        not raised: on lossy wires with retransmission it is expected
        network behaviour, and duplicated verdicts are already handled
        idempotently on the source side.
        """
        self._purge_completed(now)
        pending = self._awaiting_destination.pop(response.rt_channel_id, None)
        if pending is None:
            self.stale_frames += 1
            if self._m_stale is not None:
                self._m_stale.inc()
            return []
        channel, request = pending.channel, pending.request
        del self._offer_by_request[
            (request.source_mac, request.connect_request_id)
        ]
        key = (request.source_mac, request.connect_request_id)
        source = self._directory.by_mac(request.source_mac)
        forwarded = ResponseFrame(
            connect_request_id=request.connect_request_id,
            rt_channel_id=channel.channel_id,
            switch_mac=self._switch_mac,
            ok=response.ok,
        )
        if not response.ok:
            self._admission.release(channel.channel_id)
            channel.state = ChannelState.REJECTED
            self._record_verdict(
                key,
                ok=False,
                channel_id=0,
                grant=None,
                now=now,
                fingerprint=self._fingerprint_of(request),
            )
            return [SignalAction(target=source.name, frame=forwarded)]
        channel.state = ChannelState.ACTIVE
        grant = ChannelGrant(
            channel_id=channel.channel_id,
            source=channel.source,
            destination=channel.destination,
            spec=channel.spec,
            uplink_deadline_slots=channel.uplink_deadline,
        )
        self._record_verdict(
            key,
            ok=True,
            channel_id=channel.channel_id,
            grant=grant,
            now=now,
            fingerprint=self._fingerprint_of(request),
        )
        return [SignalAction(target=source.name, frame=forwarded, grant=grant)]

    # -- teardown path --------------------------------------------------------

    def handle_teardown(self, teardown: TeardownFrame) -> list[SignalAction]:
        """Release an active channel (extension; see frames module).

        Fire-and-forget: the source already dropped its grant before
        sending the teardown, so no confirmation flows back (a stray
        confirmation would collide with the connect-request ID space --
        the paper defines no release handshake at all). Sources repeat
        TeardownFrames on lossy wires, so an unknown / already-released
        channel ID is absorbed and counted, never raised.

        A teardown naming a channel that is still a *pending offer* is
        also absorbed: a conforming source can only tear down a channel
        it was granted, so such a frame is a stray duplicate whose ID
        was reclaimed and reissued to a new offer. Releasing it here
        would free capacity the offer still holds -- and a subsequent
        :meth:`reclaim_expired` for the same offer would then release it
        a second time (the double-release race this guard closes).
        """
        if teardown.rt_channel_id in self._awaiting_destination:
            self.stale_frames += 1
            if self._m_stale is not None:
                self._m_stale.inc()
            return []
        try:
            self._admission.release(teardown.rt_channel_id)
        except UnknownChannelError:
            self.stale_frames += 1
            if self._m_stale is not None:
                self._m_stale.inc()
            return []
        # The channel is gone: a duplicate request for the logical
        # request that created it must not resurrect the dead grant.
        self._forget_channel_verdicts(teardown.rt_channel_id)
        return []

    # -- reservation leases -------------------------------------------------

    def reclaim_expired(self, now: int) -> tuple[int, ...]:
        """Release every pending offer whose lease expired by ``now``.

        Returns the reclaimed channel IDs (empty when leases are off or
        nothing expired). A late destination response for a reclaimed
        channel is subsequently absorbed as stale; a retransmitted
        source request re-runs admission from scratch.
        """
        expired = [
            channel_id
            for channel_id, offer in self._awaiting_destination.items()
            if offer.expires_at is not None and now >= offer.expires_at
        ]
        for channel_id in expired:
            offer = self._awaiting_destination.pop(channel_id)
            del self._offer_by_request[
                (offer.request.source_mac, offer.request.connect_request_id)
            ]
            try:
                self._admission.release(channel_id)
            except UnknownChannelError:
                # An in-flight teardown (or another release path) beat
                # this reclaim to the capacity. Count the race; raising
                # here would tear the whole service down over a frame
                # ordering the protocol explicitly tolerates.
                self.reclaim_races += 1
            offer.channel.state = ChannelState.REJECTED
            self.lease_reclaims += 1
            if self._m_reclaims is not None:
                self._m_reclaims.inc()
        return tuple(expired)

    # -- completed-verdict cache ---------------------------------------------

    @staticmethod
    def _fingerprint_of(request: RequestFrame) -> tuple[int, int, int, int]:
        """The identity of a *logical* request behind a cache key."""
        return (
            request.destination_mac,
            request.period,
            request.capacity,
            request.deadline,
        )

    @classmethod
    def _fingerprint_matches(
        cls, verdict: _CompletedVerdict, request: RequestFrame
    ) -> bool:
        if verdict.fingerprint is None:
            return True  # pre-fingerprint snapshot entry
        return verdict.fingerprint == cls._fingerprint_of(request)

    def _record_verdict(
        self,
        key: tuple[int, int],
        *,
        ok: bool,
        channel_id: int,
        grant: ChannelGrant | None,
        now: int,
        fingerprint: tuple[int, int, int, int] | None = None,
    ) -> None:
        if self._response_cache_ns is None:
            return
        self._completed.pop(key, None)
        self._completed[key] = _CompletedVerdict(
            ok=ok,
            channel_id=channel_id,
            grant=grant,
            expires_at=now + self._response_cache_ns,
            fingerprint=fingerprint,
        )
        while len(self._completed) > _RESPONSE_CACHE_MAX:
            self._completed.popitem(last=False)

    def _purge_completed(self, now: int) -> None:
        while self._completed:
            key, verdict = next(iter(self._completed.items()))
            if now < verdict.expires_at:
                break
            del self._completed[key]

    def _forget_channel_verdicts(self, channel_id: int) -> None:
        if not self._completed:
            return
        dead = [
            key
            for key, verdict in self._completed.items()
            if verdict.ok and verdict.channel_id == channel_id
        ]
        for key in dead:
            del self._completed[key]

    # -- persistence ---------------------------------------------------------

    def export_signalling_state(self) -> dict:
        """Serialize the in-flight signalling state for a snapshot.

        Covers everything a switch reboot would otherwise forget: the
        pending offers (reserved channels still awaiting the
        destination's ResponseFrame, with their lease expiries and the
        stamped request frames needed to re-forward on a retransmit),
        the completed-verdict cache (in eviction order, so duplicate
        suppression behaves identically after restore), and the
        loss-tolerance counters. Configuration (``lease_ns``,
        ``response_cache_ns``, ``switch_mac``) is recorded for
        cross-checking at import time -- it is code-supplied, not
        restored.
        """
        offers = []
        for channel_id in sorted(self._awaiting_destination):
            offer = self._awaiting_destination[channel_id]
            request = offer.request
            offers.append(
                {
                    "channel_id": channel_id,
                    "expires_at": offer.expires_at,
                    "request": {
                        "connect_request_id": request.connect_request_id,
                        "rt_channel_id": request.rt_channel_id,
                        "source_mac": request.source_mac,
                        "destination_mac": request.destination_mac,
                        "source_ip": request.source_ip,
                        "destination_ip": request.destination_ip,
                        "period": request.period,
                        "capacity": request.capacity,
                        "deadline": request.deadline,
                    },
                }
            )
        completed = []
        for key, verdict in self._completed.items():
            grant = verdict.grant
            completed.append(
                {
                    "source_mac": key[0],
                    "connect_request_id": key[1],
                    "ok": verdict.ok,
                    "channel_id": verdict.channel_id,
                    "expires_at": verdict.expires_at,
                    "fingerprint": None
                    if verdict.fingerprint is None
                    else list(verdict.fingerprint),
                    "grant": None
                    if grant is None
                    else {
                        "channel_id": grant.channel_id,
                        "source": grant.source,
                        "destination": grant.destination,
                        "period": grant.spec.period,
                        "capacity": grant.spec.capacity,
                        "deadline": grant.spec.deadline,
                        "uplink_deadline_slots": grant.uplink_deadline_slots,
                    },
                }
            )
        return {
            "switch_mac": self._switch_mac,
            "lease_ns": self._lease_ns,
            "response_cache_ns": self._response_cache_ns,
            "pending_offers": offers,
            "completed": completed,
            "counters": {
                "stale_frames": self.stale_frames,
                "lease_reclaims": self.lease_reclaims,
                "duplicate_requests": self.duplicate_requests,
                "reclaim_races": self.reclaim_races,
            },
        }

    def import_signalling_state(self, data: dict) -> None:
        """Rebuild the signalling state from :meth:`export_signalling_state`.

        The manager must be freshly constructed around the *restored*
        admission controller (pending offers reference its channel
        objects by ID) with the same configuration the snapshot was
        taken under; a config mismatch is refused because lease and
        cache expiries stamped under one timing regime are meaningless
        under another.
        """
        from ..errors import ConfigurationError

        for field in ("switch_mac", "lease_ns", "response_cache_ns"):
            recorded = data.get(field)
            configured = getattr(self, f"_{field}")
            if recorded != configured:
                raise ConfigurationError(
                    f"signalling snapshot was taken with {field}="
                    f"{recorded!r} but this manager is configured with "
                    f"{configured!r}; construct the manager with the "
                    f"snapshot's configuration before importing"
                )
        if self._awaiting_destination or self._completed:
            raise ConfigurationError(
                "import_signalling_state requires a fresh manager "
                "(pending offers or cached verdicts already present)"
            )
        for record in data.get("pending_offers", ()):
            channel_id = record["channel_id"]
            channel = self._admission.state.channel(channel_id)
            channel.state = ChannelState.OFFERED
            request = RequestFrame(**record["request"])
            self._awaiting_destination[channel_id] = _PendingOffer(
                channel=channel,
                request=request,
                expires_at=record["expires_at"],
            )
            self._offer_by_request[
                (request.source_mac, request.connect_request_id)
            ] = channel_id
        for record in data.get("completed", ()):
            grant_data = record["grant"]
            grant = (
                None
                if grant_data is None
                else ChannelGrant(
                    channel_id=grant_data["channel_id"],
                    source=grant_data["source"],
                    destination=grant_data["destination"],
                    spec=ChannelSpec(
                        period=grant_data["period"],
                        capacity=grant_data["capacity"],
                        deadline=grant_data["deadline"],
                    ),
                    uplink_deadline_slots=grant_data[
                        "uplink_deadline_slots"
                    ],
                )
            )
            fingerprint = record.get("fingerprint")
            self._completed[
                (record["source_mac"], record["connect_request_id"])
            ] = _CompletedVerdict(
                ok=record["ok"],
                channel_id=record["channel_id"],
                grant=grant,
                expires_at=record["expires_at"],
                fingerprint=None if fingerprint is None else tuple(fingerprint),
            )
        counters = data.get("counters", {})
        self.stale_frames = int(counters.get("stale_frames", 0))
        self.lease_reclaims = int(counters.get("lease_reclaims", 0))
        self.duplicate_requests = int(counters.get("duplicate_requests", 0))
        self.reclaim_races = int(counters.get("reclaim_races", 0))

    # -- forwarding-plane lookups -----------------------------------------------

    def destination_of(self, channel_id: int) -> str:
        """Where the forwarding plane should send frames of ``channel_id``."""
        return self._admission.state.channel(channel_id).destination
