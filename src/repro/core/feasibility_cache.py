"""Incremental per-link feasibility cache: the admission fast path.

Admission control (Section 18.3.2) answers one question per affected
link: *is the installed task set plus this one candidate still
EDF-feasible?* The from-scratch test (:func:`repro.core.feasibility.is_feasible`)
recomputes the utilization sum, the busy-period fixpoint, the control
points and the demand function for the whole task set on every call,
which makes a Figure 18.5 sweep quadratic-plus in admitted channels.
This module keeps, per :class:`~repro.core.task.LinkRef`, everything the
test needs in incremental form:

* the task list and parallel plain-int lists of periods / capacities /
  deadlines (allocation-free scalar overlay checks; NumPy views are
  built transiently for vectorized base rebuilds),
* the exact utilization as a running :class:`fractions.Fraction`,
* the cached busy period, reused as a **warm start** for the candidate
  overlay's fixpoint iteration,
* the cached, sorted control-point and demand arrays of the *installed*
  set, so an overlay only evaluates what the candidate can change, and
* a verdict memo keyed by the candidate's ``(P, C, d)``, invalidated on
  every install/release, which makes the saturated tail of an
  acceptance sweep (hundreds of identical rejected requests) O(1).

The overlay exploits two facts proved in THEORY.md §7:

1. If the installed set is feasible then ``h(t) <= t`` holds for *all*
   ``t`` (not only within the checked busy period), so a candidate with
   relative deadline ``d`` can only create a violation at control
   points ``t >= d`` -- everything below ``d`` is skipped.
2. The busy period is monotone in the task set, so the installed set's
   busy period is a valid warm start (lower bound) for the overlay's
   fixpoint iteration.

A deliberate engineering note: the per-check overlay runs in *scalar*
Python over the cached sorted lists rather than through NumPy. The
admission workloads this repo reproduces have a handful of control
points per link (hyperperiod 100 in Figure 18.5), where the fixed
per-call overhead of ~15 small ndarray operations costs more than the
arithmetic it vectorizes; NumPy is kept where it wins -- the O(n x m)
base rebuilds in :meth:`LinkCacheEntry._ensure_base` and bulk demand
evaluation for large overlay point sets.

The from-scratch :func:`~repro.core.feasibility.is_feasible` is retained
unchanged as the reference; :class:`FeasibilityCache` falls back to it
whenever the cached base state is not known to be feasible (it returns
verdict-equal reports either way, as the differential campaign in
:mod:`repro.oracle.admission_diff` and the Hypothesis property tests
enforce).
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, NamedTuple, Protocol, Sequence

import numpy as np

from ..errors import ConfigurationError, UnknownChannelError
from .feasibility import (
    FeasibilityReport,
    is_feasible,
    max_busy_period_iterations,
)
from .task import LinkRef, LinkTask

__all__ = [
    "CacheStats",
    "LinkCacheEntry",
    "FeasibilityCache",
    "StateView",
]

#: Do not cache control-point/demand arrays beyond this many points; a
#: link whose installed horizon needs more falls back to the reference
#: test per check (same asymptotics as the from-scratch path).
MAX_CACHED_POINTS = 200_000

#: Switch bulk demand evaluation of freshly discovered overlay points
#: from the scalar loop to the vectorized kernel above this many points.
_VECTOR_THRESHOLD = 64

#: Density acceptance threshold. ``sum C_i / min(d_i, P_i) <= 1`` is a
#: classical *sufficient* EDF condition (h(t) <= density * t for all t,
#: see THEORY.md §7), tracked as a float running sum. The margin absorbs
#: float rounding: an inconclusive density falls through to the exact
#: demand test, so rounding can only cost a shortcut, never soundness.
_DENSITY_MARGIN = 1.0 - 1e-6

#: Global mutation clock. Every entry stamps itself with the next tick
#: on construction and on each install/release/resync, giving observers
#: (the admission controller's assessment memo) an O(1) "has anything
#: on this link changed?" test that can never confuse two different
#: task-set states -- ticks are process-unique, not per-entry counters.
_EPOCH = itertools.count()

#: Interned ``Fraction(C, P)`` terms. Admission sees few distinct
#: ``(C, P)`` pairs but adds their utilization on every check, and
#: ``Fraction.__new__`` (gcd normalization, type dispatch) is measurable
#: on the hot path. Bounded by the number of distinct pairs ever seen.
_FRACTIONS: dict[tuple[int, int], Fraction] = {}


def _utilization(capacity: int, period: int) -> Fraction:
    key = (capacity, period)
    value = _FRACTIONS.get(key)
    if value is None:
        value = Fraction(capacity, period)
        _FRACTIONS[key] = value
    return value


#: Interned utilization *sums* ``base + C/P``, keyed by the base's
#: normalized numerator/denominator and the addend pair. Every overlay
#: check performs exactly this addition and ``Fraction.__add__`` (gcd,
#: allocation) costs ~2us; the admitted utilization ladder of a link
#: revisits the same sums constantly. Bounded by a wholesale clear.
_UTIL_SUMS: dict[tuple[int, int, int, int], Fraction] = {}
_UTIL_SUMS_MAX = 1 << 16


def _util_sum(base: Fraction, capacity: int, period: int) -> Fraction:
    key = (base.numerator, base.denominator, capacity, period)
    value = _UTIL_SUMS.get(key)
    if value is None:
        if len(_UTIL_SUMS) >= _UTIL_SUMS_MAX:
            _UTIL_SUMS.clear()
        value = base + _utilization(capacity, period)
        _UTIL_SUMS[key] = value
    return value


#: Interned shortcut reports (density / utilization / Liu & Layland
#: outcomes carry no violation and no per-point diagnostics, so the
#: same few field combinations recur across links and trials). Keyed by
#: every varying field; bounded by a wholesale clear.
_REPORTS: dict[
    tuple[bool, int, int, int, bool, int], FeasibilityReport
] = {}
_REPORTS_MAX = 1 << 14


def _shortcut_report(
    feasible: bool,
    util: Fraction,
    horizon: int,
    used_ll: bool,
    points_checked: int = 0,
) -> FeasibilityReport:
    key = (
        feasible,
        util.numerator,
        util.denominator,
        horizon,
        used_ll,
        points_checked,
    )
    report = _REPORTS.get(key)
    if report is None:
        if len(_REPORTS) >= _REPORTS_MAX:
            _REPORTS.clear()
        report = FeasibilityReport(
            feasible=feasible,
            link_utilization=util,
            horizon=horizon,
            points_checked=points_checked,
            used_liu_layland=used_ll,
            violation=None,
        )
        _REPORTS[key] = report
    return report


class StateView(Protocol):
    """What the cache needs from a shared state to detect drift.

    :class:`~repro.core.admission.SystemState` satisfies this. The cache
    uses ``link_load`` as an O(1) guard before every operation and
    ``tasks_on`` to resynchronize when some caller mutated the state
    without going through the cache (e.g. a persistence restore).
    """

    def link_load(self, link: LinkRef) -> int:
        ...  # pragma: no cover - protocol

    def tasks_on(self, link: LinkRef) -> tuple[LinkTask, ...]:
        ...  # pragma: no cover - protocol


@dataclass(slots=True)
class CacheStats:
    """Observability counters for one :class:`FeasibilityCache`."""

    checks: int = 0
    memo_hits: int = 0
    incremental_checks: int = 0
    shortcut_accepts: int = 0
    full_fallbacks: int = 0
    resyncs: int = 0
    installs: int = 0
    releases: int = 0
    #: :meth:`FeasibilityCache.batch_check` invocations.
    batch_calls: int = 0
    #: Distinct un-memoized candidates evaluated through the pooled
    #: (vectorized) batch kernel. Each also counts into ``checks`` and
    #: one of the classification buckets above, exactly as a scalar
    #: check would.
    batch_candidates: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "memo_hits": self.memo_hits,
            "incremental_checks": self.incremental_checks,
            "shortcut_accepts": self.shortcut_accepts,
            "full_fallbacks": self.full_fallbacks,
            "resyncs": self.resyncs,
            "installs": self.installs,
            "releases": self.releases,
            "batch_calls": self.batch_calls,
            "batch_candidates": self.batch_candidates,
        }

    def publish(self, registry, prefix: str = "feasibility_cache.") -> None:
        """Mirror these counters into a metrics registry as gauges.

        Registers a snapshot-time collector on ``registry`` (a
        :class:`~repro.obs.registry.MetricsRegistry`), so the hot-path
        counters stay plain integer fields and the registry reads them
        only when a snapshot is taken. For summing over *several* caches
        (one per trial in a sweep) use
        :meth:`repro.obs.Telemetry.track_cache` instead, which shares
        one set of gauges across all tracked caches.
        """
        gauges = {
            key: registry.gauge(prefix + key, help="feasibility-cache counter")
            for key in self.as_dict()
        }

        def collect() -> None:
            for key, value in self.as_dict().items():
                gauges[key].set(value)

        registry.add_collector(collect)


def _busy_period_capped(
    periods: Sequence[int], capacities: Sequence[int], start: int, cap: int
) -> int:
    """Ascend ``W(L) = sum ceil(L/P_i) C_i`` from a warm start.

    ``start`` must not exceed the least fixpoint (the busy period of any
    subset of the task set qualifies -- THEORY.md §7 -- as does 0); the
    iteration then ascends monotonically to it. Returns the least
    fixpoint, or the first iterate ``>= cap``: callers only ever use
    ``min(busy, cap)`` with ``cap`` the hyperperiod, for which both are
    interchangeable (an early-exit iterate is still a lower bound on the
    true fixpoint, so it stays a valid warm start later).

    Callers guarantee ``U <= 1``, so the capped iteration terminates.
    Plain-integer arithmetic: exact at any magnitude.
    """
    total = sum(capacities)
    if total == 0:
        return 0
    length = max(int(start), total)
    for _ in range(max_busy_period_iterations):
        if length >= cap:
            return length
        nxt = 0
        for p, c in zip(periods, capacities):
            nxt += (length + p - 1) // p * c
        if nxt == length:
            return length
        length = nxt
    raise ConfigurationError(  # pragma: no cover - unreachable for U <= 1
        "busy-period iteration failed to converge within "
        f"{max_busy_period_iterations} steps"
    )


def _points_in_range(
    deadlines: Sequence[int], periods: Sequence[int], lo: int, hi: int
) -> list[np.ndarray]:
    """Per-task control points ``d_i + m P_i`` within ``[lo, hi]``."""
    pieces: list[np.ndarray] = []
    for d, p in zip(deadlines, periods):
        first = max(0, -((d - lo) // p)) if lo > d else 0  # ceil((lo-d)/p)
        last = (hi - d) // p
        if last < first or d > hi:
            continue
        pieces.append(d + p * np.arange(first, last + 1, dtype=np.int64))
    return pieces


def _demand_at(
    deadlines: Sequence[int],
    periods: Sequence[int],
    capacities: Sequence[int],
    points: np.ndarray,
) -> np.ndarray:
    """Vectorized ``h(n, t)`` of the cached task lists at ``points``."""
    if points.size == 0 or not deadlines:
        return np.zeros(points.shape, dtype=np.int64)
    dl = np.asarray(deadlines, dtype=np.int64)
    pr = np.asarray(periods, dtype=np.int64)
    cp = np.asarray(capacities, dtype=np.int64)
    delta = points[:, None] - dl[None, :]
    jobs = np.where(delta >= 0, 1 + np.floor_divide(delta, pr[None, :]), 0)
    return jobs @ cp


class _Overlay(NamedTuple):
    """One memoized candidate-overlay result.

    ``points``/``demands`` cover every control point of the combined set
    in ``[cut, horizon]`` (``cut = min(d_cand, base_horizon + 1)``), with
    the candidate's contribution included -- exactly the suffix that an
    install must graft onto the cached base arrays. ``None`` when the
    result came from a shortcut (utilization, Liu & Layland, density) or
    a reference-test fallback; a feasible shortcut overlay with
    ``busy > 0`` still lets an install adopt the busy period even though
    there are no arrays to graft. (A NamedTuple, not a dataclass: one is
    constructed per fresh check and tuple construction is measurably
    cheaper on the admission hot path.)
    """

    report: FeasibilityReport
    busy: int
    hyper: int
    cut: int
    points: list[int] | None
    demands: list[int] | None


class LinkCacheEntry:
    """Cached incremental state of one link direction.

    Not constructed directly by users -- :class:`FeasibilityCache` owns
    entries and keeps them in sync with the shared system state.
    """

    __slots__ = (
        "link",
        "tasks",
        "plist",
        "clist",
        "dlist",
        "util",
        "fdensity",
        "cap_sum",
        "hyper",
        "min_p",
        "implicit",
        "busy",
        "horizon",
        "points",
        "demands",
        "next_pt",
        "feasible",
        "memo_f",
        "memo_i",
        "epoch",
    )

    def __init__(self, link: LinkRef, tasks: Iterable[LinkTask]) -> None:
        self.link = link
        self.tasks: list[LinkTask] = list(tasks)
        #: Verdict memos keyed by the candidate's ``(P, C, d)``, split by
        #: verdict so each invalidation rule is an O(1) ``clear()``:
        #: feasible overlays die on every install (added demand can break
        #: them), infeasible ones survive installs (demand monotonicity,
        #: THEORY.md §7) and die only on release/rebuild.
        self.memo_f: dict[tuple[int, int, int], _Overlay] = {}
        self.memo_i: dict[tuple[int, int, int], _Overlay] = {}
        self._rebuild()

    # -- bookkeeping -----------------------------------------------------

    def _rebuild(self) -> None:
        """Recompute every cached quantity from ``self.tasks``."""
        self.plist = [t.period for t in self.tasks]
        self.clist = [t.capacity for t in self.tasks]
        self.dlist = [t.deadline for t in self.tasks]
        self.util = Fraction(0)
        for task in self.tasks:
            self.util += _utilization(task.capacity, task.period)
        self.fdensity = sum(
            c / (d if d < p else p)
            for p, c, d in zip(self.plist, self.clist, self.dlist)
        )
        self.cap_sum = sum(self.clist)
        self.hyper = 1
        for period in self.plist:
            self.hyper = math.lcm(self.hyper, period)
        self.min_p = min(self.plist, default=1)
        self.implicit = sum(
            1 for t in self.tasks if t.deadline == t.period
        )
        self._mark_dirty()
        self.memo_f.clear()
        self.memo_i.clear()
        self.epoch = next(_EPOCH)

    def _mark_dirty(self) -> None:
        self.busy = None
        self.horizon = None
        self.points = None
        self.demands = None
        self.next_pt = None
        self.feasible = None

    def _compute_next_pt(self, horizon: int) -> None:
        """Earliest control point of any installed task *beyond* horizon.

        Lets the overlay check skip its horizon-growth scan in O(1): when
        the combined horizon stays below ``next_pt`` there is no base
        control point in the grown window (the usual case -- the busy
        period grows by one capacity while the next points sit a full
        period away). ``None`` when there are no tasks.
        """
        nxt: int | None = None
        for d, p in zip(self.dlist, self.plist):
            t = d if d > horizon else d + ((horizon - d) // p + 1) * p
            if nxt is None or t < nxt:
                nxt = t
        self.next_pt = nxt

    @property
    def all_implicit(self) -> bool:
        return self.implicit == len(self.tasks)

    def _ensure_base(self) -> bool:
        """Materialize busy period, horizon, points and demands.

        Returns True when the cached base arrays are usable for overlay
        checks: the installed set is feasible and its control points fit
        under :data:`MAX_CACHED_POINTS`.
        """
        if self.util.numerator > self.util.denominator:
            self.feasible = False
            return False
        if self.busy is None:
            self.busy = _busy_period_capped(
                self.plist, self.clist, 0, self.hyper
            )
            self.horizon = min(self.busy, self.hyper)
        if self.points is None:
            horizon = self.horizon
            estimated = 0
            for d, p in zip(self.dlist, self.plist):
                if d <= horizon:
                    estimated += (horizon - d) // p + 1
            if estimated > MAX_CACHED_POINTS:
                # Pathological horizon: keep correctness, drop the cache.
                self.feasible = is_feasible(self.tasks).feasible
                return False
            if estimated <= _VECTOR_THRESHOLD:
                # Scalar rebuild: below the threshold the ~15 small
                # ndarray operations of the vector path cost far more
                # than the arithmetic they replace, and rebuilds land
                # on the hot path whenever an install adopted a
                # shortcut verdict (arrays dirty, next exact check
                # rebuilds here). Each job of task i contributes C_i
                # exactly at its absolute deadline d_i + m P_i, so the
                # demand at the sorted control points is a running
                # prefix sum over those contributions -- O(jobs), not
                # O(points x tasks).
                contrib: dict[int, int] = {}
                get = contrib.get
                for d, p, c in zip(self.dlist, self.plist, self.clist):
                    t = d
                    while t <= horizon:
                        contrib[t] = get(t, 0) + c
                        t += p
                points_l = sorted(contrib)
                demands_l: list[int] = []
                feasible = True
                running = 0
                for t in points_l:
                    running += contrib[t]
                    demands_l.append(running)
                    if running > t:
                        feasible = False
                self.feasible = feasible
                self.points = points_l
                self.demands = demands_l
                self._compute_next_pt(horizon)
                return feasible
            pieces = _points_in_range(self.dlist, self.plist, 0, horizon)
            if pieces:
                points = np.unique(np.concatenate(pieces))
                demands = _demand_at(
                    self.dlist, self.plist, self.clist, points
                )
                self.feasible = bool(np.all(demands <= points))
                self.points = points.tolist()
                self.demands = demands.tolist()
            else:
                self.points = []
                self.demands = []
                self.feasible = True
            self._compute_next_pt(horizon)
        return bool(self.feasible)

    # -- the overlay check -----------------------------------------------

    def _base_demand_at(self, t: int) -> int:
        """Scalar ``h(t)`` of the installed set (no candidate)."""
        total = 0
        for p, c, d in zip(self.plist, self.clist, self.dlist):
            if t >= d:
                total += (1 + (t - d) // p) * c
        return total

    def _shortcut_overlay(
        self, util: Fraction, cand_p: int, cand_c: int, cand_d: int
    ) -> _Overlay | None:
        """Branches that decide without the cached base arrays.

        Utilization overload, the all-implicit Liu & Layland accept and
        the density sufficient accept; ``None`` means "inconclusive,
        run the exact overlay". Shared verbatim by the scalar
        :meth:`overlay_check` and :meth:`batch_overlay_check` so both
        produce field-identical overlays.
        """
        # util > 1, as a plain-int compare (Fraction.__gt__ dispatch is
        # measurable here): num/den > 1  <=>  num > den.
        if util.numerator > util.denominator:
            return _Overlay(
                report=_shortcut_report(False, util, 0, False),
                busy=0, hyper=0, cut=0, points=None, demands=None,
            )
        if self.all_implicit and cand_d == cand_p:
            return _Overlay(
                report=_shortcut_report(True, util, 0, True),
                busy=0, hyper=0, cut=0, points=None, demands=None,
            )
        # Density sufficient test: sum C/min(d, P) <= 1 proves EDF
        # feasibility outright (THEORY.md §7), turning the accept path
        # on lightly loaded links into O(n)-fixpoint-only work with no
        # point generation at all. The busy period is still computed so
        # the report's horizon matches the from-scratch test exactly.
        fdens = self.fdensity + cand_c / (
            cand_d if cand_d < cand_p else cand_p
        )
        if fdens <= _DENSITY_MARGIN:
            busy2, hyper2 = self._combined_busy(cand_p, cand_c)
            return _Overlay(
                report=_shortcut_report(
                    True, util, busy2 if busy2 < hyper2 else hyper2, False
                ),
                busy=busy2, hyper=hyper2, cut=0, points=None, demands=None,
            )
        return None

    def _fallback_overlay(self, candidate: LinkTask) -> _Overlay:
        """Reference-test overlay (base unknown-feasible or too big)."""
        return _Overlay(
            report=is_feasible(list(self.tasks) + [candidate]),
            busy=0, hyper=0, cut=0, points=None, demands=None,
        )

    def _combined_busy(self, cand_p: int, cand_c: int) -> tuple[int, int]:
        """Busy period and hyperperiod of ``tasks + [candidate]``.

        Warm-started fixpoint with the candidate folded in
        (allocation-free; see :func:`_busy_period_capped` for the
        theory). ``W_new(busy) >= busy + C_cand``, so the cached base
        busy period (when materialized) is a valid warm start.
        """
        hyper = self.hyper
        hyper2 = hyper if hyper % cand_p == 0 else math.lcm(hyper, cand_p)
        start = self.busy if self.busy is not None else 0
        length = max(start + cand_c, self.cap_sum + cand_c)
        plist = self.plist
        clist = self.clist
        for _ in range(max_busy_period_iterations):
            if length >= hyper2:
                break
            nxt = (length + cand_p - 1) // cand_p * cand_c
            for p, c in zip(plist, clist):
                nxt += (length + p - 1) // p * c
            if nxt == length:
                break
            length = nxt
        else:  # pragma: no cover - unreachable for U <= 1
            raise ConfigurationError(
                "busy-period iteration failed to converge within "
                f"{max_busy_period_iterations} steps"
            )
        return length, hyper2

    def _new_points(
        self, cand_p: int, cand_d: int, horizon2: int
    ) -> tuple[int, list[int]] | None:
        """Control points of the combined set not in the cached base.

        Returns ``(lo_idx, new_pts)`` where ``lo_idx`` is the base-array
        index of the first point ``>= cand_d`` and ``new_pts`` is the
        sorted, deduplicated list of (b) base tasks' horizon-growth
        points in ``(base_h, horizon2]`` and (c) the candidate's own
        points ``d + m P`` not coinciding with a cached base point.
        ``None`` when the size guard overflows ``MAX_CACHED_POINTS``
        (caller falls back to the reference test). Requires a
        materialized feasible base (``_ensure_base() == True``) and
        ``cand_d <= horizon2``.
        """
        base_h = self.horizon
        pts = self.points
        plist = self.plist
        lo_idx = bisect_left(pts, cand_d)

        # Size guard before generating anything: points the candidate
        # can affect plus horizon-growth points of the base tasks. Try
        # an O(1) conservative bound (min-period) first; only when that
        # overshoots the cap, pay the exact O(n) count.
        # cand_d <= horizon2 holds here, so the candidate contributes
        # at least one point.
        estimated = len(pts) - lo_idx
        estimated += (horizon2 - cand_d) // cand_p + 1
        if horizon2 > base_h and plist:
            estimated += len(plist) * (
                (horizon2 - base_h) // self.min_p + 1
            )
        if estimated > MAX_CACHED_POINTS:
            estimated = len(pts) - lo_idx
            estimated += (horizon2 - cand_d) // cand_p + 1
            if horizon2 > base_h:
                for d, p in zip(self.dlist, plist):
                    if d <= horizon2:
                        lo = max(d, base_h + 1)
                        if lo <= horizon2:
                            estimated += (horizon2 - lo) // p + 1
            if estimated > MAX_CACHED_POINTS:
                return None

        new_pts: list[int] = []
        next_pt = self.next_pt
        if (
            horizon2 > base_h
            and next_pt is not None
            and next_pt <= horizon2
        ):
            for p, d in zip(plist, self.dlist):
                if d > horizon2:
                    continue
                t = d if d > base_h else d + ((base_h - d) // p + 1) * p
                while t <= horizon2:
                    new_pts.append(t)
                    t += p
        n_pts = len(pts)
        t = cand_d
        while t <= horizon2:
            if t > base_h:
                new_pts.append(t)
            else:
                i = bisect_left(pts, t, lo_idx)
                if i >= n_pts or pts[i] != t:
                    new_pts.append(t)
            t += cand_p
        if new_pts:
            new_pts = sorted(set(new_pts))
        return lo_idx, new_pts

    def _merge_overlay(
        self,
        util: Fraction,
        cand_p: int,
        cand_c: int,
        cand_d: int,
        busy2: int,
        hyper2: int,
        lo_idx: int,
        new_pts: list[int],
        new_dems: list[int],
    ) -> _Overlay:
        """Merge region (a) with the new points (both sorted, disjoint)
        while adding the candidate's contribution and scanning for the
        first violation in global point order. The dominant shape --
        the candidate's points all coincide with cached base points
        and the horizon grew past every deadline, i.e. no new points
        at all -- gets a slice-and-comprehension fast path (every
        region-(a) point is >= cand_d by construction of lo_idx).
        """
        pts = self.points
        dems = self.demands
        horizon2 = min(busy2, hyper2)
        violation: tuple[int, int] | None = None
        if not new_pts:
            merged_pts = pts[lo_idx:]
            merged_dems = [
                base + (1 + (t - cand_d) // cand_p) * cand_c
                for t, base in zip(merged_pts, dems[lo_idx:])
            ]
            for t, h in zip(merged_pts, merged_dems):
                if h > t:
                    violation = (t, h)
                    break
        else:
            merged_pts = []
            merged_dems = []
            i, j = lo_idx, 0
            n_pts = len(pts)
            n_new = len(new_pts)
            while i < n_pts or j < n_new:
                if j >= n_new or (i < n_pts and pts[i] < new_pts[j]):
                    t = pts[i]
                    base = dems[i]
                    i += 1
                else:
                    t = new_pts[j]
                    base = new_dems[j]
                    j += 1
                if t >= cand_d:
                    h = base + (1 + (t - cand_d) // cand_p) * cand_c
                else:
                    h = base  # growth point below d: candidate adds 0
                merged_pts.append(t)
                merged_dems.append(h)
                if violation is None and h > t:
                    violation = (t, h)

        if violation is None:
            report = _shortcut_report(
                True, util, horizon2, False, len(merged_pts)
            )
        else:
            report = FeasibilityReport(
                feasible=False,
                link_utilization=util,
                horizon=horizon2,
                points_checked=len(merged_pts),
                used_liu_layland=False,
                violation=violation,
            )
        return _Overlay(
            report=report,
            busy=busy2,
            hyper=hyper2,
            cut=min(cand_d, self.horizon + 1),
            points=merged_pts,
            demands=merged_dems,
        )

    def overlay_check(self, candidate: LinkTask) -> _Overlay:
        """Feasibility of ``tasks + [candidate]``, recomputing only what
        the candidate can change. Verdict-equal to
        ``is_feasible(tasks + [candidate])`` in every field except
        ``points_checked`` (which counts the points actually evaluated).
        """
        cand_p = candidate.period
        cand_c = candidate.capacity
        cand_d = candidate.deadline
        util = _util_sum(self.util, cand_c, cand_p)
        shortcut = self._shortcut_overlay(util, cand_p, cand_c, cand_d)
        if shortcut is not None:
            return shortcut

        if not self._ensure_base():
            # Base unknown-feasible (or too big to cache): reference test.
            return self._fallback_overlay(candidate)

        busy2, hyper2 = self._combined_busy(cand_p, cand_c)
        horizon2 = min(busy2, hyper2)
        if cand_d > horizon2:
            # The candidate's first control point lies beyond the
            # combined checking horizon. Every point within it then
            # carries zero candidate demand, and the feasible base has
            # h(t) <= t at *all* t (THEORY.md §7 fact 1) -- including
            # horizon-growth points -- so no violation is possible.
            return _Overlay(
                report=_shortcut_report(True, util, horizon2, False),
                busy=busy2, hyper=hyper2, cut=0, points=None, demands=None,
            )
        sized = self._new_points(cand_p, cand_d, horizon2)
        if sized is None:
            return self._fallback_overlay(candidate)
        lo_idx, new_pts = sized
        if new_pts:
            if len(new_pts) * len(self.tasks) > _VECTOR_THRESHOLD * 64:
                new_dems = _demand_at(
                    self.dlist,
                    self.plist,
                    self.clist,
                    np.asarray(new_pts, dtype=np.int64),
                ).tolist()
            else:
                new_dems = [self._base_demand_at(t) for t in new_pts]
        else:
            new_dems = []
        return self._merge_overlay(
            util, cand_p, cand_c, cand_d, busy2, hyper2,
            lo_idx, new_pts, new_dems,
        )

    def batch_overlay_check(
        self, candidates: Sequence[LinkTask]
    ) -> list[_Overlay]:
        """Overlay-check many candidates against one frozen base state.

        Returns one overlay per candidate, each field-identical to what
        :meth:`overlay_check` would have returned for it (the property
        suite enforces this), but with the base-demand evaluation of
        every exact-path candidate pooled into a *single* vectorized
        ``h(n, t)`` pass over the union of their new control points --
        the batched Eq. 18.3 evaluation the batch admission engine is
        built on. Must not be interleaved with installs or releases on
        this entry; demand values are exact integers on both paths, so
        pooling cannot change any verdict.
        """
        results: list[_Overlay | None] = [None] * len(candidates)
        #: exact-path candidates: (index, util, p, c, d, busy2, hyper2,
        #: lo_idx, new_pts)
        exact: list[
            tuple[int, Fraction, int, int, int, int, int, int, list[int]]
        ] = []
        pool: set[int] = set()
        base_ok: bool | None = None
        for index, candidate in enumerate(candidates):
            cand_p = candidate.period
            cand_c = candidate.capacity
            cand_d = candidate.deadline
            util = _util_sum(self.util, cand_c, cand_p)
            shortcut = self._shortcut_overlay(util, cand_p, cand_c, cand_d)
            if shortcut is not None:
                results[index] = shortcut
                continue
            if base_ok is None:
                base_ok = self._ensure_base()
            if not base_ok:
                results[index] = self._fallback_overlay(candidate)
                continue
            busy2, hyper2 = self._combined_busy(cand_p, cand_c)
            horizon2 = min(busy2, hyper2)
            if cand_d > horizon2:
                results[index] = _Overlay(
                    report=_shortcut_report(True, util, horizon2, False),
                    busy=busy2, hyper=hyper2,
                    cut=0, points=None, demands=None,
                )
                continue
            sized = self._new_points(cand_p, cand_d, horizon2)
            if sized is None:
                results[index] = self._fallback_overlay(candidate)
                continue
            lo_idx, new_pts = sized
            exact.append(
                (index, util, cand_p, cand_c, cand_d,
                 busy2, hyper2, lo_idx, new_pts)
            )
            pool.update(new_pts)
        if exact:
            if pool:
                points = np.asarray(sorted(pool), dtype=np.int64)
                demands = _demand_at(
                    self.dlist, self.plist, self.clist, points
                )
                demand_of = dict(
                    zip(points.tolist(), demands.tolist())
                )
            else:
                demand_of = {}
            for (
                index, util, cand_p, cand_c, cand_d,
                busy2, hyper2, lo_idx, new_pts,
            ) in exact:
                new_dems = [demand_of[t] for t in new_pts]
                results[index] = self._merge_overlay(
                    util, cand_p, cand_c, cand_d, busy2, hyper2,
                    lo_idx, new_pts, new_dems,
                )
        return results

    # -- mutation --------------------------------------------------------

    def install(self, task: LinkTask) -> None:
        """Add ``task``; graft the memoized overlay when available."""
        overlay = self.memo_f.get(task.pcd)
        can_graft = (
            overlay is not None
            and overlay.points is not None
            and self.points is not None
        )
        if can_graft:
            idx = bisect_left(self.points, overlay.cut)
            self.points = self.points[:idx] + overlay.points
            self.demands = self.demands[:idx] + overlay.demands
            self.busy = overlay.busy
            self.horizon = min(overlay.busy, overlay.hyper)
            self.feasible = True
        elif overlay is not None and overlay.busy > 0:
            # Shortcut proof (density path): no arrays to graft, but the
            # overlay's busy period is the exact fixpoint of the combined
            # set -- adopt it, keep the proved feasibility, and leave the
            # point arrays to a lazy rebuild if ever needed.
            self._mark_dirty()
            self.busy = overlay.busy
            self.horizon = min(overlay.busy, overlay.hyper)
            self.feasible = True
        else:
            self._mark_dirty()
        self.tasks.append(task)
        self.plist.append(task.period)
        self.clist.append(task.capacity)
        self.dlist.append(task.deadline)
        self.util = _util_sum(self.util, task.capacity, task.period)
        self.fdensity += task.capacity / (
            task.deadline if task.deadline < task.period else task.period
        )
        self.cap_sum += task.capacity
        if self.hyper % task.period:
            self.hyper = math.lcm(self.hyper, task.period)
        self.min_p = (
            task.period
            if len(self.tasks) == 1
            else min(self.min_p, task.period)
        )
        if task.deadline == task.period:
            self.implicit += 1
        # Feasible verdicts are invalidated by the added demand;
        # *infeasible* ones (memo_i) survive: demand is monotone in the
        # task set (THEORY.md §7), so a candidate that overloaded the
        # link before this install still overloads it after. Keeping
        # them makes the saturated tail of a sweep O(1) per repeated
        # rejection. Their diagnostic report fields (utilization,
        # violation point) keep describing the first rejection's smaller
        # base set; the verdict is what admission consumes and it is
        # exact.
        if can_graft:
            # Grafted arrays stay live, so the growth-scan skip bound
            # must track the new horizon and the new task's points.
            self._compute_next_pt(self.horizon)
        self.memo_f.clear()
        self.epoch = next(_EPOCH)

    def release(self, channel_id: int) -> None:
        """Drop the task belonging to ``channel_id`` (exactly one)."""
        for index, task in enumerate(self.tasks):
            if task.channel_id == channel_id:
                break
        else:
            raise UnknownChannelError(
                f"channel {channel_id} has no cached task on {self.link}"
            )
        removed = self.tasks.pop(index)
        del self.plist[index]
        del self.clist[index]
        del self.dlist[index]
        self.util -= _utilization(removed.capacity, removed.period)
        # Recompute (not subtract) the float density: subtraction would
        # accumulate rounding drift over long install/release histories.
        self.fdensity = sum(
            c / (d if d < p else p)
            for p, c, d in zip(self.plist, self.clist, self.dlist)
        )
        self.cap_sum -= removed.capacity
        self.hyper = 1
        for period in self.plist:
            self.hyper = math.lcm(self.hyper, period)
        self.min_p = min(self.plist, default=1)
        if removed.deadline == removed.period:
            self.implicit -= 1
        was_feasible = self.feasible
        self._mark_dirty()
        # Removing work cannot break feasibility (demand only shrinks),
        # so a known-feasible base stays known-feasible; the arrays are
        # rebuilt lazily on the next check.
        if was_feasible:
            self.feasible = True if self.util <= 1 else None
        self.memo_f.clear()
        self.memo_i.clear()
        self.epoch = next(_EPOCH)


class FeasibilityCache:
    """Per-link incremental admission state over many links.

    Parameters
    ----------
    state:
        Optional shared :class:`StateView` (normally the controller's
        :class:`~repro.core.admission.SystemState`). When given, every
        operation first compares the state's ``link_load`` with the
        cached task count and resynchronizes the entry if some caller
        mutated the state behind the cache's back (count-preserving
        swaps are the one documented blind spot -- always mutate through
        the owning controller). When ``None`` the cache is authoritative
        (the multi-switch admission uses it this way).
    """

    def __init__(self, state: StateView | None = None) -> None:
        self._state = state
        #: Bound ``state.link_load`` (or None): the drift guard runs on
        #: every check and the two attribute hops are measurable there.
        self._state_load = state.link_load if state is not None else None
        self._entries: dict[LinkRef, LinkCacheEntry] = {}
        self.stats = CacheStats()

    # -- entry management ------------------------------------------------

    def entry(self, link: LinkRef) -> LinkCacheEntry:
        """The (synchronized) cache entry for ``link``."""
        entry = self._entries.get(link)
        if entry is None:
            tasks: Sequence[LinkTask] = (
                self._state.tasks_on(link) if self._state is not None else ()
            )
            entry = LinkCacheEntry(link, tasks)
            self._entries[link] = entry
        elif (
            self._state is not None
            and self._state.link_load(link) != len(entry.tasks)
        ):
            entry = LinkCacheEntry(link, self._state.tasks_on(link))
            self._entries[link] = entry
            self.stats.resyncs += 1
        return entry

    def epoch_of(self, link: LinkRef) -> int:
        """Current epoch of ``link``'s entry *without* the drift guard.

        For callers that just completed a guarded operation on the link
        and need a validation stamp for the state that operation saw
        (the admission controller's assessment memo). Skipping the
        guard is safe for that purpose: if the shared state drifted
        un-noticed, the stamp is merely stale -- the next guarded read
        resynchronizes and bumps the epoch past it, so anything
        validated against the stamp can only miss, never falsely hit.
        """
        entry = self._entries.get(link)
        return entry.epoch if entry is not None else self.entry(link).epoch

    def invalidate(self, link: LinkRef | None = None) -> None:
        """Forget cached state for ``link`` (or for every link)."""
        if link is None:
            self._entries.clear()
        else:
            self._entries.pop(link, None)

    # -- queries ---------------------------------------------------------

    def check(self, candidate: LinkTask) -> FeasibilityReport:
        """Would ``candidate``'s link stay feasible with it installed?

        Verdict-equal to ``is_feasible(installed + [candidate])``; see
        :meth:`LinkCacheEntry.overlay_check` for the field-level
        contract.
        """
        stats = self.stats
        stats.checks += 1
        link = candidate.link
        # Inlined self.entry(link): check() is the hottest cache call.
        entry = self._entries.get(link)
        load = self._state_load
        if entry is None or (
            load is not None and load(link) != len(entry.tasks)
        ):
            entry = self.entry(link)
        key = candidate.pcd
        overlay = entry.memo_f.get(key)
        if overlay is None:
            overlay = entry.memo_i.get(key)
        if overlay is not None:
            stats.memo_hits += 1
            return overlay.report
        overlay = entry.overlay_check(candidate)
        report = overlay.report
        if overlay.points is not None:
            stats.incremental_checks += 1
        elif report.feasible and overlay.busy > 0:
            stats.shortcut_accepts += 1
        elif report.used_liu_layland or report.link_utilization > 1:
            stats.incremental_checks += 1
        else:
            stats.full_fallbacks += 1
        if report.feasible:
            entry.memo_f[key] = overlay
        else:
            entry.memo_i[key] = overlay
        return report

    def batch_check(
        self, link: LinkRef, candidates: Sequence[LinkTask]
    ) -> list[FeasibilityReport]:
        """Feasibility of many candidates against one link, memo-seeding.

        Every candidate receives exactly the report :meth:`check` would
        return, and the per-``(P, C, d)`` verdict memos are seeded
        identically -- a later scalar ``check()`` of any of these
        candidates is a guaranteed memo hit (that is how ``admit_many``
        amortizes its prefetch). Distinct un-memoized candidates run
        through the pooled vectorized kernel
        (:meth:`LinkCacheEntry.batch_overlay_check`); each counts one
        ``check`` and classifies exactly as the scalar path would, while
        within-batch repeats count as memo hits.
        """
        stats = self.stats
        stats.batch_calls += 1
        entry = self.entry(link)
        memo_f = entry.memo_f
        memo_i = entry.memo_i
        fresh: dict[tuple[int, int, int], LinkTask] = {}
        for candidate in candidates:
            key = candidate.pcd
            if key in memo_f or key in memo_i or key in fresh:
                continue
            fresh[key] = candidate
        if fresh:
            batch = list(fresh.values())
            stats.batch_candidates += len(batch)
            overlays = entry.batch_overlay_check(batch)
            for candidate, overlay in zip(batch, overlays):
                report = overlay.report
                stats.checks += 1
                if overlay.points is not None:
                    stats.incremental_checks += 1
                elif report.feasible and overlay.busy > 0:
                    stats.shortcut_accepts += 1
                elif report.used_liu_layland or report.link_utilization > 1:
                    stats.incremental_checks += 1
                else:
                    stats.full_fallbacks += 1
                if report.feasible:
                    memo_f[candidate.pcd] = overlay
                else:
                    memo_i[candidate.pcd] = overlay
        reports: list[FeasibilityReport] = []
        pending = set(fresh)
        for candidate in candidates:
            key = candidate.pcd
            overlay = memo_f.get(key)
            if overlay is None:
                overlay = memo_i[key]
            if key in pending:
                # First occurrence of a fresh key: its stats were
                # already counted at batch-evaluation time.
                pending.discard(key)
            else:
                stats.checks += 1
                stats.memo_hits += 1
            reports.append(overlay.report)
        return reports

    def link_utilization(self, link: LinkRef) -> Fraction:
        return self.entry(link).util

    def link_load(self, link: LinkRef) -> int:
        return len(self.entry(link).tasks)

    def tasks_on(self, link: LinkRef) -> tuple[LinkTask, ...]:
        return tuple(self.entry(link).tasks)

    # -- mutation --------------------------------------------------------

    def install(self, task: LinkTask) -> None:
        """Record ``task`` as installed on its link.

        When the shared state is mutated by the same caller, install
        into the cache *first* and the state second -- the drift guard
        then sees consistent counts throughout, and a failed state
        install self-heals via resync on the next access.
        """
        self.stats.installs += 1
        self.entry(task.link).install(task)

    def release(self, link: LinkRef, channel_id: int) -> None:
        """Drop ``channel_id``'s task from ``link`` (cache first, state
        second, mirroring :meth:`install`)."""
        self.stats.releases += 1
        self.entry(link).release(channel_id)
