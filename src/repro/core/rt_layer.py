"""The end-node RT layer: channel table, segmentation, header mangling.

Figure 18.2 positions a thin *RT layer* between the Ethernet MAC and the
TCP/IP suite of every end node. On the sending side it is responsible
for:

* keeping the table of established channels this node sends on,
  including the uplink deadline part ``d_iu`` the switch's DPS chose at
  admission time (delivered in the channel grant);
* segmenting each periodic message of ``C_i`` timeslots into ``C_i``
  maximum-sized frames;
* writing the mangled IP header -- the 48-bit **end-to-end absolute
  deadline** and the channel ID -- into every frame
  (:mod:`repro.protocol.headers`), which is all the switch needs to
  EDF-schedule the downlink without per-channel state on its fast path;
* handing the frames to the uplink output port together with the
  *uplink* absolute deadline (``release + d_iu``) used locally for EDF
  ordering toward the switch.

The grant metadata (:class:`ChannelGrant`) is how the source node learns
``d_iu``: the published ResponseFrame format (Figure 18.4) has no field
for it, and the paper leaves the management-plane content abstract. In a
real implementation the grant travels in the response frame's mandatory
Ethernet padding (a 81-bit response rides in a 46-byte minimum payload,
leaving ample room); the simulator attaches it as structured metadata to
the same frame. See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProtocolError, UnknownChannelError
from ..protocol.ethernet import EthernetFrame, FrameKind
from ..protocol.headers import encode_rt_header
from ..sim.trace import TraceRecorder
from ..units import ETH_MAX_PAYLOAD
from .channel import ChannelSpec

__all__ = ["ChannelGrant", "OutgoingFrame", "RTLayer"]


@dataclass(frozen=True, slots=True)
class ChannelGrant:
    """Management-plane record of one established channel (sender view).

    Attributes
    ----------
    channel_id:
        Network-unique RT channel ID assigned by the switch (>= 1; the
        value 0 means "not valid" on the wire).
    source, destination:
        End-node names.
    spec:
        The admitted ``{P, C, d}`` triple, in timeslots.
    uplink_deadline_slots:
        ``d_iu`` chosen by the switch's DPS; the source node uses it for
        its local EDF queue.
    """

    channel_id: int
    source: str
    destination: str
    spec: ChannelSpec
    uplink_deadline_slots: int

    def __post_init__(self) -> None:
        if self.channel_id <= 0:
            raise ProtocolError(
                f"channel grant carries invalid channel ID {self.channel_id}"
            )
        if not (0 < self.uplink_deadline_slots < self.spec.deadline):
            raise ProtocolError(
                f"grant uplink deadline {self.uplink_deadline_slots} is not "
                f"inside (0, {self.spec.deadline})"
            )


@dataclass(frozen=True, slots=True)
class OutgoingFrame:
    """One RT frame ready for the uplink queue, with its local EDF key."""

    frame: EthernetFrame
    uplink_deadline_ns: int


class RTLayer:
    """Sender-side RT layer state of one end node.

    Parameters
    ----------
    node_name:
        The owning node (source written into outgoing frames).
    slot_ns:
        Duration of one timeslot, for converting the grant's slot-based
        deadlines into simulator nanoseconds.
    trace:
        Optional recorder; message segmentation emits ``rt.emit``
        records (the birth event of every RT frame's lifecycle).
    """

    def __init__(
        self,
        node_name: str,
        slot_ns: int,
        trace: TraceRecorder | None = None,
    ) -> None:
        if slot_ns <= 0:
            raise ProtocolError(f"slot_ns must be positive, got {slot_ns}")
        self._node = node_name
        self._slot_ns = slot_ns
        self._trace = trace if trace is not None else TraceRecorder()
        #: optional :class:`~repro.obs.spans.SpanTracker` (set by the
        #: telemetry bundle); every hook is gated on ``is not None``.
        self.spans = None
        self._grants: dict[int, ChannelGrant] = {}
        self._message_seq: dict[int, int] = {}

    @property
    def node_name(self) -> str:
        return self._node

    @property
    def slot_ns(self) -> int:
        """Timeslot duration this layer converts grant deadlines with."""
        return self._slot_ns

    @property
    def grants(self) -> dict[int, ChannelGrant]:
        """Established sending channels, keyed by channel ID (copy)."""
        return dict(self._grants)

    def install_grant(self, grant: ChannelGrant) -> None:
        """Record an established channel this node may send on."""
        if grant.source != self._node:
            raise ProtocolError(
                f"grant for source {grant.source!r} installed on node "
                f"{self._node!r}"
            )
        if grant.channel_id in self._grants:
            raise ProtocolError(
                f"channel {grant.channel_id} is already installed on "
                f"{self._node!r}"
            )
        self._grants[grant.channel_id] = grant
        self._message_seq[grant.channel_id] = 0

    def remove_grant(self, channel_id: int) -> ChannelGrant:
        """Forget a torn-down channel."""
        grant = self._grants.pop(channel_id, None)
        if grant is None:
            raise UnknownChannelError(
                f"node {self._node!r} has no channel {channel_id}"
            )
        self._message_seq.pop(channel_id, None)
        return grant

    def emit_message(self, channel_id: int, release_ns: int) -> list[OutgoingFrame]:
        """Segment one periodic message into ``C`` deadline-stamped frames.

        Every frame of the message carries the same end-to-end absolute
        deadline ``release + d_i`` in its mangled header and the same
        uplink EDF key ``release + d_iu``; a message is ``C_i`` timeslots
        of data, i.e. ``C_i`` maximum-sized frames (the paper's unit of
        capacity).

        Parameters
        ----------
        channel_id:
            An installed channel.
        release_ns:
            The message's release (generation) time.
        """
        grant = self._grants.get(channel_id)
        if grant is None:
            raise UnknownChannelError(
                f"node {self._node!r} cannot send on unknown channel "
                f"{channel_id}"
            )
        seq = self._message_seq[channel_id]
        self._message_seq[channel_id] = seq + 1
        end_to_end_deadline = release_ns + grant.spec.deadline * self._slot_ns
        uplink_deadline = release_ns + grant.uplink_deadline_slots * self._slot_ns
        header = encode_rt_header(end_to_end_deadline, channel_id)
        if self._trace.enabled_for("rt.emit"):
            self._trace.record(
                release_ns,
                "rt.emit",
                self._node,
                f"ch{channel_id} msg#{seq} x{grant.spec.capacity}",
                fields={
                    "channel": channel_id,
                    "seq": seq,
                    "frames": grant.spec.capacity,
                    "deadline_ns": end_to_end_deadline,
                    "uplink_deadline_ns": uplink_deadline,
                },
            )
        spans = self.spans
        root = None
        if spans is not None:
            root = spans.channel_root(channel_id, release_ns, self._node)
        frames = []
        for fragment in range(grant.spec.capacity):
            frame = EthernetFrame(
                kind=FrameKind.RT_DATA,
                source=self._node,
                destination=grant.destination,
                payload_bytes=ETH_MAX_PAYLOAD,
                rt_header=header,
                channel_id=channel_id,
                message_seq=seq,
                fragment_index=fragment,
                created_at=release_ns,
            )
            if root is not None:
                spans.attach_frame(
                    frame.frame_id, root.trace_id, root.span_id
                )
            frames.append(
                OutgoingFrame(frame=frame, uplink_deadline_ns=uplink_deadline)
            )
        return frames

    def message_count(self, channel_id: int) -> int:
        """Messages emitted so far on ``channel_id``."""
        if channel_id not in self._message_seq:
            raise UnknownChannelError(
                f"node {self._node!r} has no channel {channel_id}"
            )
        return self._message_seq[channel_id]
