"""Offline slot-level EDF schedule construction for one link.

The feasibility test (:mod:`repro.core.feasibility`) answers *whether*
a task set is schedulable; this module constructs the actual synchronous
EDF schedule, slot by slot, over the first hyperperiod, yielding:

* the exact **worst-case response time** of every task (the quantity
  ``d_iu``/``d_id`` budget against),
* the per-slot **schedule table** (which channel transmits when),
* detected **deadline overruns**, if the set is infeasible.

This gives a third, independent implementation of EDF semantics to
check the other two against:

1. the *analytical* demand criterion (``is_feasible``),
2. the *event-driven* simulator (ports/links),
3. this *tabular* scheduler.

A task set is feasible iff the tabular scheduler completes every job by
its deadline iff the demand criterion passes -- the differential tests
in ``tests/core/test_schedule.py`` and the property suite assert exactly
that equivalence.

The scheduler is integer-exact and deliberately simple: synchronous
release at t=0, one slot of work per time unit, ties broken by task
index (matching the FIFO tie-break of the runtime EDF queue for equal
deadlines and stable input order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from .feasibility import hyperperiod, utilization
from .task import LinkTask

__all__ = ["TaskResponse", "LinkSchedule", "build_schedule"]

#: Safety cap on schedule length (slots); hyperperiods beyond this are
#: refused rather than silently truncated.
MAX_SCHEDULE_SLOTS = 2_000_000


@dataclass(frozen=True, slots=True)
class TaskResponse:
    """Exact response-time record for one task over the hyperperiod."""

    task_index: int
    channel_id: int
    deadline: int
    #: worst completion time relative to release, over all jobs.
    worst_response: int
    #: number of jobs released within the analyzed horizon.
    jobs: int
    #: jobs that completed after their absolute deadline.
    overruns: int

    @property
    def meets_deadline(self) -> bool:
        return self.overruns == 0

    @property
    def slack(self) -> int:
        """Deadline minus worst response (negative when overrunning)."""
        return self.deadline - self.worst_response


@dataclass(frozen=True, slots=True)
class LinkSchedule:
    """The constructed schedule plus per-task response statistics."""

    horizon: int
    #: slot -> task index transmitting in that slot (-1 = idle).
    table: tuple[int, ...]
    responses: tuple[TaskResponse, ...]

    @property
    def feasible(self) -> bool:
        """True when every job met its deadline."""
        return all(response.meets_deadline for response in self.responses)

    @property
    def idle_slots(self) -> int:
        return sum(1 for entry in self.table if entry < 0)

    def worst_response_of(self, task_index: int) -> int:
        return self.responses[task_index].worst_response

    def render(self, width: int = 60) -> str:
        """ASCII strip of the schedule (task index mod 10 as glyph)."""
        glyphs = "".join(
            "." if entry < 0 else str(entry % 10) for entry in self.table
        )
        lines = []
        for start in range(0, len(glyphs), width):
            lines.append(f"[{start:5d}] |{glyphs[start:start + width]}|")
        return "\n".join(lines)


def build_schedule(
    tasks: Sequence[LinkTask], horizon: int | None = None
) -> LinkSchedule:
    """Construct the synchronous EDF schedule of ``tasks`` on one link.

    Parameters
    ----------
    tasks:
        The per-link task set (order defines tie-breaking and indexing).
    horizon:
        Slots to schedule; default is one hyperperiod. Jobs released
        before the horizon are followed to completion even slightly past
        it, so response times at the boundary are exact.

    Raises
    ------
    ConfigurationError
        for an over-utilized set (the backlog would grow without bound)
        or an unreasonably long horizon (> ``MAX_SCHEDULE_SLOTS``).
    """
    if not tasks:
        return LinkSchedule(horizon=0, table=(), responses=())
    if utilization(tasks) > 1:
        raise ConfigurationError(
            "cannot build a schedule for an over-utilized link (U > 1)"
        )
    if horizon is None:
        horizon = hyperperiod(tasks)
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if horizon > MAX_SCHEDULE_SLOTS:
        raise ConfigurationError(
            f"horizon {horizon} slots exceeds the safety cap "
            f"{MAX_SCHEDULE_SLOTS}; pass an explicit smaller horizon"
        )

    # ready: heap of (absolute_deadline, task_index, release, remaining)
    ready: list[list[int]] = []
    table: list[int] = []
    worst = [0] * len(tasks)
    jobs = [0] * len(tasks)
    overruns = [0] * len(tasks)

    time = 0
    # schedule until the horizon AND the backlog is drained
    while time < horizon or ready:
        for index, task in enumerate(tasks):
            if time < horizon and time % task.period == 0:
                heapq.heappush(
                    ready,
                    [time + task.deadline, index, time, task.capacity],
                )
                jobs[index] += 1
        if ready:
            job = ready[0]
            job[3] -= 1
            if time < horizon:
                table.append(job[1])
            if job[3] == 0:
                heapq.heappop(ready)
                deadline_abs, index, release, _ = job
                response = time + 1 - release
                if response > worst[index]:
                    worst[index] = response
                if time + 1 > deadline_abs:
                    overruns[index] += 1
        else:
            if time < horizon:
                table.append(-1)
        time += 1
        if time > horizon + MAX_SCHEDULE_SLOTS:  # pragma: no cover
            raise ConfigurationError("schedule drain failed to terminate")

    responses = tuple(
        TaskResponse(
            task_index=index,
            channel_id=task.channel_id,
            deadline=task.deadline,
            worst_response=worst[index],
            jobs=jobs[index],
            overruns=overruns[index],
        )
        for index, task in enumerate(tasks)
    )
    return LinkSchedule(
        horizon=horizon, table=tuple(table), responses=responses
    )
