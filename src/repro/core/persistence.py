"""Persistence: snapshot and restore the switch's admission state.

An industrial switch reboots; its RT-channel reservations must survive
(re-running every establishment handshake would violate the channels'
guarantees meanwhile). This module serializes the complete system state
-- nodes, active channels with their IDs, specs, deadline partitions and
lifecycle states, the ID allocator position, and (optionally) the
switch's in-flight signalling state -- to a plain JSON-compatible dict,
and restores a byte-identical controller from it.

Round-trip fidelity is the contract: ``restore(snapshot(ctrl))`` yields
a controller whose every future admission decision matches the
original's (same link loads, same partitions, same next channel ID).
The property tests drive random admit/release histories through a
snapshot/restore cycle and diff subsequent decisions.

Schema history
--------------
Version 1 recorded only the admission side and silently coerced every
channel to ACTIVE on restore. That dropped the switch-side signalling
state -- reservation leases for OFFERED channels and the
completed-verdict dedup cache -- so a restored switch could double-book
a lease or re-run admission for a duplicate request after a restart.
Version 2 records each channel's lifecycle state and an optional
``signalling`` section (see
:meth:`~repro.core.channel_manager.SwitchChannelManager.export_signalling_state`).
Version 1 snapshots are refused with a migration message rather than
restored lossily.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from .admission import AdmissionController, SystemState
from .channel import ChannelSpec, ChannelState, DeadlinePartition, RTChannel
from .partitioning import DeadlinePartitioningScheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .channel_manager import SwitchChannelManager

__all__ = ["snapshot", "restore", "restore_signalling", "dumps", "loads"]

#: Schema version stamped into every snapshot; bumped on layout changes.
SNAPSHOT_VERSION = 2

#: Channel lifecycle states that may legitimately appear in a snapshot:
#: ACTIVE channels are established, OFFERED ones hold a reservation
#: while the destination's verdict is in flight.
_SNAPSHOT_STATES = frozenset(
    {ChannelState.ACTIVE.value, ChannelState.OFFERED.value}
)


def snapshot(
    controller: AdmissionController,
    *,
    manager: "SwitchChannelManager | None" = None,
) -> dict[str, Any]:
    """Serialize the controller's state to a JSON-compatible dict.

    The DPS itself is recorded by name only -- schemes are code, not
    state; :func:`restore` receives the scheme instance from the caller
    and cross-checks the name to catch accidental mismatches. Pass the
    switch's :class:`~repro.core.channel_manager.SwitchChannelManager`
    as ``manager`` to also capture the in-flight signalling state
    (pending offers, verdict cache, loss counters); restore it with
    :func:`restore_signalling`.
    """
    state = controller.state
    channels = []
    # ``seq`` records each channel's position in the *installation*
    # order. The records themselves stay sorted by channel ID (stable
    # diff-friendly layout), but restore must re-install in seq order:
    # per-link schedules and the feasibility cache keep tasks in
    # insertion order, and once the ID allocator wraps under churn,
    # sorted-by-ID no longer equals installed-order -- restoring by ID
    # would permute the per-link arrays and diverge (float fdensity
    # folds, memo overlays) from the never-snapshotted run.
    install_order = {
        channel_id: seq
        for seq, channel_id in enumerate(state.channels.keys())
    }
    for channel in sorted(
        state.channels.values(), key=lambda c: c.channel_id
    ):
        if channel.partition is None:  # pragma: no cover - install forbids
            raise ConfigurationError(
                f"active channel {channel.channel_id} has no partition"
            )
        if channel.state.value not in _SNAPSHOT_STATES:
            raise ConfigurationError(
                f"channel {channel.channel_id} is installed but in "
                f"state {channel.state.value!r}; only active or offered "
                f"channels can be snapshotted"
            )
        channels.append(
            {
                "id": channel.channel_id,
                "source": channel.source,
                "destination": channel.destination,
                "period": channel.spec.period,
                "capacity": channel.spec.capacity,
                "deadline": channel.spec.deadline,
                "d_iu": channel.partition.uplink,
                "d_id": channel.partition.downlink,
                "state": channel.state.value,
                "seq": install_order[channel.channel_id],
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "dps": controller.dps.name,
        "nodes": sorted(state.nodes),
        "channels": channels,
        "next_channel_id": _peek_next_id(controller),
        "accept_count": controller.accept_count,
        "reject_count": controller.reject_count,
        "rejections_by_reason": {
            reason.value: count
            for reason, count in controller.rejections_by_reason.items()
        },
        "signalling": (
            None if manager is None else manager.export_signalling_state()
        ),
    }


def _peek_next_id(controller: AdmissionController) -> int:
    """Read the ID allocator position without consuming an ID."""
    return int(controller._next_id)  # noqa: SLF001 - serializer


def restore(
    data: dict[str, Any], dps: DeadlinePartitioningScheme
) -> AdmissionController:
    """Rebuild a controller from :func:`snapshot` output.

    Parameters
    ----------
    data:
        A snapshot dict (parsed JSON).
    dps:
        The partitioning scheme to install; its ``name`` must match the
        snapshot's, preventing a silent scheme swap across a reboot.
    """
    if not isinstance(data, dict) or "version" not in data:
        raise ConfigurationError("not a snapshot: missing version field")
    if data["version"] == 1:
        raise ConfigurationError(
            "snapshot version 1 is not supported: it predates the "
            "switch-side signalling state (per-channel lifecycle, "
            "reservation leases, duplicate-verdict cache) and cannot be "
            "migrated safely -- a lossy restore could double-book a "
            "lease or re-answer a duplicate request wrongly. Quiesce "
            "signalling on the old build, re-snapshot with version "
            f"{SNAPSHOT_VERSION}, and restore that instead."
        )
    if data["version"] != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot version {data['version']} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if data["dps"] != dps.name:
        raise ConfigurationError(
            f"snapshot was taken under DPS {data['dps']!r} but "
            f"{dps.name!r} was supplied; refusing a silent scheme swap"
        )
    state = SystemState(nodes=data["nodes"])
    controller = AdmissionController(state=state, dps=dps)
    records = data["channels"]
    if all("seq" in record for record in records):
        # Re-install in the original installation order so per-link
        # task arrays come back byte-identical (see snapshot()).
        records = sorted(records, key=lambda record: record["seq"])
    for record in records:
        recorded_state = record["state"]
        if recorded_state not in _SNAPSHOT_STATES:
            raise ConfigurationError(
                f"channel {record['id']} has snapshot state "
                f"{recorded_state!r}; expected one of "
                f"{sorted(_SNAPSHOT_STATES)}"
            )
        channel = RTChannel(
            source=record["source"],
            destination=record["destination"],
            spec=ChannelSpec(
                period=record["period"],
                capacity=record["capacity"],
                deadline=record["deadline"],
            ),
            channel_id=record["id"],
        )
        channel.assign_partition(
            DeadlinePartition(
                uplink=record["d_iu"], downlink=record["d_id"]
            )
        )
        channel.state = ChannelState(recorded_state)
        state.install(channel)
    controller._next_id = int(  # noqa: SLF001 - deserializer
        data["next_channel_id"]
    )
    controller.accept_count = int(data.get("accept_count", 0))
    controller.reject_count = int(data.get("reject_count", 0))
    from .admission import RejectionReason

    controller.rejections_by_reason = {
        RejectionReason(key): int(value)
        for key, value in data.get("rejections_by_reason", {}).items()
    }
    return controller


def restore_signalling(
    data: dict[str, Any], manager: "SwitchChannelManager"
) -> None:
    """Import a snapshot's signalling section into a fresh manager.

    ``manager`` must wrap the controller returned by :func:`restore`
    for the same snapshot and be configured (``switch_mac``,
    ``lease_ns``, ``response_cache_ns``) exactly as the snapshotted
    manager was; those are code-level settings the snapshot only
    cross-checks. A snapshot taken without a manager (``signalling``
    is null) raises: restoring "no signalling state" into a live
    manager is almost certainly a caller error.
    """
    signalling = data.get("signalling")
    if signalling is None:
        raise ConfigurationError(
            "snapshot carries no signalling section (it was taken "
            "without a manager); pass manager= to snapshot() to "
            "capture the in-flight signalling state"
        )
    manager.import_signalling_state(signalling)


def dumps(
    controller: AdmissionController,
    indent: int | None = 2,
    *,
    manager: "SwitchChannelManager | None" = None,
) -> str:
    """Snapshot to a JSON string."""
    return json.dumps(
        snapshot(controller, manager=manager),
        indent=indent,
        sort_keys=True,
    )


def loads(text: str, dps: DeadlinePartitioningScheme) -> AdmissionController:
    """Restore from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"snapshot is not valid JSON: {exc}") from exc
    return restore(data, dps)
