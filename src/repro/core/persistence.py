"""Persistence: snapshot and restore the switch's admission state.

An industrial switch reboots; its RT-channel reservations must survive
(re-running every establishment handshake would violate the channels'
guarantees meanwhile). This module serializes the complete system state
-- nodes, active channels with their IDs, specs and deadline partitions,
and the ID allocator position -- to a plain JSON-compatible dict, and
restores a byte-identical controller from it.

Round-trip fidelity is the contract: ``restore(snapshot(ctrl))`` yields
a controller whose every future admission decision matches the
original's (same link loads, same partitions, same next channel ID).
The property tests drive random admit/release histories through a
snapshot/restore cycle and diff subsequent decisions.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ConfigurationError
from .admission import AdmissionController, SystemState
from .channel import ChannelSpec, ChannelState, DeadlinePartition, RTChannel
from .partitioning import DeadlinePartitioningScheme

__all__ = ["snapshot", "restore", "dumps", "loads"]

#: Schema version stamped into every snapshot; bumped on layout changes.
SNAPSHOT_VERSION = 1


def snapshot(controller: AdmissionController) -> dict[str, Any]:
    """Serialize the controller's state to a JSON-compatible dict.

    The DPS itself is recorded by name only -- schemes are code, not
    state; :func:`restore` receives the scheme instance from the caller
    and cross-checks the name to catch accidental mismatches.
    """
    state = controller.state
    channels = []
    for channel in sorted(
        state.channels.values(), key=lambda c: c.channel_id
    ):
        if channel.partition is None:  # pragma: no cover - install forbids
            raise ConfigurationError(
                f"active channel {channel.channel_id} has no partition"
            )
        channels.append(
            {
                "id": channel.channel_id,
                "source": channel.source,
                "destination": channel.destination,
                "period": channel.spec.period,
                "capacity": channel.spec.capacity,
                "deadline": channel.spec.deadline,
                "d_iu": channel.partition.uplink,
                "d_id": channel.partition.downlink,
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "dps": controller.dps.name,
        "nodes": sorted(state.nodes),
        "channels": channels,
        "next_channel_id": _peek_next_id(controller),
        "accept_count": controller.accept_count,
        "reject_count": controller.reject_count,
        "rejections_by_reason": {
            reason.value: count
            for reason, count in controller.rejections_by_reason.items()
        },
    }


def _peek_next_id(controller: AdmissionController) -> int:
    """Read the ID allocator position without consuming an ID."""
    return int(controller._next_id)  # noqa: SLF001 - serializer


def restore(
    data: dict[str, Any], dps: DeadlinePartitioningScheme
) -> AdmissionController:
    """Rebuild a controller from :func:`snapshot` output.

    Parameters
    ----------
    data:
        A snapshot dict (parsed JSON).
    dps:
        The partitioning scheme to install; its ``name`` must match the
        snapshot's, preventing a silent scheme swap across a reboot.
    """
    if not isinstance(data, dict) or "version" not in data:
        raise ConfigurationError("not a snapshot: missing version field")
    if data["version"] != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot version {data['version']} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if data["dps"] != dps.name:
        raise ConfigurationError(
            f"snapshot was taken under DPS {data['dps']!r} but "
            f"{dps.name!r} was supplied; refusing a silent scheme swap"
        )
    state = SystemState(nodes=data["nodes"])
    controller = AdmissionController(state=state, dps=dps)
    for record in data["channels"]:
        channel = RTChannel(
            source=record["source"],
            destination=record["destination"],
            spec=ChannelSpec(
                period=record["period"],
                capacity=record["capacity"],
                deadline=record["deadline"],
            ),
            channel_id=record["id"],
        )
        channel.assign_partition(
            DeadlinePartition(
                uplink=record["d_iu"], downlink=record["d_id"]
            )
        )
        channel.state = ChannelState.ACTIVE
        state.install(channel)
    controller._next_id = int(  # noqa: SLF001 - deserializer
        data["next_channel_id"]
    )
    controller.accept_count = int(data.get("accept_count", 0))
    controller.reject_count = int(data.get("reject_count", 0))
    from .admission import RejectionReason

    controller.rejections_by_reason = {
        RejectionReason(key): int(value)
        for key, value in data.get("rejections_by_reason", {}).items()
    }
    return controller


def dumps(controller: AdmissionController, indent: int | None = 2) -> str:
    """Snapshot to a JSON string."""
    return json.dumps(snapshot(controller), indent=indent, sort_keys=True)


def loads(text: str, dps: DeadlinePartitioningScheme) -> AdmissionController:
    """Restore from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"snapshot is not valid JSON: {exc}") from exc
    return restore(data, dps)
