"""Per-link "supposed tasks" derived from RT channels.

Section 18.4 of the paper reduces the end-to-end feasibility question to
independent per-link questions by deriving, from every channel ``i``, a
pair of periodic tasks (Eq. 18.6/18.7)::

    T_iu = {Source_i,      P_i, C_i, d_iu}   (runs on the uplink)
    T_id = {Destination_i, P_i, C_i, d_id}   (runs on the downlink)

Each full-duplex link is then treated, from a scheduling point of view,
as *two* independent processors: one executing the uplink parts of all
channels entering the switch through it, and one executing the downlink
parts of all channels leaving the switch through it. The capacity
``C_i`` plays the role of the task's worst-case execution time.

:class:`LinkRef` names one such "processor" -- the ordered pair of an end
node and a direction relative to the switch -- and :class:`LinkTask` is
one supposed task assigned to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ChannelParameterError
from .channel import ChannelSpec, RTChannel

__all__ = ["LinkDirection", "LinkRef", "LinkTask"]


class LinkDirection(enum.Enum):
    """Direction of one half of a full-duplex link, relative to the switch.

    ``UPLINK`` carries frames from an end node toward the switch and is
    scheduled by the end node's RT layer; ``DOWNLINK`` carries frames from
    the switch toward an end node and is scheduled by the switch.
    """

    UPLINK = "uplink"
    DOWNLINK = "downlink"

    @property
    def opposite(self) -> "LinkDirection":
        return (
            LinkDirection.DOWNLINK
            if self is LinkDirection.UPLINK
            else LinkDirection.UPLINK
        )


@dataclass(frozen=True, slots=True)
class LinkRef:
    """One direction of one physical link: the unit of feasibility analysis.

    In the star topology every physical link connects exactly one end
    node to the switch, so naming the end node plus a direction uniquely
    identifies one of the two independent "processors" of that link.

    Attributes
    ----------
    node:
        Name of the end node at the non-switch end of the physical link.
    direction:
        Which half of the duplex pair this reference denotes.
    """

    node: str
    direction: LinkDirection
    #: Precomputed hash. LinkRef is the key of every per-link dict on
    #: the admission hot path; hashing the (str, enum) tuple on each
    #: lookup is measurable, computing it once at construction is not.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.node, self.direction)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def uplink(cls, node: str) -> "LinkRef":
        """The node→switch direction of ``node``'s link.

        Instances are interned per node name (they are immutable and the
        admission hot path constructs the same handful of refs on every
        request); the node population is bounded by the network, so the
        intern table is too.
        """
        if cls is not LinkRef:
            return cls(node=node, direction=LinkDirection.UPLINK)
        ref = _UPLINK_INTERN.get(node)
        if ref is None:
            ref = LinkRef(node=node, direction=LinkDirection.UPLINK)
            _UPLINK_INTERN[node] = ref
        return ref

    @classmethod
    def downlink(cls, node: str) -> "LinkRef":
        """The switch→node direction of ``node``'s link (interned)."""
        if cls is not LinkRef:
            return cls(node=node, direction=LinkDirection.DOWNLINK)
        ref = _DOWNLINK_INTERN.get(node)
        if ref is None:
            ref = LinkRef(node=node, direction=LinkDirection.DOWNLINK)
            _DOWNLINK_INTERN[node] = ref
        return ref

    def __lt__(self, other: "LinkRef") -> bool:
        """Sort by (node, direction name) for stable report ordering."""
        if not isinstance(other, LinkRef):
            return NotImplemented
        return (self.node, self.direction.value) < (
            other.node,
            other.direction.value,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "->sw" if self.direction is LinkDirection.UPLINK else "sw->"
        return f"{arrow}{self.node}" if arrow == "sw->" else f"{self.node}{arrow}"


_UPLINK_INTERN: dict[str, LinkRef] = {}
_DOWNLINK_INTERN: dict[str, LinkRef] = {}


@dataclass(frozen=True, slots=True)
class LinkTask:
    """A periodic task ``{node, P, C, d}`` running on one link direction.

    This is the paper's Eq. 18.6/18.7 object. ``deadline`` here is the
    *per-link* deadline (``d_iu`` or ``d_id``), not the channel's
    end-to-end deadline.

    Attributes
    ----------
    link:
        The link direction ("processor") the task runs on.
    period:
        ``P_i`` of the originating channel, in timeslots.
    capacity:
        ``C_i`` of the originating channel -- the task WCET, in timeslots.
    deadline:
        The per-link relative deadline, in timeslots. Must be at least
        ``capacity`` (Eq. 18.9), otherwise the task could never finish in
        time even alone on the link.
    channel_id:
        ID of the originating channel, for traceability (``-1`` when the
        task was built from a bare spec, e.g. in unit tests).
    """

    link: LinkRef
    period: int
    capacity: int
    deadline: int
    channel_id: int = -1
    #: Precomputed ``(period, capacity, deadline)``: the feasibility
    #: cache keys its verdict memos by this triple on every check, and
    #: three attribute loads plus a tuple pack per lookup are measurable
    #: on the admission hot path.
    pcd: tuple[int, int, int] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        for name, value in (
            ("period", self.period),
            ("capacity", self.capacity),
            ("deadline", self.deadline),
        ):
            if not isinstance(value, int) or value <= 0:
                raise ChannelParameterError(
                    f"LinkTask {name} must be a positive integer, got {value!r}"
                )
        if self.capacity > self.period:
            raise ChannelParameterError(
                f"LinkTask capacity {self.capacity} exceeds period {self.period}"
            )
        if self.deadline < self.capacity:
            raise ChannelParameterError(
                f"LinkTask deadline {self.deadline} is below its capacity "
                f"{self.capacity} (violates Eq. 18.9)"
            )
        object.__setattr__(
            self, "pcd", (self.period, self.capacity, self.deadline)
        )

    @property
    def utilization(self) -> float:
        """``C / P`` -- the task's long-run demand on its link direction."""
        return self.capacity / self.period

    @classmethod
    def pair_for_channel(cls, channel: RTChannel) -> tuple["LinkTask", "LinkTask"]:
        """Derive ``(T_iu, T_id)`` from a channel with an assigned partition.

        Implements Eq. 18.6/18.7: the uplink task runs on the source
        node's uplink, the downlink task on the destination node's
        downlink, both inheriting the channel's period and capacity.

        Construction is trusted (``__post_init__`` validation skipped):
        the spec validated ``0 < C <= P`` at creation, and the
        partition passed Eq. 18.8/18.9 validation before it reached
        the channel (``DeadlinePartition.validate_for`` on the
        admission path, or
        :meth:`~repro.core.channel.RTChannel.assign_partition`), which
        together imply every LinkTask invariant for both derived
        tasks. This runs once per
        admitted channel on the admission hot path.
        """
        spec: ChannelSpec = channel.spec
        up_d = channel.uplink_deadline  # raises if no partition assigned
        down_d = channel.downlink_deadline
        if cls is not LinkTask:
            up = cls(
                link=LinkRef.uplink(channel.source),
                period=spec.period,
                capacity=spec.capacity,
                deadline=up_d,
                channel_id=channel.channel_id,
            )
            down = cls(
                link=LinkRef.downlink(channel.destination),
                period=spec.period,
                capacity=spec.capacity,
                deadline=down_d,
                channel_id=channel.channel_id,
            )
            return up, down
        return (
            _trusted_task(
                LinkRef.uplink(channel.source),
                spec.period,
                spec.capacity,
                up_d,
                channel.channel_id,
            ),
            _trusted_task(
                LinkRef.downlink(channel.destination),
                spec.period,
                spec.capacity,
                down_d,
                channel.channel_id,
            ),
        )


def _trusted_task(
    link: LinkRef, period: int, capacity: int, deadline: int, channel_id: int
) -> LinkTask:
    """Build a LinkTask bypassing ``__post_init__``.

    Only for callers whose argument invariants (positive ints,
    ``C <= P``, ``d >= C``) are already guaranteed by validated upstream
    objects -- see :meth:`LinkTask.pair_for_channel`.
    """
    task = object.__new__(LinkTask)
    set_ = object.__setattr__
    set_(task, "link", link)
    set_(task, "period", period)
    set_(task, "capacity", capacity)
    set_(task, "deadline", deadline)
    set_(task, "channel_id", channel_id)
    set_(task, "pcd", (period, capacity, deadline))
    return task
